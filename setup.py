"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that legacy
editable installs (``SETUPTOOLS_ENABLE_FEATURES=legacy-editable pip install -e .``)
work on environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()

"""Start-aligned N-to-1 flex-offer aggregation (paper [4]).

A group of similar offers becomes one *aggregated* flex-offer whose profile
is the slice-wise sum of the member profiles, each member placed at its own
earliest start relative to the group's earliest.  The aggregate's time
flexibility is the *minimum* member flexibility, which makes aggregation
conservative: any schedule of the aggregate disaggregates into feasible
member schedules (shift every member by the same delta).

The cost of conservatism is lost flexibility (members with more slack than
the minimum give some up) — exactly the compression/fidelity trade-off the
grouping grid controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.flexoffer.schedule import ScheduledFlexOffer

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AggregatedFlexOffer:
    """An aggregate offer plus everything needed to disaggregate it."""

    offer: FlexOffer
    members: tuple[FlexOffer, ...]
    member_offsets: tuple[int, ...]  # member profile offset in aggregate slices

    @property
    def size(self) -> int:
        """Number of member offers."""
        return len(self.members)


def aggregate_group(group: list[FlexOffer]) -> AggregatedFlexOffer:
    """Aggregate one group of offers into a single flex-offer.

    All members must share a resolution.  The aggregate's earliest start is
    the earliest member start; each member's profile is embedded at its own
    offset; per-interval min/max bounds are summed.
    """
    if not group:
        raise AggregationError("cannot aggregate an empty group")
    resolution = group[0].resolution
    for offer in group[1:]:
        if offer.resolution != resolution:
            raise AggregationError("aggregation requires a uniform resolution")
    base_start = min(o.earliest_start for o in group)
    offsets = []
    for offer in group:
        delta = offer.earliest_start - base_start
        quotient = delta / resolution
        offset = int(round(quotient))
        if abs(quotient - offset) > 1e-9:
            raise AggregationError(
                f"offer {offer.offer_id} is not grid-aligned with the group"
            )
        offsets.append(offset)

    expansions = [o.slice_expansion() for o in group]
    total_len = max(off + len(exp) for off, exp in zip(offsets, expansions))
    mins = np.zeros(total_len)
    maxs = np.zeros(total_len)
    for off, exp in zip(offsets, expansions):
        for k, (lo, hi) in enumerate(exp):
            mins[off + k] += lo
            maxs[off + k] += hi

    flexibility = min((o.time_flexibility for o in group), default=timedelta(0))
    slices = tuple(ProfileSlice(float(lo), float(hi)) for lo, hi in zip(mins, maxs))
    aggregate = FlexOffer(
        earliest_start=base_start,
        latest_start=base_start + flexibility,
        slices=slices,
        resolution=resolution,
        offer_id=next_offer_id("agg"),
        source="aggregation",
        creation_time=min(
            (o.creation_time for o in group if o.creation_time is not None),
            default=None,
        ),
    )
    return AggregatedFlexOffer(
        offer=aggregate, members=tuple(group), member_offsets=tuple(offsets)
    )


def aggregate_all(
    groups: list[list[FlexOffer]],
) -> list[AggregatedFlexOffer]:
    """Aggregate every group; convenience over :func:`aggregate_group`."""
    return [aggregate_group(g) for g in groups]


def disaggregate_schedule(
    aggregated: AggregatedFlexOffer, schedule: ScheduledFlexOffer
) -> list[ScheduledFlexOffer]:
    """Split a schedule of the aggregate into feasible member schedules.

    The time shift ``delta = schedule.start − aggregate.earliest_start`` is
    applied to every member (feasible because the aggregate's flexibility is
    the member minimum).  Each aggregate interval's energy is divided among
    the members overlapping it: every member first receives its minimum,
    then the remainder is shared proportionally to each member's slack —
    which always lands inside the member bounds because the aggregate bounds
    are the member sums.
    """
    if schedule.offer.offer_id != aggregated.offer.offer_id:
        raise AggregationError("schedule does not belong to this aggregate")
    delta = schedule.start - aggregated.offer.earliest_start
    energies = schedule.interval_energies()

    expansions = [m.slice_expansion() for m in aggregated.members]
    member_interval_energies: list[np.ndarray] = [
        np.zeros(len(exp)) for exp in expansions
    ]
    for t in range(len(energies)):
        parts = []  # (member index, local interval, lo, hi)
        for i, (off, exp) in enumerate(zip(aggregated.member_offsets, expansions)):
            local = t - off
            if 0 <= local < len(exp):
                lo, hi = exp[local]
                parts.append((i, local, lo, hi))
        if not parts:
            if energies[t] > _TOLERANCE:
                raise AggregationError(
                    f"aggregate interval {t} has energy but no members"
                )
            continue
        lo_sum = sum(p[2] for p in parts)
        hi_sum = sum(p[3] for p in parts)
        target = float(np.clip(energies[t], lo_sum, hi_sum))
        slack_sum = hi_sum - lo_sum
        extra = target - lo_sum
        for i, local, lo, hi in parts:
            share = (hi - lo) / slack_sum if slack_sum > _TOLERANCE else 0.0
            member_interval_energies[i][local] = lo + extra * share

    out = []
    for member, interval_energy in zip(aggregated.members, member_interval_energies):
        slice_energies = []
        cursor = 0
        for sl in member.slices:
            slice_energies.append(float(interval_energy[cursor : cursor + sl.duration].sum()))
            cursor += sl.duration
        out.append(
            ScheduledFlexOffer(
                offer=member,
                start=member.earliest_start + delta,
                slice_energies=tuple(slice_energies),
            )
        )
    return out

"""Start-aligned N-to-1 flex-offer aggregation (paper [4]).

A group of similar offers becomes one *aggregated* flex-offer whose profile
is the slice-wise sum of the member profiles, each member placed at its own
earliest start relative to the group's earliest.  The aggregate's time
flexibility is the *minimum* member flexibility, which makes aggregation
conservative: any schedule of the aggregate disaggregates into feasible
member schedules (shift every member by the same delta).

The cost of conservatism is lost flexibility (members with more slack than
the minimum give some up) — exactly the compression/fidelity trade-off the
grouping grid controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta
from functools import cached_property

import numpy as np

from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.flexoffer.schedule import ScheduledFlexOffer

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AggregatedFlexOffer:
    """An aggregate offer plus everything needed to disaggregate it."""

    offer: FlexOffer
    members: tuple[FlexOffer, ...]
    member_offsets: tuple[int, ...]  # member profile offset in aggregate slices

    @property
    def size(self) -> int:
        """Number of member offers."""
        return len(self.members)

    @cached_property
    def profile_bounds_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The aggregate profile as ``(energy_min, energy_max, durations)``
        vectors, cached per aggregate.

        Batch consumers (market bid derivation, fleet matrices) touch each
        aggregate's slices many times; the offer itself is frozen, so the
        extracted arrays are a safe one-time snapshot.
        """
        slices = self.offer.slices
        n = len(slices)
        return (
            np.fromiter((s.energy_min for s in slices), dtype=np.float64, count=n),
            np.fromiter((s.energy_max for s in slices), dtype=np.float64, count=n),
            np.fromiter((s.duration for s in slices), dtype=np.intp, count=n),
        )


def aggregate_group(group: list[FlexOffer]) -> AggregatedFlexOffer:
    """Aggregate one group of offers into a single flex-offer.

    All members must share a resolution.  The aggregate's earliest start is
    the earliest member start; each member's profile is embedded at its own
    offset; per-interval min/max bounds are summed.
    """
    if not group:
        raise AggregationError("cannot aggregate an empty group")
    resolution = group[0].resolution
    for offer in group[1:]:
        if offer.resolution != resolution:
            raise AggregationError("aggregation requires a uniform resolution")
    base_start = min(o.earliest_start for o in group)
    offsets = []
    for offer in group:
        delta = offer.earliest_start - base_start
        quotient = delta / resolution
        offset = int(round(quotient))
        if abs(quotient - offset) > 1e-9:
            raise AggregationError(
                f"offer {offer.offer_id} is not grid-aligned with the group"
            )
        offsets.append(offset)

    expansions = [o.slice_expansion_arrays() for o in group]
    total_len = max(off + exp_min.size for off, (exp_min, _) in zip(offsets, expansions))
    mins = np.zeros(total_len)
    maxs = np.zeros(total_len)
    for off, (exp_min, exp_max) in zip(offsets, expansions):
        mins[off : off + exp_min.size] += exp_min
        maxs[off : off + exp_max.size] += exp_max

    flexibility = min((o.time_flexibility for o in group), default=timedelta(0))
    slices = tuple(ProfileSlice(float(lo), float(hi)) for lo, hi in zip(mins, maxs))
    aggregate = FlexOffer(
        earliest_start=base_start,
        latest_start=base_start + flexibility,
        slices=slices,
        resolution=resolution,
        offer_id=next_offer_id("agg"),
        source="aggregation",
        creation_time=min(
            (o.creation_time for o in group if o.creation_time is not None),
            default=None,
        ),
    )
    return AggregatedFlexOffer(
        offer=aggregate, members=tuple(group), member_offsets=tuple(offsets)
    )


def aggregate_all(
    groups: list[list[FlexOffer]],
) -> list[AggregatedFlexOffer]:
    """Aggregate every group; convenience over :func:`aggregate_group`."""
    return [aggregate_group(g) for g in groups]


def disaggregate_schedule(
    aggregated: AggregatedFlexOffer, schedule: ScheduledFlexOffer
) -> list[ScheduledFlexOffer]:
    """Split a schedule of the aggregate into feasible member schedules.

    The time shift ``delta = schedule.start − aggregate.earliest_start`` is
    applied to every member (feasible because the aggregate's flexibility is
    the member minimum).  Each aggregate interval's energy is divided among
    the members overlapping it: every member first receives its minimum,
    then the remainder is shared proportionally to each member's slack —
    which always lands inside the member bounds because the aggregate bounds
    are the member sums.
    """
    if schedule.offer.offer_id != aggregated.offer.offer_id:
        raise AggregationError("schedule does not belong to this aggregate")
    delta = schedule.start - aggregated.offer.earliest_start
    energies = np.asarray(schedule.interval_energies(), dtype=np.float64)

    # Matrix formulation: member i's expanded bounds embedded at its offset
    # in row i, zero elsewhere.  Per-interval sums, targets and slack shares
    # then fall out as single array passes over the (members × intervals)
    # matrices instead of a Python loop over every timestep and member.
    n_members = len(aggregated.members)
    total_len = energies.size
    lo_mat = np.zeros((n_members, total_len))
    hi_mat = np.zeros((n_members, total_len))
    covered = np.zeros((n_members, total_len), dtype=bool)
    exp_lengths = []
    for i, (off, member) in enumerate(zip(aggregated.member_offsets, aggregated.members)):
        exp_min, exp_max = member.slice_expansion_arrays()
        lo_mat[i, off : off + exp_min.size] = exp_min
        hi_mat[i, off : off + exp_max.size] = exp_max
        covered[i, off : off + exp_min.size] = True
        exp_lengths.append(exp_min.size)

    orphaned = ~covered.any(axis=0) & (energies > _TOLERANCE)
    if orphaned.any():
        raise AggregationError(
            f"aggregate interval {int(np.flatnonzero(orphaned)[0])} has energy but no members"
        )
    lo_sum = lo_mat.sum(axis=0)
    hi_sum = hi_mat.sum(axis=0)
    target = np.clip(energies, lo_sum, hi_sum)
    slack_sum = hi_sum - lo_sum
    # Every member first receives its minimum; the remainder is shared
    # proportionally to each member's slack (zero share when the group has
    # no slack at an interval).
    safe_slack = np.where(slack_sum > _TOLERANCE, slack_sum, 1.0)
    scale = np.where(slack_sum > _TOLERANCE, (target - lo_sum) / safe_slack, 0.0)
    member_matrix = lo_mat + (hi_mat - lo_mat) * scale[None, :]

    out = []
    for i, member in enumerate(aggregated.members):
        off = aggregated.member_offsets[i]
        interval_energy = member_matrix[i, off : off + exp_lengths[i]]
        slice_energies = []
        cursor = 0
        for sl in member.slices:
            slice_energies.append(float(interval_energy[cursor : cursor + sl.duration].sum()))
            cursor += sl.duration
        out.append(
            ScheduledFlexOffer(
                offer=member,
                start=member.earliest_start + delta,
                slice_energies=tuple(slice_energies),
            )
        )
    return out

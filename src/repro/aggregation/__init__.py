"""Flex-offer aggregation/disaggregation (MIRABEL substrate, paper [4]).

Groups similar offers on the SSDBM'12 grouping grid and folds each group
into one aggregated offer that conservatively inherits the *minimum*
member flexibility, so any schedule of the aggregate disaggregates into
feasible member schedules.

Subsystem contract:

* **Round-trip losslessness** — ``disaggregate_schedule`` reproduces the
  aggregate's per-interval energy exactly (≤1e-9 kWh); the conformance
  matrix probes this at three schedule levels on every cell.
* **Determinism** — grouping and aggregation are pure functions of the
  offer list and :class:`GroupingParams`; aggregate ids are minted in the
  caller's :func:`~repro.flexoffer.model.offer_id_scope`.
* **Vectorized, not approximate** — slice-expansion accumulation runs as
  matrix passes (``slice_expansion_arrays``) with results identical to
  the per-member loops they replaced.
* **Streamable** — :func:`aggregate_stream` folds an offer stream into
  the same aggregates (bitwise, ids included, given the same grid epoch)
  without ever materializing the offer list; the scale benchmark pins the
  flat-memory property.
"""

from repro.aggregation.aggregate import (
    AggregatedFlexOffer,
    aggregate_all,
    aggregate_group,
    disaggregate_schedule,
)
from repro.aggregation.grouping import GroupingParams, group_offers
from repro.aggregation.streaming import aggregate_stream

__all__ = [
    "aggregate_stream",
    "AggregatedFlexOffer",
    "aggregate_all",
    "aggregate_group",
    "disaggregate_schedule",
    "GroupingParams",
    "group_offers",
]

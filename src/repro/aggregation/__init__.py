"""Flex-offer aggregation/disaggregation (MIRABEL substrate, paper [4])."""

from repro.aggregation.aggregate import (
    AggregatedFlexOffer,
    aggregate_all,
    aggregate_group,
    disaggregate_schedule,
)
from repro.aggregation.grouping import GroupingParams, group_offers

__all__ = [
    "AggregatedFlexOffer",
    "aggregate_all",
    "aggregate_group",
    "disaggregate_schedule",
    "GroupingParams",
    "group_offers",
]

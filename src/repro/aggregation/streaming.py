"""Streaming flex-offer aggregation: fold offers chunk-by-chunk (paper [4]).

The batch path (:func:`~repro.aggregation.grouping.group_offers` +
:func:`~repro.aggregation.aggregate.aggregate_all`) materializes every
offer before the first aggregate exists — at a million households that is
the peak-memory wall of the whole pipeline.  :func:`aggregate_stream`
folds offers into per-cell accumulators as they arrive, so peak memory is
O(live accumulators + current chunk), independent of how many offers flow
through.

Reconciliation contract (pinned by ``tests/test_aggregation_streaming.py``):
given the same offers in the same order, the same grouping parameters and
the same grid ``epoch``, the stream produces *bitwise* the results of the
batch path — profile floats, member offsets, minted offer ids, everything.
That holds because the fold replays the batch arithmetic exactly:

* cell keys use the same bucket arithmetic as ``group_offers``, cells
  split at ``max_group_size`` in the same insertion order, and finalized
  aggregates are emitted in the same sorted-cell order;
* each accumulator adds member profiles position-by-position in arrival
  order — the same float additions in the same order as
  ``aggregate_group``'s member loop.  When a later member lowers the
  group's base start, existing sums are *moved* (an exact array shift),
  never re-derived, so no rounding can diverge.

The one thing the batch path gets for free that a stream cannot is the
default grid anchor (the minimum earliest start over *all* offers): pass
``epoch`` explicitly when reconciling against a batch run; left unset, the
first offer anchors the grid.
"""

from __future__ import annotations

import math
from datetime import datetime, timedelta
from typing import Iterable, Iterator

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer
from repro.aggregation.grouping import GroupingParams
from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id


def _aligned_offset(delta: timedelta, resolution: timedelta, offer_id: str) -> int:
    """``delta`` as a whole number of grid intervals (aggregate.py's check)."""
    quotient = delta / resolution
    offset = int(round(quotient))
    if abs(quotient - offset) > 1e-9:
        raise AggregationError(
            f"offer {offer_id} is not grid-aligned with the group"
        )
    return offset


class _GroupAccumulator:
    """One open group: the running slice-wise sums of its members so far."""

    __slots__ = (
        "resolution",
        "keep_members",
        "base_start",
        "mins",
        "maxs",
        "flexibility",
        "creation_time",
        "count",
        "members",
        "offsets",
    )

    def __init__(self, resolution: timedelta, keep_members: bool) -> None:
        self.resolution = resolution
        self.keep_members = keep_members
        self.base_start: datetime | None = None
        self.mins = np.zeros(0)
        self.maxs = np.zeros(0)
        self.flexibility: timedelta | None = None
        self.creation_time: datetime | None = None
        self.count = 0
        self.members: list[FlexOffer] = []
        self.offsets: list[int] = []

    def add(self, offer: FlexOffer) -> None:
        if self.base_start is None:
            self.base_start = offer.earliest_start
        elif offer.earliest_start < self.base_start:
            # A new minimum re-anchors the group.  Shift the existing sums
            # right — values move, no arithmetic — so every position still
            # holds exactly the floats the batch path would have summed.
            shift = _aligned_offset(
                self.base_start - offer.earliest_start, self.resolution, offer.offer_id
            )
            self.mins = np.concatenate([np.zeros(shift), self.mins])
            self.maxs = np.concatenate([np.zeros(shift), self.maxs])
            self.offsets = [off + shift for off in self.offsets]
            self.base_start = offer.earliest_start
        offset = _aligned_offset(
            offer.earliest_start - self.base_start, self.resolution, offer.offer_id
        )
        exp_min, exp_max = offer.slice_expansion_arrays()
        need = offset + exp_min.size
        if need > self.mins.size:
            grow = need - self.mins.size
            self.mins = np.concatenate([self.mins, np.zeros(grow)])
            self.maxs = np.concatenate([self.maxs, np.zeros(grow)])
        self.mins[offset : offset + exp_min.size] += exp_min
        self.maxs[offset : offset + exp_max.size] += exp_max
        flexibility = offer.time_flexibility
        if self.flexibility is None or flexibility < self.flexibility:
            self.flexibility = flexibility
        if offer.creation_time is not None and (
            self.creation_time is None or offer.creation_time < self.creation_time
        ):
            self.creation_time = offer.creation_time
        self.count += 1
        self.offsets.append(offset)
        if self.keep_members:
            self.members.append(offer)

    def finalize(self) -> AggregatedFlexOffer:
        """Mint the aggregate — same construction as ``aggregate_group``."""
        assert self.base_start is not None and self.flexibility is not None
        slices = tuple(
            ProfileSlice(float(lo), float(hi))
            for lo, hi in zip(self.mins, self.maxs)
        )
        aggregate = FlexOffer(
            earliest_start=self.base_start,
            latest_start=self.base_start + self.flexibility,
            slices=slices,
            resolution=self.resolution,
            offer_id=next_offer_id("agg"),
            source="aggregation",
            creation_time=self.creation_time,
        )
        return AggregatedFlexOffer(
            offer=aggregate,
            members=tuple(self.members),
            member_offsets=tuple(self.offsets) if self.keep_members else (),
        )


def aggregate_stream(
    offers: Iterable[FlexOffer],
    params: GroupingParams | None = None,
    epoch: datetime | None = None,
    keep_members: bool = True,
) -> Iterator[AggregatedFlexOffer]:
    """Fold an offer stream into aggregates; yields after the stream ends.

    Parameters
    ----------
    offers:
        Any iterable — a list, a generator over household chunks, anything.
        It is consumed exactly once and never materialized.
    params:
        The grouping grid (same defaults as :func:`group_offers`).
    epoch:
        Grid anchor for the start buckets.  Pass the batch default (the
        minimum earliest start) to reconcile bitwise with
        ``aggregate_all(group_offers(...))``; defaults to the first
        offer's earliest start.
    keep_members:
        ``True`` retains member offers and offsets so the aggregates can be
        disaggregated — and keeps them alive, making peak memory O(offers).
        ``False`` drops them once folded (aggregates carry empty
        ``members``): the O(accumulators + chunk) scale-out mode the scale
        benchmark measures.  The aggregate *offers* are identical either
        way.

    Yields aggregates in the batch path's order: sorted cell keys, splits
    in insertion order — which also makes the minted ``agg`` offer ids
    reconcile under the same :func:`~repro.flexoffer.model.offer_id_scope`.
    """
    params = params or GroupingParams()
    cells: dict[tuple[int, int, float], list[_GroupAccumulator]] = {}
    for offer in offers:
        if epoch is None:
            epoch = offer.earliest_start
        # floor, not int(): keeps pre-epoch offers in true single-width
        # buckets — the same arithmetic as ``group_offers``.
        start_bucket = math.floor(
            (offer.earliest_start - epoch) / params.start_tolerance
        )
        flex_bucket = int(offer.time_flexibility / params.flexibility_tolerance)
        key = (start_bucket, flex_bucket, offer.resolution.total_seconds())
        accumulators = cells.get(key)
        if accumulators is None:
            accumulators = cells[key] = [
                _GroupAccumulator(offer.resolution, keep_members)
            ]
        if accumulators[-1].count >= params.max_group_size:
            accumulators.append(_GroupAccumulator(offer.resolution, keep_members))
        accumulators[-1].add(offer)
    for key in sorted(cells):
        for accumulator in cells[key]:
            yield accumulator.finalize()

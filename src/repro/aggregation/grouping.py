"""Grid-based grouping of flex-offers prior to aggregation (paper [4]).

Šikšnys et al., "Aggregating and disaggregating flexibility objects"
(SSDBM 2012) — the substrate the paper's §6 relies on: "individual
flex-offers have to be aggregated from thousands consumers before the
actual scheduling".  Offers can only be aggregated losslessly-enough when
their time attributes are similar, so they are first grouped on a grid over
(earliest start, time flexibility): offers in the same cell differ by less
than the cell width in both coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.errors import AggregationError
from repro.flexoffer.model import FlexOffer


@dataclass(frozen=True, slots=True)
class GroupingParams:
    """Grid cell widths for the (earliest start, time flexibility) plane.

    Smaller cells preserve more member flexibility through aggregation but
    produce more groups (less compression) — the trade-off quantified by the
    aggregation ablation bench.
    """

    start_tolerance: timedelta = timedelta(hours=2)
    flexibility_tolerance: timedelta = timedelta(hours=4)
    max_group_size: int = 64

    def __post_init__(self) -> None:
        if self.start_tolerance <= timedelta(0):
            raise AggregationError("start_tolerance must be positive")
        if self.flexibility_tolerance <= timedelta(0):
            raise AggregationError("flexibility_tolerance must be positive")
        if self.max_group_size < 1:
            raise AggregationError("max_group_size must be >= 1")


def group_offers(
    offers: list[FlexOffer],
    params: GroupingParams | None = None,
    epoch: datetime | None = None,
) -> list[list[FlexOffer]]:
    """Partition offers into grid cells on (earliest start, flexibility).

    ``epoch`` anchors the grid (defaults to the earliest offer's start).
    Cells with more than ``max_group_size`` members are split in insertion
    order, which bounds the worst-case disaggregation error accumulation.
    Offers with different resolutions never share a group.
    """
    if not offers:
        return []
    params = params or GroupingParams()
    if epoch is None:
        epoch = min(o.earliest_start for o in offers)
    cells: dict[tuple[int, int, float], list[FlexOffer]] = {}
    for offer in offers:
        # floor, not int(): truncation toward zero would merge (-tol, 0) and
        # [0, tol) into one double-width bucket for offers before the epoch.
        start_bucket = math.floor(
            (offer.earliest_start - epoch) / params.start_tolerance
        )
        flex_bucket = int(offer.time_flexibility / params.flexibility_tolerance)
        key = (start_bucket, flex_bucket, offer.resolution.total_seconds())
        cells.setdefault(key, []).append(offer)
    groups: list[list[FlexOffer]] = []
    for key in sorted(cells):
        members = cells[key]
        for first in range(0, len(members), params.max_group_size):
            groups.append(members[first : first + params.max_group_size])
    return groups

"""Regular time axes: anchored, fixed-resolution time grids.

The whole library operates on *regular* time series (the paper's smart-meter
data is 15-minute metering; the simulator natively runs at 1 minute).  A
:class:`TimeAxis` is the shared coordinate system: an anchor timestamp, a fixed
resolution and a length.  Interval ``i`` covers the half-open range
``[start + i * resolution, start + (i + 1) * resolution)``.

Keeping the axis as an explicit object (rather than a list of timestamps)
makes alignment checks O(1) and keeps every series a plain numpy vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterator

from repro.errors import AxisMismatchError, ResolutionError

#: The paper's metering resolution: 15 minutes.
FIFTEEN_MINUTES = timedelta(minutes=15)

#: The simulator's native resolution: 1 minute.
ONE_MINUTE = timedelta(minutes=1)

ONE_HOUR = timedelta(hours=1)
ONE_DAY = timedelta(days=1)


@dataclass(frozen=True, slots=True)
class TimeAxis:
    """An anchored, fixed-resolution time grid.

    Parameters
    ----------
    start:
        Timestamp of the beginning of the first interval.
    resolution:
        Width of every interval; must be positive and divide one day evenly
        (so that day-based reasoning — "peaks within a 24-hour period" — is
        exact).
    length:
        Number of intervals on the axis; must be non-negative.
    """

    start: datetime
    resolution: timedelta
    length: int

    def __post_init__(self) -> None:
        if self.resolution <= timedelta(0):
            raise ResolutionError(f"resolution must be positive, got {self.resolution}")
        day_us = int(ONE_DAY.total_seconds() * 1_000_000)
        res_us = int(self.resolution.total_seconds() * 1_000_000)
        if day_us % res_us != 0:
            raise ResolutionError(
                f"resolution {self.resolution} must divide one day evenly"
            )
        if self.length < 0:
            raise ValueError(f"length must be >= 0, got {self.length}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def end(self) -> datetime:
        """Timestamp just after the last interval (exclusive end)."""
        return self.start + self.resolution * self.length

    @property
    def intervals_per_day(self) -> int:
        """Number of intervals that make up 24 hours (96 at 15 min)."""
        return int(ONE_DAY.total_seconds() // self.resolution.total_seconds())

    @property
    def intervals_per_hour(self) -> float:
        """Number of intervals per hour (4.0 at 15 min)."""
        return ONE_HOUR.total_seconds() / self.resolution.total_seconds()

    @property
    def duration(self) -> timedelta:
        """Total time span covered by the axis."""
        return self.resolution * self.length

    @property
    def hours_per_interval(self) -> float:
        """Interval width in hours — the kW <-> kWh conversion factor."""
        return self.resolution.total_seconds() / 3600.0

    # ------------------------------------------------------------------ #
    # Index <-> time conversion
    # ------------------------------------------------------------------ #

    def time_at(self, index: int) -> datetime:
        """Return the start timestamp of interval ``index``.

        Negative indices address intervals from the end, matching numpy
        semantics.  Raises :class:`IndexError` when out of bounds.
        """
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(f"interval index {index} out of range [0, {self.length})")
        return self.start + self.resolution * index

    def index_of(self, when: datetime) -> int:
        """Return the index of the interval containing ``when``.

        Raises :class:`IndexError` if ``when`` falls outside the axis.
        """
        offset = when - self.start
        index = int(offset // self.resolution)
        if not 0 <= index < self.length:
            raise IndexError(f"{when} is outside the axis [{self.start}, {self.end})")
        return index

    def clamp_index_of(self, when: datetime) -> int:
        """Like :meth:`index_of` but clamps out-of-range times to the edges."""
        offset = when - self.start
        index = int(offset // self.resolution)
        return max(0, min(self.length - 1, index))

    def contains(self, when: datetime) -> bool:
        """True if ``when`` falls within ``[start, end)``."""
        return self.start <= when < self.end

    def times(self) -> Iterator[datetime]:
        """Iterate the start timestamp of every interval."""
        for i in range(self.length):
            yield self.start + self.resolution * i

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #

    def sub_axis(self, first: int, length: int) -> "TimeAxis":
        """Return the axis covering ``length`` intervals from index ``first``."""
        if first < 0 or length < 0 or first + length > self.length:
            raise IndexError(
                f"sub-axis [{first}, {first + length}) out of range [0, {self.length})"
            )
        return TimeAxis(self.time_at(first) if length else self.start + self.resolution * first,
                        self.resolution, length)

    def day_slices(self) -> list[tuple[int, int]]:
        """Split the axis into per-day ``(first_index, length)`` windows.

        Days are aligned to the *axis anchor*, not to midnight, unless the
        anchor itself is midnight.  The final window may be shorter when the
        axis does not cover whole days.
        """
        per_day = self.intervals_per_day
        slices = []
        first = 0
        while first < self.length:
            slices.append((first, min(per_day, self.length - first)))
            first += per_day
        return slices

    def aligned_with(self, other: "TimeAxis") -> bool:
        """True when both axes share start, resolution and length."""
        return (
            self.start == other.start
            and self.resolution == other.resolution
            and self.length == other.length
        )

    def compatible_with(self, other: "TimeAxis") -> bool:
        """True when both axes share resolution and are phase-aligned.

        Two axes are *compatible* when a value at index ``i`` on one can be
        mapped onto the other by a pure integer shift.
        """
        if self.resolution != other.resolution:
            return False
        offset = other.start - self.start
        res_us = int(self.resolution.total_seconds() * 1_000_000)
        off_us = int(offset.total_seconds() * 1_000_000)
        return off_us % res_us == 0

    def require_aligned(self, other: "TimeAxis") -> None:
        """Raise :class:`AxisMismatchError` unless the axes are identical."""
        if not self.aligned_with(other):
            raise AxisMismatchError(
                f"axes differ: {self} vs {other}"
            )

    def shift(self, intervals: int) -> "TimeAxis":
        """Return the same-shaped axis moved by ``intervals`` grid steps."""
        return TimeAxis(self.start + self.resolution * intervals, self.resolution, self.length)

    def extended(self, extra_intervals: int) -> "TimeAxis":
        """Return the axis grown by ``extra_intervals`` at the end."""
        if extra_intervals < 0:
            raise ValueError("extra_intervals must be >= 0")
        return TimeAxis(self.start, self.resolution, self.length + extra_intervals)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeAxis(start={self.start.isoformat()}, "
            f"resolution={self.resolution}, length={self.length})"
        )


def axis_for_days(start: datetime, days: int, resolution: timedelta = FIFTEEN_MINUTES) -> TimeAxis:
    """Convenience constructor: an axis covering ``days`` whole days."""
    per_day = int(ONE_DAY.total_seconds() // resolution.total_seconds())
    return TimeAxis(start, resolution, per_day * days)

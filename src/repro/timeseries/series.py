"""Numpy-backed regular time series.

A :class:`TimeSeries` is a vector of float values on a :class:`TimeAxis`.
Values are unit-agnostic floats; by library convention consumption series hold
*energy per interval in kWh* (the paper's metering semantics), and the
``hours_per_interval`` factor on the axis converts to/from average power (kW).

The class is deliberately small and explicit: element-wise arithmetic against
aligned series or scalars, time-based slicing, day splitting, and resampling.
Anything fancier lives in :mod:`repro.timeseries.stats` and friends.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import AxisMismatchError, DataError, ResolutionError
from repro.timeseries.axis import TimeAxis


class TimeSeries:
    """A regular time series: a :class:`TimeAxis` plus a float vector.

    Parameters
    ----------
    axis:
        The time grid the values live on.
    values:
        Anything convertible to a 1-D float array of length ``axis.length``.
    name:
        Optional label used in reprs and plots.
    """

    __slots__ = ("axis", "values", "name")

    def __init__(self, axis: TimeAxis, values: Iterable[float], name: str = "") -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise DataError(f"values must be 1-D, got shape {arr.shape}")
        if arr.shape[0] != axis.length:
            raise DataError(
                f"length mismatch: axis has {axis.length} intervals, "
                f"values has {arr.shape[0]}"
            )
        if np.isnan(arr).any():
            raise DataError("values contain NaN")
        self.axis = axis
        self.values = arr
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zeros(cls, axis: TimeAxis, name: str = "") -> "TimeSeries":
        """An all-zero series on ``axis``."""
        return cls(axis, np.zeros(axis.length), name)

    @classmethod
    def full(cls, axis: TimeAxis, value: float, name: str = "") -> "TimeSeries":
        """A constant series on ``axis``."""
        return cls(axis, np.full(axis.length, float(value)), name)

    @classmethod
    def from_function(
        cls, axis: TimeAxis, fn: Callable[[datetime], float], name: str = ""
    ) -> "TimeSeries":
        """Evaluate ``fn`` at every interval start timestamp."""
        return cls(axis, [fn(t) for t in axis.times()], name)

    def copy(self) -> "TimeSeries":
        """An independent copy (values are not shared)."""
        return TimeSeries(self.axis, self.values.copy(), self.name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.axis.length

    def __iter__(self) -> Iterator[tuple[datetime, float]]:
        for i, t in enumerate(self.axis.times()):
            yield t, float(self.values[i])

    def value_at(self, when: datetime) -> float:
        """Value of the interval containing ``when``."""
        return float(self.values[self.axis.index_of(when)])

    def total(self) -> float:
        """Sum of all values (total energy for a consumption series)."""
        return float(self.values.sum())

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        return float(self.values.mean()) if len(self) else 0.0

    def max(self) -> float:
        """Largest value."""
        return float(self.values.max()) if len(self) else 0.0

    def min(self) -> float:
        """Smallest value."""
        return float(self.values.min()) if len(self) else 0.0

    def argmax(self) -> int:
        """Index of the largest value."""
        return int(np.argmax(self.values))

    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """True when no value is below ``-tolerance``."""
        return bool((self.values >= -tolerance).all())

    # ------------------------------------------------------------------ #
    # Arithmetic (aligned series or scalars)
    # ------------------------------------------------------------------ #

    def _coerce(self, other: "TimeSeries | float | int") -> np.ndarray:
        if isinstance(other, TimeSeries):
            self.axis.require_aligned(other.axis)
            return other.values
        return np.float64(other)

    def __add__(self, other: "TimeSeries | float | int") -> "TimeSeries":
        return TimeSeries(self.axis, self.values + self._coerce(other), self.name)

    def __radd__(self, other: "TimeSeries | float | int") -> "TimeSeries":
        # Supports sum([...]) which starts from 0.
        return self.__add__(other)

    def __sub__(self, other: "TimeSeries | float | int") -> "TimeSeries":
        return TimeSeries(self.axis, self.values - self._coerce(other), self.name)

    def __mul__(self, other: "TimeSeries | float | int") -> "TimeSeries":
        return TimeSeries(self.axis, self.values * self._coerce(other), self.name)

    def __rmul__(self, other: float | int) -> "TimeSeries":
        return self.__mul__(other)

    def __truediv__(self, other: "TimeSeries | float | int") -> "TimeSeries":
        return TimeSeries(self.axis, self.values / self._coerce(other), self.name)

    def __neg__(self) -> "TimeSeries":
        return TimeSeries(self.axis, -self.values, self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self.axis.aligned_with(other.axis) and np.array_equal(
            self.values, other.values
        )

    def __hash__(self) -> int:  # TimeSeries is mutable through .values
        raise TypeError("TimeSeries is unhashable")

    def allclose(self, other: "TimeSeries", atol: float = 1e-9) -> bool:
        """Numerically-tolerant equality on aligned axes."""
        return self.axis.aligned_with(other.axis) and bool(
            np.allclose(self.values, other.values, atol=atol)
        )

    def clip(self, lower: float = 0.0, upper: float | None = None) -> "TimeSeries":
        """Element-wise clamp; by default clamps negatives to zero."""
        return TimeSeries(self.axis, np.clip(self.values, lower, upper), self.name)

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #

    def slice(self, first: int, length: int) -> "TimeSeries":
        """Sub-series of ``length`` intervals starting at index ``first``."""
        sub = self.axis.sub_axis(first, length)
        return TimeSeries(sub, self.values[first : first + length], self.name)

    def between(self, start: datetime, end: datetime) -> "TimeSeries":
        """Sub-series covering intervals whose start lies in ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        i0 = self.axis.index_of(start)
        # end may coincide with the axis end, which index_of rejects.
        offset = end - self.axis.start
        i1 = int(offset // self.axis.resolution)
        i1 = min(i1, self.axis.length)
        return self.slice(i0, i1 - i0)

    def split_days(self) -> list["TimeSeries"]:
        """Split into per-day sub-series (last one may be partial)."""
        return [self.slice(first, length) for first, length in self.axis.day_slices()]

    def day(self, day_index: int) -> "TimeSeries":
        """The ``day_index``-th day of the series (0-based)."""
        slices = self.axis.day_slices()
        first, length = slices[day_index]
        return self.slice(first, length)

    def with_values(self, values: np.ndarray) -> "TimeSeries":
        """Same axis and name, different values."""
        return TimeSeries(self.axis, values, self.name)

    def with_name(self, name: str) -> "TimeSeries":
        """Same data, different label."""
        return TimeSeries(self.axis, self.values, name)

    # ------------------------------------------------------------------ #
    # Power/energy conversions
    # ------------------------------------------------------------------ #

    def energy_to_power(self) -> "TimeSeries":
        """Interpret values as kWh per interval; return average kW."""
        return TimeSeries(self.axis, self.values / self.axis.hours_per_interval, self.name)

    def power_to_energy(self) -> "TimeSeries":
        """Interpret values as average kW; return kWh per interval."""
        return TimeSeries(self.axis, self.values * self.axis.hours_per_interval, self.name)

    # ------------------------------------------------------------------ #
    # Profiles
    # ------------------------------------------------------------------ #

    def daily_profile(self, reducer: Callable[[np.ndarray], np.ndarray] | None = None) -> np.ndarray:
        """Collapse the series onto one synthetic day.

        Returns a vector of length ``intervals_per_day`` where entry ``k`` is
        the mean (or custom ``reducer`` applied across days, e.g.
        ``np.median``) of all values at day-phase ``k``.  Partial trailing
        days are excluded.
        """
        per_day = self.axis.intervals_per_day
        whole_days = self.axis.length // per_day
        if whole_days == 0:
            raise DataError("series shorter than one day; no daily profile")
        stacked = self.values[: whole_days * per_day].reshape(whole_days, per_day)
        if reducer is None:
            return stacked.mean(axis=0)
        return reducer(stacked)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TimeSeries({label} {self.axis.length}x{self.axis.resolution} "
            f"from {self.axis.start.isoformat()}, total={self.total():.3f})"
        )


def stack(series: list[TimeSeries]) -> np.ndarray:
    """Stack aligned series into a 2-D array of shape ``(n_series, length)``."""
    if not series:
        raise DataError("cannot stack an empty list of series")
    first = series[0]
    for s in series[1:]:
        first.axis.require_aligned(s.axis)
    return np.vstack([s.values for s in series])


def concat(series: list[TimeSeries]) -> TimeSeries:
    """Concatenate consecutive series into one.

    Each series must start exactly where the previous one ends and share the
    resolution.
    """
    if not series:
        raise DataError("cannot concat an empty list of series")
    res = series[0].axis.resolution
    for prev, nxt in zip(series, series[1:]):
        if nxt.axis.resolution != res:
            raise ResolutionError("concat requires equal resolutions")
        if nxt.axis.start != prev.axis.end:
            raise AxisMismatchError(
                f"gap or overlap at {prev.axis.end} vs {nxt.axis.start}"
            )
    total = sum(s.axis.length for s in series)
    axis = TimeAxis(series[0].axis.start, res, total)
    return TimeSeries(axis, np.concatenate([s.values for s in series]), series[0].name)

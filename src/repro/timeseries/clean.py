"""Meter-data quality: gap detection, repair and outlier handling.

Raw smart-meter exports carry missing intervals, meter resets (spurious
zeros) and spikes.  The paper's related work ([14]) discusses filling
missing values; these utilities implement the standard repairs so the
extraction pipeline can run on imperfect inputs, and a validation report so
callers can decide whether a series is usable at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.errors import DataError
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Outcome of meter-series validation."""

    intervals: int
    missing: int
    negative: int
    spikes: int
    longest_gap: int

    @property
    def missing_fraction(self) -> float:
        """Share of intervals flagged missing."""
        return self.missing / self.intervals if self.intervals else 0.0

    @property
    def usable(self) -> bool:
        """Heuristic: under 10 % missing and no week-long gaps."""
        return self.missing_fraction < 0.10 and self.longest_gap < 96 * 7


def find_gaps(
    timestamps: list[datetime], resolution: timedelta
) -> list[tuple[datetime, datetime]]:
    """Missing ranges between consecutive readings on a regular grid.

    Returns ``(gap_start, gap_end)`` pairs covering the absent intervals
    (half-open, grid-aligned).  Raises on unordered or duplicate stamps.
    """
    gaps = []
    for a, b in zip(timestamps, timestamps[1:]):
        if b <= a:
            raise DataError(f"timestamps not strictly increasing at {a} -> {b}")
        delta = b - a
        if delta == resolution:
            continue
        steps = delta / resolution
        if abs(steps - round(steps)) > 1e-9:
            raise DataError(f"off-grid timestamp spacing {delta} at {a}")
        gaps.append((a + resolution, b))
    return gaps


def assemble_regular(
    readings: list[tuple[datetime, float]],
    resolution: timedelta,
    missing_marker: float = np.nan,
) -> tuple[TimeSeries, np.ndarray]:
    """Place irregular readings onto a regular axis.

    Returns ``(series, missing_mask)`` where missing intervals hold 0.0 in
    the series and ``True`` in the mask.  (A :class:`TimeSeries` never
    stores NaN; the mask is the missing-data channel.)
    """
    if not readings:
        raise DataError("no readings")
    readings = sorted(readings, key=lambda r: r[0])
    timestamps = [r[0] for r in readings]
    find_gaps(timestamps, resolution)  # validates grid alignment
    start, end = timestamps[0], timestamps[-1]
    length = int((end - start) / resolution) + 1
    axis = TimeAxis(start, resolution, length)
    values = np.zeros(length)
    mask = np.ones(length, dtype=bool)
    for when, value in readings:
        idx = axis.index_of(when)
        values[idx] = value
        mask[idx] = False
    return TimeSeries(axis, values, "assembled"), mask


def fill_missing(
    series: TimeSeries,
    missing: np.ndarray,
    method: str = "daily-profile",
) -> TimeSeries:
    """Impute flagged intervals.

    Methods
    -------
    ``"interpolate"``
        Linear interpolation between the nearest present neighbours (edge
        gaps take the nearest present value).
    ``"daily-profile"``
        Replace each missing interval with the mean of the *present* values
        at the same day-phase — the standard choice for load data, which is
        daily-periodic (gaps longer than a few hours would interpolate
        through the night/evening structure).
    """
    missing = np.asarray(missing, dtype=bool)
    if missing.shape != series.values.shape:
        raise DataError("missing mask shape mismatch")
    if not missing.any():
        return series.copy()
    if missing.all():
        raise DataError("cannot impute a fully-missing series")
    values = series.values.copy()
    present_idx = np.flatnonzero(~missing)
    if method == "interpolate":
        values[missing] = np.interp(
            np.flatnonzero(missing), present_idx, values[present_idx]
        )
    elif method == "daily-profile":
        per_day = series.axis.intervals_per_day
        phases = np.arange(len(values)) % per_day
        overall_mean = values[~missing].mean()
        for phase in np.unique(phases[missing]):
            donors = (~missing) & (phases == phase)
            fill = values[donors].mean() if donors.any() else overall_mean
            values[missing & (phases == phase)] = fill
    else:
        raise DataError(f"unknown imputation method {method!r}")
    return series.with_values(values).with_name(f"{series.name}.filled")


def clip_outliers(series: TimeSeries, max_sigma: float = 6.0) -> tuple[TimeSeries, int]:
    """Clamp spikes beyond ``max_sigma`` robust deviations of the median.

    Uses the MAD-based robust sigma so genuine appliance peaks (which are
    part of every day) do not inflate the threshold.  Returns the repaired
    series and the number of clipped intervals.
    """
    if max_sigma <= 0:
        raise DataError("max_sigma must be positive")
    x = series.values
    median = float(np.median(x))
    mad = float(np.median(np.abs(x - median)))
    sigma = 1.4826 * mad
    if sigma == 0.0:
        return series.copy(), 0
    ceiling = median + max_sigma * sigma
    clipped = int(np.sum(x > ceiling))
    return series.with_values(np.minimum(x, ceiling)), clipped


def validate_meter_series(
    series: TimeSeries, missing: np.ndarray | None = None, spike_sigma: float = 6.0
) -> QualityReport:
    """Summarise data-quality issues in a metered series."""
    x = series.values
    missing = (
        np.zeros(len(x), dtype=bool) if missing is None else np.asarray(missing, bool)
    )
    negative = int(np.sum(x < 0))
    median = float(np.median(x))
    mad = float(np.median(np.abs(x - median)))
    sigma = 1.4826 * mad
    spikes = int(np.sum(x > median + spike_sigma * sigma)) if sigma > 0 else 0
    longest = 0
    run = 0
    for flag in missing:
        run = run + 1 if flag else 0
        longest = max(longest, run)
    return QualityReport(
        intervals=len(x),
        missing=int(missing.sum()),
        negative=negative,
        spikes=spikes,
        longest_gap=longest,
    )

"""Resampling between time-grid resolutions.

Consumption series hold *energy per interval*, so downsampling aggregates by
summation and upsampling spreads energy evenly.  For series holding averages
(power, temperature) use the ``mean``/``repeat`` variants.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np

from repro.errors import ResolutionError
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


def _ratio(coarse: timedelta, fine: timedelta) -> int:
    """Integer number of fine intervals per coarse interval."""
    coarse_us = int(coarse.total_seconds() * 1_000_000)
    fine_us = int(fine.total_seconds() * 1_000_000)
    if coarse_us % fine_us != 0:
        raise ResolutionError(f"{coarse} is not an integer multiple of {fine}")
    return coarse_us // fine_us


def downsample_sum(series: TimeSeries, resolution: timedelta) -> TimeSeries:
    """Aggregate to a coarser grid by summing (energy semantics).

    The series length must be an exact multiple of the ratio; metering data
    always is, and requiring it keeps energy conservation exact.
    """
    ratio = _ratio(resolution, series.axis.resolution)
    if series.axis.length % ratio != 0:
        raise ResolutionError(
            f"length {series.axis.length} not divisible by ratio {ratio}"
        )
    coarse_len = series.axis.length // ratio
    values = series.values.reshape(coarse_len, ratio).sum(axis=1)
    axis = TimeAxis(series.axis.start, resolution, coarse_len)
    return TimeSeries(axis, values, series.name)


def downsample_mean(series: TimeSeries, resolution: timedelta) -> TimeSeries:
    """Aggregate to a coarser grid by averaging (power/temperature semantics)."""
    ratio = _ratio(resolution, series.axis.resolution)
    if series.axis.length % ratio != 0:
        raise ResolutionError(
            f"length {series.axis.length} not divisible by ratio {ratio}"
        )
    coarse_len = series.axis.length // ratio
    values = series.values.reshape(coarse_len, ratio).mean(axis=1)
    axis = TimeAxis(series.axis.start, resolution, coarse_len)
    return TimeSeries(axis, values, series.name)


def upsample_spread(series: TimeSeries, resolution: timedelta) -> TimeSeries:
    """Refine to a finer grid spreading each value evenly (energy semantics).

    ``downsample_sum(upsample_spread(s, r), s.resolution)`` is the identity.
    """
    ratio = _ratio(series.axis.resolution, resolution)
    values = np.repeat(series.values / ratio, ratio)
    axis = TimeAxis(series.axis.start, resolution, series.axis.length * ratio)
    return TimeSeries(axis, values, series.name)


def upsample_repeat(series: TimeSeries, resolution: timedelta) -> TimeSeries:
    """Refine to a finer grid repeating each value (power semantics)."""
    ratio = _ratio(series.axis.resolution, resolution)
    values = np.repeat(series.values, ratio)
    axis = TimeAxis(series.axis.start, resolution, series.axis.length * ratio)
    return TimeSeries(axis, values, series.name)

"""Time-series (de)serialisation: CSV and JSON meter-data formats.

Real deployments feed extraction from metering databases; this module
provides the boundary: a CSV format (``timestamp,value`` with ISO-8601
timestamps) and a compact JSON encoding (anchor + resolution + values).
Both round-trip exactly and validate regularity on load.
"""

from __future__ import annotations

import csv
import json
from datetime import datetime, timedelta
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import DataError
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


def series_to_dict(series: TimeSeries) -> dict[str, Any]:
    """Compact JSON-compatible encoding (anchor + resolution + values)."""
    return {
        "start": series.axis.start.isoformat(),
        "resolution_seconds": series.axis.resolution.total_seconds(),
        "name": series.name,
        "values": [float(v) for v in series.values],
    }


def series_from_dict(data: dict[str, Any]) -> TimeSeries:
    """Decode a series from its dict encoding."""
    try:
        axis = TimeAxis(
            start=datetime.fromisoformat(data["start"]),
            resolution=timedelta(seconds=data["resolution_seconds"]),
            length=len(data["values"]),
        )
        return TimeSeries(axis, data["values"], data.get("name", ""))
    except KeyError as exc:
        raise DataError(f"series dict missing field: {exc}") from exc


def save_series_json(series: TimeSeries, path: str | Path) -> None:
    """Write one series to a JSON file."""
    Path(path).write_text(json.dumps(series_to_dict(series)))


def load_series_json(path: str | Path) -> TimeSeries:
    """Read one series from a JSON file."""
    return series_from_dict(json.loads(Path(path).read_text()))


def save_series_csv(series: TimeSeries, path: str | Path) -> None:
    """Write ``timestamp,value`` rows (ISO-8601, one per interval)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for when, value in series:
            writer.writerow([when.isoformat(), repr(value)])


def load_series_csv(path: str | Path, name: str = "") -> TimeSeries:
    """Read a ``timestamp,value`` CSV written by :func:`save_series_csv`.

    Validates that timestamps form a regular grid; raises
    :class:`DataError` on gaps, duplicates or irregular spacing (use
    :mod:`repro.timeseries.clean` to repair raw meter exports first).
    """
    timestamps: list[datetime] = []
    values: list[float] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:2]] != ["timestamp", "value"]:
            raise DataError(f"{path}: expected header 'timestamp,value'")
        for line_no, row in enumerate(reader, start=2):
            if len(row) < 2:
                raise DataError(f"{path}:{line_no}: short row")
            try:
                timestamps.append(datetime.fromisoformat(row[0]))
                values.append(float(row[1]))
            except ValueError as exc:
                raise DataError(f"{path}:{line_no}: {exc}") from exc
    if len(timestamps) < 2:
        raise DataError(f"{path}: need at least two rows to infer a resolution")
    resolution = timestamps[1] - timestamps[0]
    if resolution <= timedelta(0):
        raise DataError(f"{path}: non-increasing timestamps")
    for i, (a, b) in enumerate(zip(timestamps, timestamps[1:]), start=2):
        if b - a != resolution:
            raise DataError(
                f"{path}: irregular spacing at row {i + 1}: {b - a} != {resolution}"
            )
    axis = TimeAxis(timestamps[0], resolution, len(values))
    return TimeSeries(axis, values, name)

"""Regular time-series engine (the library's pandas-free substrate).

Public surface:

* :class:`~repro.timeseries.axis.TimeAxis` — anchored fixed-resolution grid.
* :class:`~repro.timeseries.series.TimeSeries` — numpy-backed values on an axis.
* :mod:`~repro.timeseries.resample` — energy/power aware up/down-sampling.
* :mod:`~repro.timeseries.stats` — correlation, sparseness, autocorrelation...
* :mod:`~repro.timeseries.decompose` — classical additive decomposition.
* :mod:`~repro.timeseries.calendar` — day types, seasons, daily windows.

Subsystem contract:

* **Regular axes, naive standard time** — a :class:`TimeAxis` never
  jumps; DST weeks are represented in naive local standard time, and the
  calendar layer (day types, seasons) is total across transitions, leap
  days and year boundaries (hypothesis-tested).
* **Energy semantics** — series carry kWh *per interval*;
  resampling conserves energy exactly (``downsample_sum`` /
  ``upsample_divide`` round-trip bitwise on aligned grids).
* **Validation at the edge** — construction rejects NaNs and axis
  mismatches (:class:`~repro.errors.AxisMismatchError`), so downstream
  numerics never need defensive checks.
"""

from repro.timeseries.axis import (
    FIFTEEN_MINUTES,
    ONE_DAY,
    ONE_HOUR,
    ONE_MINUTE,
    TimeAxis,
    axis_for_days,
)
from repro.timeseries.calendar import DailyWindow, DayType, Season, day_type, season
from repro.timeseries.clean import (
    QualityReport,
    assemble_regular,
    clip_outliers,
    fill_missing,
    find_gaps,
    validate_meter_series,
)
from repro.timeseries.decompose import Decomposition, decompose_additive, seasonal_profile
from repro.timeseries.resample import (
    downsample_mean,
    downsample_sum,
    upsample_repeat,
    upsample_spread,
)
from repro.timeseries.io import (
    load_series_csv,
    load_series_json,
    save_series_csv,
    save_series_json,
    series_from_dict,
    series_to_dict,
)
from repro.timeseries.series import TimeSeries, concat, stack

__all__ = [
    "FIFTEEN_MINUTES",
    "ONE_DAY",
    "ONE_HOUR",
    "ONE_MINUTE",
    "TimeAxis",
    "axis_for_days",
    "DailyWindow",
    "DayType",
    "Season",
    "day_type",
    "season",
    "Decomposition",
    "decompose_additive",
    "seasonal_profile",
    "downsample_mean",
    "downsample_sum",
    "upsample_repeat",
    "upsample_spread",
    "TimeSeries",
    "concat",
    "stack",
    "QualityReport",
    "assemble_regular",
    "clip_outliers",
    "fill_missing",
    "find_gaps",
    "validate_meter_series",
    "load_series_csv",
    "load_series_json",
    "save_series_csv",
    "save_series_json",
    "series_from_dict",
    "series_to_dict",
]

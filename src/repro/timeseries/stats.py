"""Descriptive statistics for electricity time series.

Section 3.1 of the paper names the statistics one would use to judge extracted
flex-offers — "correlation, sparseness, autocorrelation" — and laments that
they cannot be evaluated against real flex-offers.  This module implements
those statistics (plus the standard load-shape indicators used in the energy
literature) so the evaluation the paper motivates can actually be run against
simulator ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


def correlation(a: TimeSeries, b: TimeSeries) -> float:
    """Pearson correlation between two aligned series.

    Returns 0.0 when either series is constant (the undefined case), which is
    the conservative choice for realism scoring: a constant extraction carries
    no shape information about the consumption it came from.
    """
    a.axis.require_aligned(b.axis)
    if len(a) < 2:
        raise DataError("correlation needs at least two intervals")
    sa = a.values.std()
    sb = b.values.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.corrcoef(a.values, b.values)[0, 1])


def autocorrelation(series: TimeSeries, lag: int) -> float:
    """Autocorrelation of the series at an integer ``lag`` (in intervals).

    Uses the standard biased estimator (normalised by the full-series
    variance), which is what statistical packages report by default.
    """
    n = len(series)
    if not 0 <= lag < n:
        raise DataError(f"lag {lag} out of range [0, {n})")
    x = series.values - series.values.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        return 1.0 if lag == 0 else 0.0
    return float(np.dot(x[: n - lag], x[lag:]) / denom)


def autocorrelation_function(series: TimeSeries, max_lag: int) -> np.ndarray:
    """ACF values for lags ``0..max_lag`` inclusive."""
    return np.array([autocorrelation(series, k) for k in range(max_lag + 1)])


def sparseness(series: TimeSeries) -> float:
    """Hoyer sparseness in [0, 1]: 0 for a flat series, 1 for a single spike.

    Defined for non-negative vectors as
    ``(sqrt(n) - l1/l2) / (sqrt(n) - 1)``; this is the standard measure for
    "how concentrated is the energy" and matches the intuition behind the
    paper's use of the word: realistic flex-offers are sparse in time, random
    ones are spread out.
    """
    x = np.abs(series.values)
    n = x.shape[0]
    if n < 2:
        raise DataError("sparseness needs at least two intervals")
    l1 = float(x.sum())
    l2 = float(np.sqrt(np.dot(x, x)))
    if l2 == 0.0:
        return 0.0
    raw = (np.sqrt(n) - l1 / l2) / (np.sqrt(n) - 1.0)
    # Clamp float round-off (a perfectly flat vector can land at -1e-16).
    return float(np.clip(raw, 0.0, 1.0))


def zero_fraction(series: TimeSeries, threshold: float = 1e-9) -> float:
    """Fraction of intervals with (near-)zero value."""
    return float(np.mean(np.abs(series.values) <= threshold))


def peak_to_average_ratio(series: TimeSeries) -> float:
    """Max over mean — the classic load "peakiness" indicator."""
    mean = series.mean()
    if mean == 0.0:
        return 0.0
    return series.max() / mean


def load_factor(series: TimeSeries) -> float:
    """Mean over max, in [0, 1]; the utility-industry complement of PAR."""
    peak = series.max()
    if peak == 0.0:
        return 0.0
    return series.mean() / peak


def coefficient_of_variation(series: TimeSeries) -> float:
    """Standard deviation over mean (relative variability)."""
    mean = series.mean()
    if mean == 0.0:
        return 0.0
    return float(series.values.std() / mean)


def shannon_entropy(series: TimeSeries, bins: int = 16) -> float:
    """Entropy (bits) of the histogram of values; a diversity indicator."""
    if bins < 2:
        raise DataError("need at least two bins")
    counts, _ = np.histogram(series.values, bins=bins)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def temporal_dispersion(series: TimeSeries) -> float:
    """Circular std-dev of energy mass over the day-phase, in intervals.

    Treats each day-phase as an angle and weights it by the energy at that
    phase, accumulated across days.  Low values mean energy concentrates at a
    particular time of day (e.g. an evening peak); high values mean energy is
    spread uniformly — the failure mode of the random generator the paper
    criticises.
    """
    per_day = series.axis.intervals_per_day
    phases = np.arange(len(series)) % per_day
    weights = np.abs(series.values)
    total = weights.sum()
    if total == 0.0:
        return 0.0
    angles = 2.0 * np.pi * phases / per_day
    c = float((weights * np.cos(angles)).sum() / total)
    s = float((weights * np.sin(angles)).sum() / total)
    r = np.hypot(c, s)
    if r >= 1.0:
        return 0.0
    # Circular standard deviation, mapped back from radians to intervals.
    circ_std = np.sqrt(-2.0 * np.log(r))
    return float(circ_std * per_day / (2.0 * np.pi))


def cross_correlation_best_lag(a: TimeSeries, b: TimeSeries, max_lag: int) -> tuple[int, float]:
    """Lag in ``[-max_lag, max_lag]`` maximising the correlation of ``a`` vs ``b``.

    Returns ``(lag, correlation_at_lag)``; positive lag means ``b`` trails
    ``a``.  Useful for checking whether extracted flexibility tracks the
    consumption shape with a time offset.
    """
    a.axis.require_aligned(b.axis)
    n = len(a)
    if max_lag >= n:
        raise DataError(f"max_lag {max_lag} must be < length {n}")
    best_lag = 0
    best_corr = -np.inf
    av = a.values
    bv = b.values
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            x, y = av[: n - lag], bv[lag:]
        else:
            x, y = av[-lag:], bv[: n + lag]
        if x.std() == 0.0 or y.std() == 0.0:
            corr = 0.0
        else:
            corr = float(np.corrcoef(x, y)[0, 1])
        if corr > best_corr:
            best_corr = corr
            best_lag = lag
    return best_lag, best_corr


def describe(series: TimeSeries) -> dict[str, float]:
    """One-call summary used in reports and benchmark output."""
    return {
        "total": series.total(),
        "mean": series.mean(),
        "min": series.min(),
        "max": series.max(),
        "std": float(series.values.std()),
        "peak_to_average": peak_to_average_ratio(series),
        "load_factor": load_factor(series),
        "sparseness": sparseness(series) if len(series) >= 2 else 0.0,
        "zero_fraction": zero_fraction(series),
    }

"""Classical time-series decomposition (trend + seasonal + residual).

The paper's related work (§5, [12]) frames consumption series as composed of
"trend, seasonal, and error components".  The multi-tariff extractor uses the
seasonal (daily/weekly) component as the "typical behaviour" reference, so we
implement the classical additive decomposition with a centred moving average
trend — the textbook method, fully deterministic, no pandas required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class Decomposition:
    """Result of an additive decomposition: ``observed = trend + seasonal + residual``."""

    observed: TimeSeries
    trend: TimeSeries
    seasonal: TimeSeries
    residual: TimeSeries

    def reconstruction_error(self) -> float:
        """Max absolute error of trend+seasonal+residual vs observed."""
        recon = self.trend.values + self.seasonal.values + self.residual.values
        return float(np.abs(recon - self.observed.values).max())


def _centred_moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge padding (reflect).

    For even windows uses the standard 2×MA construction so the average is
    properly centred on each point.
    """
    if window < 2:
        raise DataError("window must be >= 2")
    if window % 2 == 1:
        kernel = np.full(window, 1.0 / window)
    else:
        # 2xMA: average of two shifted even-width windows == odd kernel with
        # half-weight endpoints.
        kernel = np.full(window + 1, 1.0 / window)
        kernel[0] *= 0.5
        kernel[-1] *= 0.5
    pad = len(kernel) // 2
    padded = np.pad(x, pad, mode="reflect")
    return np.convolve(padded, kernel, mode="valid")


def decompose_additive(series: TimeSeries, period: int | None = None) -> Decomposition:
    """Classical additive decomposition with period ``period`` (in intervals).

    ``period`` defaults to one day on the series' axis.  The series must
    cover at least two full periods, otherwise the seasonal component is not
    identifiable.
    """
    if period is None:
        period = series.axis.intervals_per_day
    n = len(series)
    if period < 2:
        raise DataError(f"period must be >= 2, got {period}")
    if n < 2 * period:
        raise DataError(
            f"series of {n} intervals is too short for period {period} "
            "(need at least two periods)"
        )
    x = series.values
    trend = _centred_moving_average(x, period)
    detrended = x - trend
    # Seasonal: mean of the detrended values at each phase, centred to sum 0.
    phases = np.arange(n) % period
    seasonal_means = np.zeros(period)
    for k in range(period):
        seasonal_means[k] = detrended[phases == k].mean()
    seasonal_means -= seasonal_means.mean()
    seasonal = seasonal_means[phases]
    residual = x - trend - seasonal
    return Decomposition(
        observed=series,
        trend=series.with_values(trend).with_name(f"{series.name}.trend"),
        seasonal=series.with_values(seasonal).with_name(f"{series.name}.seasonal"),
        residual=series.with_values(residual).with_name(f"{series.name}.residual"),
    )


def seasonal_profile(series: TimeSeries, period: int | None = None) -> np.ndarray:
    """Seasonal component values for one period (convenience accessor)."""
    dec = decompose_additive(series, period)
    if period is None:
        period = series.axis.intervals_per_day
    return dec.seasonal.values[:period].copy()

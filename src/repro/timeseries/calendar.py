"""Calendar context: day types, seasons, tariff-relevant time windows.

The multi-tariff and schedule-based extractors reason about "typical behaviour
during the work days, weekends, holidays, different seasons of the year"
(paper §3.3).  This module provides those categorisations.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, time, timedelta
from enum import Enum


class DayType(Enum):
    """Coarse behavioural day categories used by the extraction algorithms."""

    WORKDAY = "workday"
    SATURDAY = "saturday"
    SUNDAY = "sunday"

    @property
    def is_weekend(self) -> bool:
        """True for Saturday/Sunday."""
        return self is not DayType.WORKDAY


class Season(Enum):
    """Meteorological seasons (northern hemisphere)."""

    WINTER = "winter"
    SPRING = "spring"
    SUMMER = "summer"
    AUTUMN = "autumn"


#: A small fixed-date public-holiday list (Denmark-flavoured, as in MIRABEL's
#: trial region).  Holidays behave like Sundays for consumption purposes.
FIXED_HOLIDAYS: frozenset[tuple[int, int]] = frozenset(
    {
        (1, 1),   # New Year
        (6, 5),   # Constitution Day
        (12, 24), # Christmas Eve
        (12, 25), # Christmas Day
        (12, 26), # Second Christmas Day
        (12, 31), # New Year's Eve
    }
)


def is_holiday(day: date) -> bool:
    """True when ``day`` is on the fixed public-holiday list."""
    return (day.month, day.day) in FIXED_HOLIDAYS


def day_type(day: date) -> DayType:
    """Categorise a calendar date; holidays count as Sundays."""
    if is_holiday(day):
        return DayType.SUNDAY
    weekday = day.weekday()
    if weekday == 5:
        return DayType.SATURDAY
    if weekday == 6:
        return DayType.SUNDAY
    return DayType.WORKDAY


def season(day: date) -> Season:
    """Meteorological season of a date (Dec–Feb winter, etc.)."""
    month = day.month
    if month in (12, 1, 2):
        return Season.WINTER
    if month in (3, 4, 5):
        return Season.SPRING
    if month in (6, 7, 8):
        return Season.SUMMER
    return Season.AUTUMN


@dataclass(frozen=True, slots=True)
class DailyWindow:
    """A recurring time-of-day window, possibly wrapping past midnight.

    ``DailyWindow(time(22), time(6))`` covers 22:00–24:00 and 00:00–06:00 of
    every day — the classic low-tariff night window.
    """

    start: time
    end: time

    def contains(self, when: datetime | time) -> bool:
        """True when the time-of-day of ``when`` falls inside the window."""
        t = when.time() if isinstance(when, datetime) else when
        if self.start <= self.end:
            return self.start <= t < self.end
        return t >= self.start or t < self.end

    @property
    def wraps_midnight(self) -> bool:
        """True when the window crosses midnight."""
        return self.end < self.start

    def duration(self) -> timedelta:
        """Length of the window."""
        anchor = datetime(2000, 1, 1)
        start_dt = datetime.combine(anchor.date(), self.start)
        end_dt = datetime.combine(anchor.date(), self.end)
        if self.wraps_midnight:
            end_dt += timedelta(days=1)
        return end_dt - start_dt


def minutes_since_midnight(when: datetime | time) -> int:
    """Minutes elapsed since 00:00 for a datetime or time."""
    t = when.time() if isinstance(when, datetime) else when
    return t.hour * 60 + t.minute

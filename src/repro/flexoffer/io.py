"""JSON (de)serialisation of flex-offers and schedules.

MIRABEL's data-management layer (paper [3]) persists flex-offers in a
warehouse; this module provides the equivalent stable wire format: a plain
dict/JSON encoding with ISO-8601 timestamps and second-resolution durations,
round-trippable without loss.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import DataError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import ScheduledFlexOffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.greedy import ScheduleResult
    from repro.scheduling.zones import ZonedScheduleResult

_FORMAT_VERSION = 1


def _dt(value: datetime | None) -> str | None:
    return None if value is None else value.isoformat()


def _parse_dt(value: str | None) -> datetime | None:
    return None if value is None else datetime.fromisoformat(value)


def flexoffer_to_dict(offer: FlexOffer) -> dict[str, Any]:
    """Encode a flex-offer as a JSON-compatible dict."""
    return {
        "version": _FORMAT_VERSION,
        "offer_id": offer.offer_id,
        "consumer_id": offer.consumer_id,
        "appliance": offer.appliance,
        "source": offer.source,
        "earliest_start": _dt(offer.earliest_start),
        "latest_start": _dt(offer.latest_start),
        "resolution_seconds": offer.resolution.total_seconds(),
        "creation_time": _dt(offer.creation_time),
        "acceptance_deadline": _dt(offer.acceptance_deadline),
        "assignment_deadline": _dt(offer.assignment_deadline),
        "total_energy_min": offer.total_energy_min,
        "total_energy_max": offer.total_energy_max,
        "slices": [
            {"energy_min": s.energy_min, "energy_max": s.energy_max, "duration": s.duration}
            for s in offer.slices
        ],
    }


def flexoffer_from_dict(data: dict[str, Any]) -> FlexOffer:
    """Decode a flex-offer from its dict encoding."""
    try:
        version = data.get("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise DataError(f"unsupported flex-offer format version {version}")
        slices = tuple(
            ProfileSlice(s["energy_min"], s["energy_max"], s.get("duration", 1))
            for s in data["slices"]
        )
        return FlexOffer(
            earliest_start=_parse_dt(data["earliest_start"]),
            latest_start=_parse_dt(data["latest_start"]),
            slices=slices,
            resolution=timedelta(seconds=data["resolution_seconds"]),
            offer_id=data["offer_id"],
            consumer_id=data.get("consumer_id", ""),
            appliance=data.get("appliance", ""),
            source=data.get("source", ""),
            creation_time=_parse_dt(data.get("creation_time")),
            acceptance_deadline=_parse_dt(data.get("acceptance_deadline")),
            assignment_deadline=_parse_dt(data.get("assignment_deadline")),
            total_energy_min=data.get("total_energy_min"),
            total_energy_max=data.get("total_energy_max"),
        )
    except KeyError as exc:
        raise DataError(f"flex-offer dict missing field: {exc}") from exc


def schedule_to_dict(schedule: ScheduledFlexOffer) -> dict[str, Any]:
    """Encode a scheduled flex-offer (embeds the offer)."""
    return {
        "offer": flexoffer_to_dict(schedule.offer),
        "start": _dt(schedule.start),
        "slice_energies": list(schedule.slice_energies),
    }


def schedule_from_dict(data: dict[str, Any]) -> ScheduledFlexOffer:
    """Decode a scheduled flex-offer."""
    try:
        return ScheduledFlexOffer(
            offer=flexoffer_from_dict(data["offer"]),
            start=_parse_dt(data["start"]),
            slice_energies=tuple(data["slice_energies"]),
        )
    except KeyError as exc:
        raise DataError(f"schedule dict missing field: {exc}") from exc


def aggregated_to_dict(aggregate: "AggregatedFlexOffer") -> dict[str, Any]:
    """Encode an aggregated flex-offer (aggregate + members + offsets).

    Part of the extended wire format used by run reports
    (:mod:`repro.api.service`): the full aggregation output round-trips, so
    a stored report supports later disaggregation.
    """
    return {
        "offer": flexoffer_to_dict(aggregate.offer),
        "members": [flexoffer_to_dict(m) for m in aggregate.members],
        "member_offsets": list(aggregate.member_offsets),
    }


def aggregated_from_dict(data: dict[str, Any]) -> "AggregatedFlexOffer":
    """Decode an aggregated flex-offer from its dict encoding."""
    from repro.aggregation.aggregate import AggregatedFlexOffer

    try:
        return AggregatedFlexOffer(
            offer=flexoffer_from_dict(data["offer"]),
            members=tuple(flexoffer_from_dict(m) for m in data["members"]),
            member_offsets=tuple(int(o) for o in data["member_offsets"]),
        )
    except KeyError as exc:
        raise DataError(f"aggregated flex-offer dict missing field: {exc}") from exc


def schedule_result_to_dict(result: "ScheduleResult") -> dict[str, Any]:
    """Encode a scheduling run (axis + target + placements + unplaced).

    The demand plan is not stored: it is exactly the sum of the encoded
    schedules on the encoded axis, and :func:`schedule_result_from_dict`
    rebuilds it deterministically — keeping the wire format minimal while
    the round-trip stays lossless.
    """
    axis = result.target.axis
    return {
        "axis": {
            "start": _dt(axis.start),
            "resolution_seconds": axis.resolution.total_seconds(),
            "length": axis.length,
        },
        "target": {
            "name": result.target.name,
            "values": [float(v) for v in result.target.values],
        },
        "schedules": [schedule_to_dict(s) for s in result.schedules],
        "unplaced": [flexoffer_to_dict(o) for o in result.unplaced],
    }


def schedule_result_from_dict(data: dict[str, Any]) -> "ScheduleResult":
    """Decode a scheduling run, rebuilding the demand plan from the parts."""
    from repro.flexoffer.schedule import schedules_to_series
    from repro.scheduling.greedy import ScheduleResult
    from repro.timeseries.axis import TimeAxis
    from repro.timeseries.series import TimeSeries

    try:
        axis = TimeAxis(
            start=_parse_dt(data["axis"]["start"]),
            resolution=timedelta(seconds=data["axis"]["resolution_seconds"]),
            length=int(data["axis"]["length"]),
        )
        target = TimeSeries(
            axis, data["target"]["values"], name=data["target"].get("name", "")
        )
        schedules = [schedule_from_dict(s) for s in data["schedules"]]
        unplaced = [flexoffer_from_dict(o) for o in data["unplaced"]]
    except KeyError as exc:
        raise DataError(f"schedule result dict missing field: {exc}") from exc
    return ScheduleResult(
        schedules=schedules,
        demand=schedules_to_series(schedules, axis),
        target=target,
        unplaced=unplaced,
    )


def zoned_result_to_dict(result: "ZonedScheduleResult") -> dict[str, Any]:
    """Encode a zone-sharded scheduling run (zones + per-zone results).

    The discriminating ``"zones"`` key tells readers apart from the
    single-market encoding of :func:`schedule_result_to_dict`; each zone
    carries its price band and its full schedule result (the zone's target
    series doubles as the zone's demand profile, so nothing else is
    needed to rebuild the :class:`~repro.scheduling.zones.MarketZone`).
    Market-cleared runs add a ``"clearing"`` section
    (:meth:`~repro.market.clearing.ClearingResult.to_dict`); the key is
    omitted when the run never cleared, so pre-market goldens and readers
    are untouched.
    """
    encoded: dict[str, Any] = {
        "zones": [
            {
                "name": zone.name,
                "price_floor": zone.price_floor,
                "price_cap": zone.price_cap,
                "result": schedule_result_to_dict(zone_result),
            }
            for zone, zone_result in zip(result.zones, result.results)
        ]
    }
    if result.clearing is not None:
        encoded["clearing"] = result.clearing.to_dict()
    return encoded


def zoned_result_from_dict(data: dict[str, Any]) -> "ZonedScheduleResult":
    """Decode a zone-sharded scheduling run."""
    from repro.scheduling.zones import MarketZone, ZonedScheduleResult

    zones = []
    results = []
    try:
        for entry in data["zones"]:
            zone_result = schedule_result_from_dict(entry["result"])
            zones.append(
                MarketZone(
                    name=entry["name"],
                    target=zone_result.target,
                    price_floor=float(entry.get("price_floor", 0.0)),
                    price_cap=float(entry.get("price_cap", 0.0)),
                )
            )
            results.append(zone_result)
    except KeyError as exc:
        raise DataError(f"zoned schedule dict missing field: {exc}") from exc
    clearing = None
    if data.get("clearing") is not None:
        from repro.market.clearing import ClearingResult

        clearing = ClearingResult.from_dict(data["clearing"])
    return ZonedScheduleResult(
        zones=tuple(zones), results=tuple(results), clearing=clearing
    )


def any_schedule_to_dict(
    result: "ScheduleResult | ZonedScheduleResult",
) -> dict[str, Any]:
    """Encode either schedule-result flavour (zoned or single-market)."""
    from repro.scheduling.zones import ZonedScheduleResult

    if isinstance(result, ZonedScheduleResult):
        return zoned_result_to_dict(result)
    return schedule_result_to_dict(result)


def any_schedule_from_dict(
    data: dict[str, Any],
) -> "ScheduleResult | ZonedScheduleResult":
    """Decode either schedule-result flavour, sniffed by the ``zones`` key."""
    if "zones" in data:
        return zoned_result_from_dict(data)
    return schedule_result_from_dict(data)


def save_flexoffers(offers: list[FlexOffer], path: str | Path) -> None:
    """Write a list of flex-offers to a JSON file."""
    payload = [flexoffer_to_dict(o) for o in offers]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_flexoffers(path: str | Path) -> list[FlexOffer]:
    """Read a list of flex-offers from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise DataError(f"{path}: expected a JSON list of flex-offers")
    return [flexoffer_from_dict(item) for item in payload]

"""JSON (de)serialisation of flex-offers and schedules.

MIRABEL's data-management layer (paper [3]) persists flex-offers in a
warehouse; this module provides the equivalent stable wire format: a plain
dict/JSON encoding with ISO-8601 timestamps and second-resolution durations,
round-trippable without loss.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import DataError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.flexoffer.schedule import ScheduledFlexOffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.forecasting.quantiles import QuantileForecast
    from repro.scheduling.greedy import ScheduleResult
    from repro.scheduling.zones import ZonedScheduleResult

_FORMAT_VERSION = 1


def _dt(value: datetime | None) -> str | None:
    return None if value is None else value.isoformat()


def _parse_dt(value: str | None) -> datetime | None:
    return None if value is None else datetime.fromisoformat(value)


def flexoffer_to_dict(offer: FlexOffer) -> dict[str, Any]:
    """Encode a flex-offer as a JSON-compatible dict."""
    return {
        "version": _FORMAT_VERSION,
        "offer_id": offer.offer_id,
        "consumer_id": offer.consumer_id,
        "appliance": offer.appliance,
        "source": offer.source,
        "earliest_start": _dt(offer.earliest_start),
        "latest_start": _dt(offer.latest_start),
        "resolution_seconds": offer.resolution.total_seconds(),
        "creation_time": _dt(offer.creation_time),
        "acceptance_deadline": _dt(offer.acceptance_deadline),
        "assignment_deadline": _dt(offer.assignment_deadline),
        "total_energy_min": offer.total_energy_min,
        "total_energy_max": offer.total_energy_max,
        "slices": [
            {"energy_min": s.energy_min, "energy_max": s.energy_max, "duration": s.duration}
            for s in offer.slices
        ],
    }


def flexoffer_from_dict(data: dict[str, Any]) -> FlexOffer:
    """Decode a flex-offer from its dict encoding."""
    try:
        version = data.get("version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise DataError(f"unsupported flex-offer format version {version}")
        slices = tuple(
            ProfileSlice(s["energy_min"], s["energy_max"], s.get("duration", 1))
            for s in data["slices"]
        )
        return FlexOffer(
            earliest_start=_parse_dt(data["earliest_start"]),
            latest_start=_parse_dt(data["latest_start"]),
            slices=slices,
            resolution=timedelta(seconds=data["resolution_seconds"]),
            offer_id=data["offer_id"],
            consumer_id=data.get("consumer_id", ""),
            appliance=data.get("appliance", ""),
            source=data.get("source", ""),
            creation_time=_parse_dt(data.get("creation_time")),
            acceptance_deadline=_parse_dt(data.get("acceptance_deadline")),
            assignment_deadline=_parse_dt(data.get("assignment_deadline")),
            total_energy_min=data.get("total_energy_min"),
            total_energy_max=data.get("total_energy_max"),
        )
    except KeyError as exc:
        raise DataError(f"flex-offer dict missing field: {exc}") from exc


def schedule_to_dict(schedule: ScheduledFlexOffer) -> dict[str, Any]:
    """Encode a scheduled flex-offer (embeds the offer)."""
    return {
        "offer": flexoffer_to_dict(schedule.offer),
        "start": _dt(schedule.start),
        "slice_energies": list(schedule.slice_energies),
    }


def schedule_from_dict(data: dict[str, Any]) -> ScheduledFlexOffer:
    """Decode a scheduled flex-offer."""
    try:
        return ScheduledFlexOffer(
            offer=flexoffer_from_dict(data["offer"]),
            start=_parse_dt(data["start"]),
            slice_energies=tuple(data["slice_energies"]),
        )
    except KeyError as exc:
        raise DataError(f"schedule dict missing field: {exc}") from exc


def aggregated_to_dict(aggregate: "AggregatedFlexOffer") -> dict[str, Any]:
    """Encode an aggregated flex-offer (aggregate + members + offsets).

    Part of the extended wire format used by run reports
    (:mod:`repro.api.service`): the full aggregation output round-trips, so
    a stored report supports later disaggregation.
    """
    return {
        "offer": flexoffer_to_dict(aggregate.offer),
        "members": [flexoffer_to_dict(m) for m in aggregate.members],
        "member_offsets": list(aggregate.member_offsets),
    }


def aggregated_from_dict(data: dict[str, Any]) -> "AggregatedFlexOffer":
    """Decode an aggregated flex-offer from its dict encoding."""
    from repro.aggregation.aggregate import AggregatedFlexOffer

    try:
        return AggregatedFlexOffer(
            offer=flexoffer_from_dict(data["offer"]),
            members=tuple(flexoffer_from_dict(m) for m in data["members"]),
            member_offsets=tuple(int(o) for o in data["member_offsets"]),
        )
    except KeyError as exc:
        raise DataError(f"aggregated flex-offer dict missing field: {exc}") from exc


def schedule_result_to_dict(result: "ScheduleResult") -> dict[str, Any]:
    """Encode a scheduling run (axis + target + placements + unplaced).

    The demand plan is not stored: it is exactly the sum of the encoded
    schedules on the encoded axis, and :func:`schedule_result_from_dict`
    rebuilds it deterministically — keeping the wire format minimal while
    the round-trip stays lossless.
    """
    axis = result.target.axis
    return {
        "axis": {
            "start": _dt(axis.start),
            "resolution_seconds": axis.resolution.total_seconds(),
            "length": axis.length,
        },
        "target": {
            "name": result.target.name,
            "values": [float(v) for v in result.target.values],
        },
        "schedules": [schedule_to_dict(s) for s in result.schedules],
        "unplaced": [flexoffer_to_dict(o) for o in result.unplaced],
    }


def schedule_result_from_dict(data: dict[str, Any]) -> "ScheduleResult":
    """Decode a scheduling run, rebuilding the demand plan from the parts."""
    from repro.flexoffer.schedule import schedules_to_series
    from repro.scheduling.greedy import ScheduleResult
    from repro.timeseries.axis import TimeAxis
    from repro.timeseries.series import TimeSeries

    try:
        axis = TimeAxis(
            start=_parse_dt(data["axis"]["start"]),
            resolution=timedelta(seconds=data["axis"]["resolution_seconds"]),
            length=int(data["axis"]["length"]),
        )
        target = TimeSeries(
            axis, data["target"]["values"], name=data["target"].get("name", "")
        )
        schedules = [schedule_from_dict(s) for s in data["schedules"]]
        unplaced = [flexoffer_from_dict(o) for o in data["unplaced"]]
    except KeyError as exc:
        raise DataError(f"schedule result dict missing field: {exc}") from exc
    return ScheduleResult(
        schedules=schedules,
        demand=schedules_to_series(schedules, axis),
        target=target,
        unplaced=unplaced,
    )


def zoned_result_to_dict(result: "ZonedScheduleResult") -> dict[str, Any]:
    """Encode a zone-sharded scheduling run (zones + per-zone results).

    The discriminating ``"zones"`` key tells readers apart from the
    single-market encoding of :func:`schedule_result_to_dict`; each zone
    carries its price band and its full schedule result (the zone's target
    series doubles as the zone's demand profile, so nothing else is
    needed to rebuild the :class:`~repro.scheduling.zones.MarketZone`).
    Market-cleared runs add a ``"clearing"`` section
    (:meth:`~repro.market.clearing.ClearingResult.to_dict`); the key is
    omitted when the run never cleared, so pre-market goldens and readers
    are untouched.
    """
    encoded: dict[str, Any] = {
        "zones": [
            {
                "name": zone.name,
                "price_floor": zone.price_floor,
                "price_cap": zone.price_cap,
                "result": schedule_result_to_dict(zone_result),
            }
            for zone, zone_result in zip(result.zones, result.results)
        ]
    }
    if result.clearing is not None:
        encoded["clearing"] = result.clearing.to_dict()
    return encoded


def zoned_result_from_dict(data: dict[str, Any]) -> "ZonedScheduleResult":
    """Decode a zone-sharded scheduling run."""
    from repro.scheduling.zones import MarketZone, ZonedScheduleResult

    zones = []
    results = []
    try:
        for entry in data["zones"]:
            zone_result = schedule_result_from_dict(entry["result"])
            zones.append(
                MarketZone(
                    name=entry["name"],
                    target=zone_result.target,
                    price_floor=float(entry.get("price_floor", 0.0)),
                    price_cap=float(entry.get("price_cap", 0.0)),
                )
            )
            results.append(zone_result)
    except KeyError as exc:
        raise DataError(f"zoned schedule dict missing field: {exc}") from exc
    clearing = None
    if data.get("clearing") is not None:
        from repro.market.clearing import ClearingResult

        clearing = ClearingResult.from_dict(data["clearing"])
    return ZonedScheduleResult(
        zones=tuple(zones), results=tuple(results), clearing=clearing
    )


def any_schedule_to_dict(
    result: "ScheduleResult | ZonedScheduleResult",
) -> dict[str, Any]:
    """Encode either schedule-result flavour (zoned or single-market)."""
    from repro.scheduling.zones import ZonedScheduleResult

    if isinstance(result, ZonedScheduleResult):
        return zoned_result_to_dict(result)
    return schedule_result_to_dict(result)


def any_schedule_from_dict(
    data: dict[str, Any],
) -> "ScheduleResult | ZonedScheduleResult":
    """Decode either schedule-result flavour, sniffed by the ``zones`` key."""
    if "zones" in data:
        return zoned_result_from_dict(data)
    return schedule_result_from_dict(data)


def quantile_forecast_to_dict(forecast: "QuantileForecast") -> dict[str, Any]:
    """Encode a quantile forecast (axis + point + per-level curves).

    The axis is stored once; the point forecast and every quantile curve
    share it, so only names and value arrays travel per curve.  Levels and
    curves are kept in the forecast's (strictly increasing) level order —
    the round trip through :func:`quantile_forecast_from_dict` is exact.
    """
    axis = forecast.axis
    return {
        "axis": {
            "start": _dt(axis.start),
            "resolution_seconds": axis.resolution.total_seconds(),
            "length": axis.length,
        },
        "point": {
            "name": forecast.point.name,
            "values": [float(v) for v in forecast.point.values],
        },
        "levels": [float(level) for level in forecast.levels],
        "curves": [
            {"name": curve.name, "values": [float(v) for v in curve.values]}
            for curve in forecast.curves
        ],
    }


def quantile_forecast_from_dict(data: dict[str, Any]) -> "QuantileForecast":
    """Decode a quantile forecast from its dict encoding."""
    from repro.forecasting.quantiles import QuantileForecast
    from repro.timeseries.axis import TimeAxis
    from repro.timeseries.series import TimeSeries

    try:
        axis = TimeAxis(
            start=_parse_dt(data["axis"]["start"]),
            resolution=timedelta(seconds=data["axis"]["resolution_seconds"]),
            length=int(data["axis"]["length"]),
        )
        point = TimeSeries(
            axis, data["point"]["values"], name=data["point"].get("name", "")
        )
        levels = tuple(float(level) for level in data["levels"])
        curves = tuple(
            TimeSeries(axis, curve["values"], name=curve.get("name", ""))
            for curve in data["curves"]
        )
    except KeyError as exc:
        raise DataError(f"quantile forecast dict missing field: {exc}") from exc
    return QuantileForecast(point=point, levels=levels, curves=curves)


# ---------------------------------------------------------------------- #
# Report deltas: diffable successive session snapshots
# ---------------------------------------------------------------------- #

#: Wire-format version of report deltas; bump on incompatible change.
REPORT_DELTA_VERSION = 1


def _keyed_delta(old_items: list, new_items: list, key) -> dict[str, Any]:
    """Diff two keyed lists: upserted entries, removed keys, final order.

    ``upserted`` holds every new entry whose key is absent from ``old`` or
    whose content changed; ``order`` pins the exact output sequence, so
    applying the delta is order-lossless even when nothing else changed.
    """
    old_by = {key(item): item for item in old_items}
    new_keys = {key(item) for item in new_items}
    return {
        "upserted": [
            item
            for item in new_items
            if key(item) not in old_by or old_by[key(item)] != item
        ],
        "removed": sorted(k for k in old_by if k not in new_keys),
        "order": [key(item) for item in new_items],
    }


def _apply_keyed(base_items: list, delta: dict[str, Any], key) -> list:
    merged = {key(item): item for item in base_items}
    for item in delta["upserted"]:
        merged[key(item)] = item
    for removed in delta["removed"]:
        merged.pop(removed, None)
    try:
        return [merged[k] for k in delta["order"]]
    except KeyError as exc:
        raise DataError(f"report delta order references unknown key {exc}") from exc


def _offer_key(offer: dict[str, Any]) -> str:
    return offer["offer_id"]


def _embedded_offer_key(item: dict[str, Any]) -> str:
    return item["offer"]["offer_id"]


def _household_key(item: dict[str, Any]) -> str:
    return item["household_id"]


def _schedule_delta(old: dict | None, new: dict | None) -> dict[str, Any]:
    """Diff two encoded schedule results; wholesale replace when the frame
    (presence, zoned-ness, axis or target) changed."""
    if (
        old is None
        or new is None
        or "zones" in old
        or "zones" in new
        or old["axis"] != new["axis"]
        or old["target"] != new["target"]
    ):
        return {"replaced": new}
    return {
        "schedules": _keyed_delta(old["schedules"], new["schedules"], _embedded_offer_key),
        "unplaced": _keyed_delta(old["unplaced"], new["unplaced"], _offer_key),
    }


def _apply_schedule_delta(base: dict | None, delta: dict[str, Any]) -> dict | None:
    if "replaced" in delta:
        return delta["replaced"]
    if base is None:
        raise DataError("schedule delta is incremental but the base has no schedule")
    return {
        "axis": base["axis"],
        "target": base["target"],
        "schedules": _apply_keyed(base["schedules"], delta["schedules"], _embedded_offer_key),
        "unplaced": _apply_keyed(base["unplaced"], delta["unplaced"], _offer_key),
    }


def report_delta(old: dict[str, Any], new: dict[str, Any]) -> dict[str, Any]:
    """The versioned diff between two successive session snapshot dicts.

    Operates on :meth:`repro.session.SessionSnapshot.to_dict` encodings.
    Households are keyed by household id, aggregates and committed
    placements by offer id, and the schedule section diffs its placements
    the same way (falling back to wholesale replacement when the axis or
    target changed).  The round trip is exact:
    ``apply_report_delta(report_delta(a, b), a) == b`` for any two
    snapshots of the same session (property-tested).
    """
    return {
        "version": REPORT_DELTA_VERSION,
        "base_state_version": old["state_version"],
        "state_version": new["state_version"],
        "watermark": new["watermark"],
        "households": _keyed_delta(old["households"], new["households"], _household_key),
        "aggregates": _keyed_delta(
            old["aggregates"], new["aggregates"], _embedded_offer_key
        ),
        "committed": _keyed_delta(old["committed"], new["committed"], _embedded_offer_key),
        "schedule": _schedule_delta(old.get("schedule"), new.get("schedule")),
    }


def apply_report_delta(delta: dict[str, Any], base: dict[str, Any]) -> dict[str, Any]:
    """Reconstruct the newer snapshot dict from the older one plus a delta."""
    version = delta.get("version", REPORT_DELTA_VERSION)
    if version != REPORT_DELTA_VERSION:
        raise DataError(f"unsupported report-delta version {version}")
    if delta["base_state_version"] != base["state_version"]:
        raise DataError(
            f"report delta applies to state version {delta['base_state_version']}, "
            f"base is at {base['state_version']}"
        )
    return {
        "version": base["version"],
        "state_version": delta["state_version"],
        "watermark": delta["watermark"],
        "households": _apply_keyed(base["households"], delta["households"], _household_key),
        "aggregates": _apply_keyed(
            base["aggregates"], delta["aggregates"], _embedded_offer_key
        ),
        "schedule": _apply_schedule_delta(base.get("schedule"), delta["schedule"]),
        "committed": _apply_keyed(base["committed"], delta["committed"], _embedded_offer_key),
    }


def save_flexoffers(offers: list[FlexOffer], path: str | Path) -> None:
    """Write a list of flex-offers to a JSON file."""
    payload = [flexoffer_to_dict(o) for o in offers]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_flexoffers(path: str | Path) -> list[FlexOffer]:
    """Read a list of flex-offers from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise DataError(f"{path}: expected a JSON list of flex-offers")
    return [flexoffer_from_dict(item) for item in payload]

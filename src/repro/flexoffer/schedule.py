"""Scheduled (assigned) flex-offers and their materialisation to time series.

Scheduling fixes the two degrees of freedom a flex-offer leaves open: the
start time (within ``[earliest_start, latest_start]``) and the per-slice
energy (within each slice's ``[energy_min, energy_max]``).  A scheduled
flex-offer can then be rendered back onto a metering grid as plain energy
consumption, which is how MIRABEL folds accepted offers into the demand plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from repro.errors import SchedulingError, ValidationError
from repro.flexoffer.model import FlexOffer
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

_ENERGY_TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class ScheduledFlexOffer:
    """A flex-offer with a concrete start time and per-slice energies."""

    offer: FlexOffer
    start: datetime
    slice_energies: tuple[float, ...]

    def __post_init__(self) -> None:
        fo = self.offer
        if not fo.earliest_start <= self.start <= fo.latest_start:
            raise ValidationError(
                f"start {self.start} outside [{fo.earliest_start}, {fo.latest_start}]"
            )
        if len(self.slice_energies) != len(fo.slices):
            raise ValidationError(
                f"expected {len(fo.slices)} slice energies, got {len(self.slice_energies)}"
            )
        for i, (energy, sl) in enumerate(zip(self.slice_energies, fo.slices)):
            if not sl.energy_min - _ENERGY_TOLERANCE <= energy <= sl.energy_max + _ENERGY_TOLERANCE:
                raise ValidationError(
                    f"slice {i} energy {energy} outside [{sl.energy_min}, {sl.energy_max}]"
                )
        tmin, tmax = fo.effective_total_bounds()
        total = sum(self.slice_energies)
        if not tmin - _ENERGY_TOLERANCE <= total <= tmax + _ENERGY_TOLERANCE:
            raise ValidationError(
                f"total energy {total} outside effective bounds [{tmin}, {tmax}]"
            )

    @property
    def end(self) -> datetime:
        """Timestamp at which the scheduled profile finishes."""
        return self.start + self.offer.duration

    @property
    def total_energy(self) -> float:
        """Total scheduled energy (kWh)."""
        return float(sum(self.slice_energies))

    def interval_energies(self) -> np.ndarray:
        """Per-interval energies, spreading multi-interval slices evenly."""
        out: list[float] = []
        for energy, sl in zip(self.slice_energies, self.offer.slices):
            out.extend([energy / sl.duration] * sl.duration)
        return np.asarray(out)

    def to_series(self, axis: TimeAxis) -> TimeSeries:
        """Render the schedule onto ``axis`` as energy per interval.

        Intervals of the schedule falling outside the axis raise
        :class:`SchedulingError` — a schedule must be fully representable on
        the planning horizon it is placed on.
        """
        series = TimeSeries.zeros(axis, name=self.offer.offer_id)
        add_to_series(self, series)
        return series


def add_to_series(schedule: ScheduledFlexOffer, series: TimeSeries) -> None:
    """Accumulate a schedule's energy into an existing series (in place)."""
    axis = series.axis
    if not axis.contains(schedule.start):
        raise SchedulingError(
            f"schedule start {schedule.start} outside axis [{axis.start}, {axis.end})"
        )
    first = axis.index_of(schedule.start)
    energies = schedule.interval_energies()
    if first + len(energies) > axis.length:
        raise SchedulingError(
            f"schedule for {schedule.offer.offer_id} overruns the axis end"
        )
    series.values[first : first + len(energies)] += energies


def schedules_to_series(
    schedules: list[ScheduledFlexOffer], axis: TimeAxis, name: str = "scheduled-demand"
) -> TimeSeries:
    """Sum many schedules onto one axis (the aggregate demand plan)."""
    series = TimeSeries.zeros(axis, name=name)
    for schedule in schedules:
        add_to_series(schedule, series)
    return series


def default_schedule(
    offer: FlexOffer, start: datetime | None = None, level: float = 0.5
) -> ScheduledFlexOffer:
    """A canonical feasible schedule for an offer.

    Starts at ``start`` (default: the earliest start) and sets every slice to
    ``min + level * (max - min)``, then nudges the energies proportionally if
    explicit total-energy bounds are tighter than the per-slice sums.

    Raises :class:`SchedulingError` when no feasible energy vector exists
    (which :class:`FlexOffer` validation normally prevents).
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"level must be in [0, 1], got {level}")
    if start is None:
        start = offer.earliest_start
    energies = np.array(
        [sl.energy_min + level * (sl.energy_max - sl.energy_min) for sl in offer.slices]
    )
    tmin, tmax = offer.effective_total_bounds()
    total = float(energies.sum())
    if total < tmin or total > tmax:
        target = float(np.clip(total, tmin, tmax))
        energies = _redistribute(energies, target, offer)
    return ScheduledFlexOffer(offer, start, tuple(float(e) for e in energies))


def _redistribute(energies: np.ndarray, target: float, offer: FlexOffer) -> np.ndarray:
    """Adjust a slice-energy vector to sum to ``target`` within slice bounds.

    Water-filling: move the shortfall/excess across slices proportionally to
    their remaining slack, iterating because slices saturate.
    """
    lo = np.array([sl.energy_min for sl in offer.slices])
    hi = np.array([sl.energy_max for sl in offer.slices])
    if not lo.sum() - _ENERGY_TOLERANCE <= target <= hi.sum() + _ENERGY_TOLERANCE:
        raise SchedulingError(
            f"target energy {target} infeasible for bounds [{lo.sum()}, {hi.sum()}]"
        )
    x = np.clip(energies, lo, hi)
    for _ in range(len(x) * 2 + 4):
        gap = target - float(x.sum())
        if abs(gap) <= _ENERGY_TOLERANCE:
            break
        slack = (hi - x) if gap > 0 else (x - lo)
        total_slack = float(slack.sum())
        if total_slack <= _ENERGY_TOLERANCE:
            break
        step = np.sign(gap) * slack * min(1.0, abs(gap) / total_slack)
        x = np.clip(x + step, lo, hi)
    return x

"""Flex-offer invariant checking beyond construction-time validation.

:class:`~repro.flexoffer.model.FlexOffer` enforces structural invariants in
``__post_init__``; this module adds the *policy* checks the paper's
extraction contract implies — e.g. "all of these attributes are within the
required limits" (§3.1) — and batch checking with readable reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from repro.flexoffer.model import FlexOffer


@dataclass(frozen=True, slots=True)
class PolicyLimits:
    """Acceptable ranges for flex-offer attributes (extraction contract).

    ``None`` bounds are unconstrained.  Defaults reflect the paper's setting:
    15-minute intervals, household-scale energies, same-day flexibility.
    """

    min_slices: int = 1
    max_slices: int | None = 96
    min_total_energy: float = 0.0
    max_total_energy: float | None = None
    min_time_flexibility: timedelta = timedelta(0)
    max_time_flexibility: timedelta | None = None
    require_deadlines_ordered: bool = True

    def check(self, offer: FlexOffer) -> list[str]:
        """Return a list of violation messages (empty = compliant)."""
        problems: list[str] = []
        n = len(offer.slices)
        if n < self.min_slices:
            problems.append(f"{offer.offer_id}: {n} slices < min {self.min_slices}")
        if self.max_slices is not None and n > self.max_slices:
            problems.append(f"{offer.offer_id}: {n} slices > max {self.max_slices}")
        tmin, tmax = offer.effective_total_bounds()
        if tmax < self.min_total_energy:
            problems.append(
                f"{offer.offer_id}: max energy {tmax:.3f} below floor "
                f"{self.min_total_energy:.3f}"
            )
        if self.max_total_energy is not None and tmin > self.max_total_energy:
            problems.append(
                f"{offer.offer_id}: min energy {tmin:.3f} above cap "
                f"{self.max_total_energy:.3f}"
            )
        flex = offer.time_flexibility
        if flex < self.min_time_flexibility:
            problems.append(
                f"{offer.offer_id}: time flexibility {flex} below "
                f"{self.min_time_flexibility}"
            )
        if self.max_time_flexibility is not None and flex > self.max_time_flexibility:
            problems.append(
                f"{offer.offer_id}: time flexibility {flex} above "
                f"{self.max_time_flexibility}"
            )
        if self.require_deadlines_ordered:
            problems.extend(_deadline_order_problems(offer))
        return problems


def _deadline_order_problems(offer: FlexOffer) -> list[str]:
    """MIRABEL lifecycle order: creation <= acceptance <= assignment <= earliest start."""
    problems = []
    stages = [
        ("creation_time", offer.creation_time),
        ("acceptance_deadline", offer.acceptance_deadline),
        ("assignment_deadline", offer.assignment_deadline),
        ("earliest_start", offer.earliest_start),
    ]
    known = [(name, t) for name, t in stages if t is not None]
    for (name_a, a), (name_b, b) in zip(known, known[1:]):
        if a > b:
            problems.append(
                f"{offer.offer_id}: {name_a} ({a}) after {name_b} ({b})"
            )
    return problems


def check_all(offers: list[FlexOffer], limits: PolicyLimits | None = None) -> list[str]:
    """Validate a batch of offers; returns all violation messages."""
    limits = limits or PolicyLimits()
    problems: list[str] = []
    seen_ids: set[str] = set()
    for offer in offers:
        if offer.offer_id in seen_ids:
            problems.append(f"duplicate offer id: {offer.offer_id}")
        seen_ids.add(offer.offer_id)
        problems.extend(limits.check(offer))
    return problems


def is_compliant(offer: FlexOffer, limits: PolicyLimits | None = None) -> bool:
    """True when the offer passes every policy check."""
    return not (limits or PolicyLimits()).check(offer)

"""Random flex-offer generation — MIRABEL's pre-paper baseline.

The paper's introduction describes the status quo it improves upon: "the
flex-offers are being randomly generated for the testing purposes.
Specifically, the random approach assumes that consumption at every moment of
a day is potentially flexible", which makes aggregated flex-offers "more or
less uniformly dispatched within the day".  This module implements that
baseline faithfully so the evaluation can quantify how much the extraction
approaches improve on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.timeseries.axis import TimeAxis


@dataclass(frozen=True, slots=True)
class RandomGeneratorConfig:
    """Knobs of the uniform random flex-offer generator.

    Energy and shape ranges are inclusive; each offer draws uniformly within
    them.  Defaults produce household-appliance-scale offers (0.5–3 kWh over
    1–8 quarter-hour slices with up to 12 h of start flexibility).
    """

    offers_per_day: int = 4
    slices_min: int = 1
    slices_max: int = 8
    total_energy_min: float = 0.5
    total_energy_max: float = 3.0
    energy_band_fraction: float = 0.2
    time_flexibility_min: timedelta = timedelta(hours=1)
    time_flexibility_max: timedelta = timedelta(hours=12)

    def __post_init__(self) -> None:
        if self.offers_per_day < 0:
            raise ValueError("offers_per_day must be >= 0")
        if not 1 <= self.slices_min <= self.slices_max:
            raise ValueError("need 1 <= slices_min <= slices_max")
        if not 0.0 < self.total_energy_min <= self.total_energy_max:
            raise ValueError("need 0 < total_energy_min <= total_energy_max")
        if not 0.0 <= self.energy_band_fraction <= 1.0:
            raise ValueError("energy_band_fraction must be in [0, 1]")
        if self.time_flexibility_min > self.time_flexibility_max:
            raise ValueError("time_flexibility_min must be <= max")


def random_flexoffer(
    axis: TimeAxis,
    rng: np.random.Generator,
    config: RandomGeneratorConfig | None = None,
    consumer_id: str = "",
) -> FlexOffer:
    """Draw one uniformly-placed random flex-offer on ``axis``.

    The earliest start is uniform over the axis (any moment of the day is
    "potentially flexible"), subject only to the profile and flexibility
    fitting the horizon.
    """
    config = config or RandomGeneratorConfig()
    res = axis.resolution
    n_slices = min(
        int(rng.integers(config.slices_min, config.slices_max + 1)), axis.length
    )
    flex_lo = int(config.time_flexibility_min // res)
    flex_hi = int(config.time_flexibility_max // res)
    flex_intervals = int(rng.integers(flex_lo, flex_hi + 1))
    # The earliest start is uniform over the horizon ("consumption at every
    # moment of a day is potentially flexible"); the flexibility is clamped
    # afterwards so the latest placement still fits.  Clamping flexibility
    # rather than the start keeps the start distribution uniform, which is
    # the property the paper criticises.
    start_index = int(rng.integers(0, axis.length - n_slices + 1))
    flex_intervals = min(flex_intervals, axis.length - n_slices - start_index)
    earliest = axis.start + res * start_index
    latest = earliest + res * flex_intervals

    total = float(rng.uniform(config.total_energy_min, config.total_energy_max))
    shares = rng.dirichlet(np.ones(n_slices)) * total
    band = config.energy_band_fraction
    slices = tuple(
        ProfileSlice(energy_min=share * (1.0 - band), energy_max=share * (1.0 + band))
        for share in shares
    )
    return FlexOffer(
        earliest_start=earliest,
        latest_start=latest,
        slices=slices,
        resolution=res,
        offer_id=next_offer_id("rand"),
        consumer_id=consumer_id,
        source="random-baseline",
        creation_time=axis.start,
        acceptance_deadline=earliest,
        assignment_deadline=earliest,
    )


def random_flexoffers(
    axis: TimeAxis,
    rng: np.random.Generator,
    config: RandomGeneratorConfig | None = None,
    consumer_id: str = "",
) -> list[FlexOffer]:
    """Draw ``offers_per_day``-scaled random offers for the whole horizon."""
    config = config or RandomGeneratorConfig()
    days = max(1, round(axis.length / axis.intervals_per_day))
    count = config.offers_per_day * days
    return [
        random_flexoffer(axis, rng, config, consumer_id=consumer_id) for _ in range(count)
    ]

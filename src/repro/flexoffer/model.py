"""The flex-offer data model (paper Figure 1, MIRABEL core concept).

A *flex-offer* captures shiftable demand: an energy profile made of
consecutive slices, each with a minimum and maximum energy requirement, plus
*time flexibility* — the profile may start anywhere between an earliest and a
latest start time.  The paper's running example: "charging of the vehicle's
batteries should start between 10PM and 5AM, the charging takes 2 hours in
total, and it requires 50kWh".

Energies are kWh per slice.  Consumption flex-offers use non-negative
energies; production flex-offers (paper §6, future work) are modelled with
negative energies (production = negative consumption) so the same scheduling
machinery applies to both.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta
from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.timeseries.axis import FIFTEEN_MINUTES


class OfferIdFactory:
    """A deterministic flex-offer id source.

    Ids are ``{prefix}-{namespace}-{n}`` (or ``{prefix}-{n}`` without a
    namespace) with ``n`` counting from 1 per factory.  Two factories with
    the same namespace mint identical id sequences, which is what lets
    batched, sequential and multiprocessing fleet runs produce *exactly*
    equal offers — ids included — instead of "equal modulo offer ids".
    """

    __slots__ = ("namespace", "_counter")

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counter = itertools.count(1)

    def next_id(self, prefix: str = "fo") -> str:
        n = next(self._counter)
        if self.namespace:
            return f"{prefix}-{self.namespace}-{n}"
        return f"{prefix}-{n}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OfferIdFactory(namespace={self.namespace!r})"


#: The process-global default factory: unique-per-process ids, the historical
#: behaviour of loose ``FlexOffer`` construction outside any id scope.
_GLOBAL_FACTORY = OfferIdFactory()

#: The currently installed factory (swapped by :func:`offer_id_scope`).
_CURRENT_FACTORY: OfferIdFactory = _GLOBAL_FACTORY


def next_offer_id(prefix: str = "fo") -> str:
    """Generate a flex-offer identifier from the active id factory.

    Outside any :func:`offer_id_scope` this draws from a process-global
    counter (unique per process, different between runs); inside a scope it
    draws from the scope's deterministic factory.
    """
    return _CURRENT_FACTORY.next_id(prefix)


@contextmanager
def offer_id_scope(namespace: str = "") -> Iterator[OfferIdFactory]:
    """Install a fresh deterministic id factory for the duration of the block.

    Every offer built inside the block gets ids ``{prefix}-{namespace}-{n}``
    with ``n`` restarting at 1, regardless of process history — so any two
    runs that enter the same scopes in the same order mint identical ids.
    Scopes nest; the previous factory is restored on exit.
    """
    global _CURRENT_FACTORY
    previous = _CURRENT_FACTORY
    factory = OfferIdFactory(namespace)
    _CURRENT_FACTORY = factory
    try:
        yield factory
    finally:
        _CURRENT_FACTORY = previous


@dataclass(frozen=True, slots=True)
class ProfileSlice:
    """One slice of a flex-offer profile.

    Parameters
    ----------
    energy_min:
        Minimum required energy over the slice (kWh) — the paper's solid area.
    energy_max:
        Maximum usable energy over the slice (kWh) — the paper's dotted area.
    duration:
        Slice width in flex-offer resolution intervals (>= 1).
    """

    energy_min: float
    energy_max: float
    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValidationError(f"slice duration must be >= 1, got {self.duration}")
        if self.energy_min > self.energy_max + 1e-12:
            raise ValidationError(
                f"slice energy_min {self.energy_min} exceeds energy_max {self.energy_max}"
            )

    @property
    def energy_range(self) -> float:
        """Width of the slice's energy flexibility (kWh)."""
        return self.energy_max - self.energy_min

    @property
    def midpoint(self) -> float:
        """Average of the min and max energies (kWh)."""
        return 0.5 * (self.energy_min + self.energy_max)

    def scaled(self, factor: float) -> "ProfileSlice":
        """Return a slice with both bounds multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValidationError("scale factor must be >= 0")
        return ProfileSlice(self.energy_min * factor, self.energy_max * factor, self.duration)


def uniform_profile(total_min: float, total_max: float, slices: int) -> tuple[ProfileSlice, ...]:
    """Split total energy bounds evenly across ``slices`` unit slices."""
    if slices < 1:
        raise ValidationError(f"profile needs >= 1 slice, got {slices}")
    return tuple(
        ProfileSlice(total_min / slices, total_max / slices) for _ in range(slices)
    )


@dataclass(frozen=True, slots=True)
class FlexOffer:
    """A flexibility offer: an energy profile with start-time flexibility.

    Attributes follow the paper's Figure 1 and §3.1 parameter list: creation
    time, acceptance (deadline) time, assignment (deadline) time, earliest and
    latest start time, and the per-slice energy profile.

    The *latest end time* shown in Figure 1 is derived:
    ``latest_start + profile duration``.
    """

    earliest_start: datetime
    latest_start: datetime
    slices: tuple[ProfileSlice, ...]
    resolution: timedelta = FIFTEEN_MINUTES
    offer_id: str = field(default_factory=next_offer_id)
    consumer_id: str = ""
    appliance: str = ""
    source: str = ""
    creation_time: datetime | None = None
    acceptance_deadline: datetime | None = None
    assignment_deadline: datetime | None = None
    total_energy_min: float | None = None
    total_energy_max: float | None = None

    def __post_init__(self) -> None:
        if not self.slices:
            raise ValidationError("flex-offer must have at least one profile slice")
        if self.latest_start < self.earliest_start:
            raise ValidationError(
                f"latest_start {self.latest_start} precedes earliest_start "
                f"{self.earliest_start}"
            )
        if self.resolution <= timedelta(0):
            raise ValidationError(f"resolution must be positive, got {self.resolution}")
        tmin, tmax = self.effective_total_bounds()
        if tmin > tmax + 1e-9:
            raise ValidationError(
                f"infeasible total energy bounds: min {tmin} > max {tmax}"
            )

    # ------------------------------------------------------------------ #
    # Derived attributes
    # ------------------------------------------------------------------ #

    @property
    def profile_intervals(self) -> int:
        """Total profile width in resolution intervals."""
        return sum(s.duration for s in self.slices)

    @property
    def duration(self) -> timedelta:
        """Wall-clock width of the profile."""
        return self.resolution * self.profile_intervals

    @property
    def latest_end(self) -> datetime:
        """Figure 1's 'latest end time': latest_start + profile duration."""
        return self.latest_start + self.duration

    @property
    def time_flexibility(self) -> timedelta:
        """How far the profile can be shifted: latest_start − earliest_start."""
        return self.latest_start - self.earliest_start

    @property
    def time_flexibility_intervals(self) -> int:
        """Time flexibility in whole resolution intervals (floor)."""
        return int(self.time_flexibility // self.resolution)

    @property
    def profile_energy_min(self) -> float:
        """Sum of per-slice minimum energies (kWh)."""
        return sum(s.energy_min for s in self.slices)

    @property
    def profile_energy_max(self) -> float:
        """Sum of per-slice maximum energies (kWh)."""
        return sum(s.energy_max for s in self.slices)

    @property
    def energy_flexibility(self) -> float:
        """Total energy slack between effective total bounds (kWh)."""
        tmin, tmax = self.effective_total_bounds()
        return tmax - tmin

    def effective_total_bounds(self) -> tuple[float, float]:
        """Total-energy bounds combining per-slice sums with explicit totals.

        The explicit ``total_energy_min``/``max`` (when provided) tighten the
        bounds implied by the profile slices.
        """
        tmin = self.profile_energy_min
        tmax = self.profile_energy_max
        if self.total_energy_min is not None:
            tmin = max(tmin, self.total_energy_min)
        if self.total_energy_max is not None:
            tmax = min(tmax, self.total_energy_max)
        return tmin, tmax

    @property
    def is_production(self) -> bool:
        """True when the offer represents production (net-negative energy)."""
        return self.profile_energy_max <= 0 and self.profile_energy_min < 0

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def shifted(self, delta: timedelta) -> "FlexOffer":
        """Translate all time attributes by ``delta`` (profile unchanged)."""
        return replace(
            self,
            earliest_start=self.earliest_start + delta,
            latest_start=self.latest_start + delta,
            creation_time=None if self.creation_time is None else self.creation_time + delta,
            acceptance_deadline=(
                None if self.acceptance_deadline is None else self.acceptance_deadline + delta
            ),
            assignment_deadline=(
                None if self.assignment_deadline is None else self.assignment_deadline + delta
            ),
        )

    def scaled(self, factor: float) -> "FlexOffer":
        """Scale every slice's energy bounds by ``factor`` (>= 0)."""
        return replace(
            self,
            slices=tuple(s.scaled(factor) for s in self.slices),
            total_energy_min=(
                None if self.total_energy_min is None else self.total_energy_min * factor
            ),
            total_energy_max=(
                None if self.total_energy_max is None else self.total_energy_max * factor
            ),
        )

    def with_time_flexibility(self, flexibility: timedelta) -> "FlexOffer":
        """Return a copy whose latest_start = earliest_start + ``flexibility``."""
        if flexibility < timedelta(0):
            raise ValidationError("time flexibility must be >= 0")
        return replace(self, latest_start=self.earliest_start + flexibility)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def feasible_starts(self) -> list[datetime]:
        """All grid-aligned start times in ``[earliest_start, latest_start]``.

        The grid is anchored at ``earliest_start`` with the offer's own
        resolution; MIRABEL schedules starts on the metering grid.
        """
        starts = []
        t = self.earliest_start
        while t <= self.latest_start:
            starts.append(t)
            t += self.resolution
        return starts

    def slice_expansion(self) -> list[tuple[float, float]]:
        """Per-interval (min, max) energy bounds, expanding multi-interval slices.

        A slice of duration ``d`` is split into ``d`` intervals, each with an
        even share of the slice's bounds.  Length equals
        :attr:`profile_intervals`.
        """
        bounds: list[tuple[float, float]] = []
        for s in self.slices:
            share_min = s.energy_min / s.duration
            share_max = s.energy_max / s.duration
            bounds.extend((share_min, share_max) for _ in range(s.duration))
        return bounds

    def slice_expansion_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`slice_expansion` as a pair of numpy vectors ``(mins, maxs)``.

        The array form feeds the vectorized aggregation paths, which sum
        many expanded profiles without Python-level per-interval loops.
        """
        durations = np.array([s.duration for s in self.slices])
        mins = np.repeat(
            np.array([s.energy_min for s in self.slices]) / durations, durations
        )
        maxs = np.repeat(
            np.array([s.energy_max for s in self.slices]) / durations, durations
        )
        return mins, maxs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tmin, tmax = self.effective_total_bounds()
        return (
            f"FlexOffer({self.offer_id}, est={self.earliest_start.isoformat()}, "
            f"lst={self.latest_start.isoformat()}, slices={len(self.slices)}, "
            f"energy=[{tmin:.3f}, {tmax:.3f}] kWh)"
        )


def figure1_flexoffer(day: datetime) -> FlexOffer:
    """Construct the paper's Figure 1 flex-offer for the evening of ``day``.

    An electric vehicle: start between 22:00 and 05:00 (next day), charging
    takes 2 hours (eight 15-minute slices), and requires 50 kWh in total.
    The latest end time is then 07:00, exactly as printed in the figure.
    """
    est = day.replace(hour=22, minute=0, second=0, microsecond=0)
    lst = est + timedelta(hours=7)  # 5 AM next day
    slices = uniform_profile(total_min=50.0, total_max=50.0, slices=8)
    return FlexOffer(
        earliest_start=est,
        latest_start=lst,
        slices=slices,
        consumer_id="ev-owner",
        appliance="electric-vehicle",
        source="figure1",
    )

"""The flex-offer concept: model, schedules, validation, IO, random baseline."""

from repro.flexoffer.generators import (
    RandomGeneratorConfig,
    random_flexoffer,
    random_flexoffers,
)
from repro.flexoffer.io import (
    flexoffer_from_dict,
    flexoffer_to_dict,
    load_flexoffers,
    save_flexoffers,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.flexoffer.model import (
    FlexOffer,
    OfferIdFactory,
    ProfileSlice,
    figure1_flexoffer,
    next_offer_id,
    offer_id_scope,
    uniform_profile,
)
from repro.flexoffer.schedule import (
    ScheduledFlexOffer,
    add_to_series,
    default_schedule,
    schedules_to_series,
)
from repro.flexoffer.validate import PolicyLimits, check_all, is_compliant

__all__ = [
    "RandomGeneratorConfig",
    "random_flexoffer",
    "random_flexoffers",
    "flexoffer_from_dict",
    "flexoffer_to_dict",
    "load_flexoffers",
    "save_flexoffers",
    "schedule_from_dict",
    "schedule_to_dict",
    "FlexOffer",
    "OfferIdFactory",
    "ProfileSlice",
    "figure1_flexoffer",
    "next_offer_id",
    "offer_id_scope",
    "uniform_profile",
    "ScheduledFlexOffer",
    "add_to_series",
    "default_schedule",
    "schedules_to_series",
    "PolicyLimits",
    "check_all",
    "is_compliant",
]

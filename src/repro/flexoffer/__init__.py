"""The flex-offer concept: model, schedules, validation, IO, random baseline.

The paper's central data structure (Figure 1): an immutable profile of
energy-bounded slices with a start-time window, plus scheduled
instantiations, policy validation, and the JSON wire format.

Subsystem contract:

* **Wire-format stability** — :mod:`repro.flexoffer.io` is versioned and
  lossless for offers, aggregates and schedule results (zoned markets
  included); optional keys are omitted when absent so old payloads and
  goldens keep loading, and golden tests pin the encodings.
* **Deterministic identity** — offer ids come from
  :func:`~repro.flexoffer.model.offer_id_scope` namespaces; any code
  minting ids inside a scope gets the same ids in any process or worker.
* **Immutability** — offers are frozen; schedulers and aggregators build
  new objects instead of mutating, so sharing across threads/processes
  is safe by construction.
"""

from repro.flexoffer.generators import (
    RandomGeneratorConfig,
    random_flexoffer,
    random_flexoffers,
)
from repro.flexoffer.io import (
    flexoffer_from_dict,
    flexoffer_to_dict,
    load_flexoffers,
    save_flexoffers,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.flexoffer.model import (
    FlexOffer,
    OfferIdFactory,
    ProfileSlice,
    figure1_flexoffer,
    next_offer_id,
    offer_id_scope,
    uniform_profile,
)
from repro.flexoffer.schedule import (
    ScheduledFlexOffer,
    add_to_series,
    default_schedule,
    schedules_to_series,
)
from repro.flexoffer.validate import PolicyLimits, check_all, is_compliant

__all__ = [
    "RandomGeneratorConfig",
    "random_flexoffer",
    "random_flexoffers",
    "flexoffer_from_dict",
    "flexoffer_to_dict",
    "load_flexoffers",
    "save_flexoffers",
    "schedule_from_dict",
    "schedule_to_dict",
    "FlexOffer",
    "OfferIdFactory",
    "ProfileSlice",
    "figure1_flexoffer",
    "next_offer_id",
    "offer_id_scope",
    "uniform_profile",
    "ScheduledFlexOffer",
    "add_to_series",
    "default_schedule",
    "schedules_to_series",
    "PolicyLimits",
    "check_all",
    "is_compliant",
]

"""Stochastic improvement of a greedy schedule (paper [5] evolves schedules).

The BIOMA 2012 scheduler is evolutionary; here a lean random-restart hill
climber plays that role: repeatedly pick a scheduled offer, try a random
alternative start (re-water-filling its energies against the target net of
everyone else), and keep the move when the global squared imbalance drops.
Deterministic given the generator, and always at least as good as its input.
"""

from __future__ import annotations

import numpy as np

from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.scheduling.greedy import (
    ScheduleResult,
    _intervals_to_slices,
    _placement_gain,
    _water_fill,
)


def improve_schedule(
    result: ScheduleResult,
    rng: np.random.Generator,
    iterations: int = 500,
) -> ScheduleResult:
    """Hill-climb a schedule by re-placing single offers.

    Each iteration removes one random offer from the plan, water-fills it at
    a random feasible start against the residual target, and keeps the move
    if the squared imbalance does not increase.  Returns a new
    :class:`ScheduleResult`; the input is not mutated.
    """
    axis = result.target.axis
    schedules = list(result.schedules)
    if not schedules or iterations <= 0:
        return result
    # residual = target - scheduled demand (updated incrementally).
    residual = result.target.values - result.demand.values

    for _ in range(iterations):
        idx = int(rng.integers(0, len(schedules)))
        current = schedules[idx]
        offer = current.offer
        starts = [s for s in offer.feasible_starts() if axis.contains(s)]
        if not starts:
            continue
        new_start = starts[int(rng.integers(0, len(starts)))]
        expansion = offer.slice_expansion()
        n = len(expansion)
        first_new = axis.index_of(new_start)
        if first_new + n > axis.length:
            continue
        lows = np.array([lo for lo, _ in expansion])
        highs = np.array([hi for _, hi in expansion])

        # Residual with the current placement removed.
        first_old = axis.index_of(current.start)
        old_energies = current.interval_energies()
        residual_wo = residual.copy()
        residual_wo[first_old : first_old + n] += old_energies

        window = residual_wo[first_new : first_new + n]
        new_energies = _water_fill(window, lows, highs)
        old_window = residual_wo[first_old : first_old + n]
        gain_new = _placement_gain(window, new_energies)
        gain_old = _placement_gain(old_window, old_energies)
        if gain_new <= gain_old:
            continue
        schedules[idx] = ScheduledFlexOffer(
            offer, new_start, _intervals_to_slices(offer, new_energies)
        )
        residual = residual_wo
        residual[first_new : first_new + n] -= schedules[idx].interval_energies()

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules,
        demand=demand,
        target=result.target,
        unplaced=list(result.unplaced),
    )

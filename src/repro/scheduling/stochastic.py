"""Stochastic improvement of a greedy schedule (paper [5] evolves schedules).

The BIOMA 2012 scheduler is evolutionary; here a lean random-restart hill
climber plays that role: repeatedly pick a scheduled offer, try a random
alternative start (re-water-filling its energies against the target net of
everyone else), and keep the move when the global squared imbalance drops.
Deterministic given the generator, and always at least as good as its input.

Like the greedy layer, two engines implement identical semantics
(``ScheduleConfig(engine=...)``): the ``"reference"`` engine is the seed
implementation (per-iteration bounds rebuild and a full residual copy per
move evaluation); the default ``"vectorized"`` engine hoists every offer's
expansion bounds, feasible starts and current placement to arrays once and
evaluates moves window-locally.  Both consume the generator identically and
produce bitwise-identical schedules — the vectorized engine is a pure
execution-plan change.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.scheduling.greedy import (
    _ENGINES,
    ScheduleResult,
    _intervals_to_slices,
    _placement_gain,
    _water_fill,
)


def improve_schedule(
    result: ScheduleResult,
    rng: np.random.Generator,
    iterations: int = 500,
    engine: str = "vectorized",
) -> ScheduleResult:
    """Hill-climb a schedule by re-placing single offers.

    Each iteration removes one random offer from the plan, water-fills it at
    a random feasible start against the residual target, and keeps the move
    if the squared imbalance does not increase.  Returns a new
    :class:`ScheduleResult`; the input is not mutated.
    """
    if engine not in _ENGINES:
        raise SchedulingError(f"engine must be one of {_ENGINES}, got {engine!r}")
    schedules = list(result.schedules)
    if not schedules or iterations <= 0:
        return result
    if engine == "reference":
        return _improve_reference(result, schedules, rng, iterations)
    # "incremental" is a greedy-placement strategy; the hill climber's moves
    # are already window-local, so it shares the vectorized improver (and
    # stays bitwise identical to the reference engine either way).
    return _improve_vectorized(result, schedules, rng, iterations)


def _improve_reference(
    result: ScheduleResult,
    schedules: list[ScheduledFlexOffer],
    rng: np.random.Generator,
    iterations: int,
) -> ScheduleResult:
    """The seed implementation: per-iteration rebuilds and residual copies."""
    axis = result.target.axis
    # residual = target - scheduled demand (updated incrementally).
    residual = result.target.values - result.demand.values

    for _ in range(iterations):
        idx = int(rng.integers(0, len(schedules)))
        current = schedules[idx]
        offer = current.offer
        starts = [s for s in offer.feasible_starts() if axis.contains(s)]
        if not starts:
            continue
        new_start = starts[int(rng.integers(0, len(starts)))]
        expansion = offer.slice_expansion()
        n = len(expansion)
        first_new = axis.index_of(new_start)
        if first_new + n > axis.length:
            continue
        lows = np.array([lo for lo, _ in expansion])
        highs = np.array([hi for _, hi in expansion])

        # Residual with the current placement removed.
        first_old = axis.index_of(current.start)
        old_energies = current.interval_energies()
        residual_wo = residual.copy()
        residual_wo[first_old : first_old + n] += old_energies

        window = residual_wo[first_new : first_new + n]
        new_energies = _water_fill(window, lows, highs)
        old_window = residual_wo[first_old : first_old + n]
        gain_new = _placement_gain(window, new_energies)
        gain_old = _placement_gain(old_window, old_energies)
        if gain_new <= gain_old:
            continue
        schedules[idx] = ScheduledFlexOffer(
            offer, new_start, _intervals_to_slices(offer, new_energies)
        )
        residual = residual_wo
        residual[first_new : first_new + n] -= schedules[idx].interval_energies()

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules,
        demand=demand,
        target=result.target,
        unplaced=list(result.unplaced),
    )


def _improve_vectorized(
    result: ScheduleResult,
    schedules: list[ScheduledFlexOffer],
    rng: np.random.Generator,
    iterations: int,
) -> ScheduleResult:
    """Hoisted move evaluation: same draws, same floats, no full-array copies.

    Per-offer bounds, feasible starts and start indices are computed once;
    each move evaluation touches only the two affected windows of the
    residual (adding back the current placement on their overlap), so the
    per-iteration cost is O(profile length) instead of O(horizon).
    """
    axis = result.target.axis
    residual = result.target.values - result.demand.values
    length = axis.length

    # Hoisted per-schedule state (the offers never change, only placements).
    from repro.scheduling.greedy import start_grid

    lows: list[np.ndarray] = []
    highs: list[np.ndarray] = []
    sizes: list[int] = []
    steps_of: list[np.ndarray] = []
    firsts_of: list[np.ndarray] = []
    cur_first: list[int] = []
    cur_energies: list[np.ndarray] = []
    for schedule in schedules:
        offer = schedule.offer
        lo, hi = offer.slice_expansion_arrays()
        lows.append(lo)
        highs.append(hi)
        sizes.append(lo.size)
        # The reference engine filters by axis membership only and burns a
        # draw on overrunning starts — replicated here so both engines
        # consume the generator identically.
        steps, firsts = start_grid(offer, axis, require_fit=False)
        steps_of.append(steps)
        firsts_of.append(firsts)
        cur_first.append(axis.index_of(schedule.start))
        cur_energies.append(schedule.interval_energies())

    for _ in range(iterations):
        idx = int(rng.integers(0, len(schedules)))
        firsts = firsts_of[idx]
        if firsts.size == 0:
            continue
        pick = int(rng.integers(0, firsts.size))
        n = sizes[idx]
        first_new = int(firsts[pick])
        if first_new + n > length:
            continue

        first_old = cur_first[idx]
        old_energies = cur_energies[idx]
        # The two windows of `residual` with the current placement added
        # back — equal to the reference engine's full-copy construction on
        # exactly the touched intervals.
        old_window = residual[first_old : first_old + n] + old_energies
        window = residual[first_new : first_new + n].copy()
        overlap_lo = max(first_old, first_new)
        overlap_hi = min(first_old + n, first_new + n)
        if overlap_hi > overlap_lo:
            window[overlap_lo - first_new : overlap_hi - first_new] += old_energies[
                overlap_lo - first_old : overlap_hi - first_old
            ]
        new_energies = _water_fill(window, lows[idx], highs[idx])
        gain_new = _placement_gain(window, new_energies)
        gain_old = _placement_gain(old_window, old_energies)
        if gain_new <= gain_old:
            continue
        offer = schedules[idx].offer
        new_start = offer.earliest_start + offer.resolution * int(steps_of[idx][pick])
        schedules[idx] = ScheduledFlexOffer(
            offer, new_start, _intervals_to_slices(offer, new_energies)
        )
        accepted = schedules[idx].interval_energies()
        residual[first_old : first_old + n] += old_energies
        residual[first_new : first_new + n] -= accepted
        cur_first[idx] = first_new
        cur_energies[idx] = accepted

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules,
        demand=demand,
        target=result.target,
        unplaced=list(result.unplaced),
    )

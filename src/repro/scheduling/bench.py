"""The market-scale scheduling benchmark: vectorized vs reference engine.

The paper's end goal is *scheduled* flexibility: thousands of consumers are
aggregated "before the actual scheduling" (paper §6) and the aggregates are
placed against a target series (Tušar et al., BIOMA 2012).  This benchmark
measures that market-facing half of the loop on its own: hundreds of
aggregated flex-offers placed over a week-long RES-surplus target, the
vectorized placement engine against the ``engine="reference"`` per-start
loop, plus the stochastic improvement pass under both engines.

The resulting report is written to ``BENCH_schedule.json`` so the
repository carries a refreshable speedup baseline; re-run via
``repro bench --suite schedule`` or ``pytest benchmarks/bench_schedule.py``.

The zoned companion (:func:`build_zoned_workload`,
:func:`run_zones_benchmark` → ``BENCH_zones.json``, ``repro bench --suite
zones``) shards the same 220-offer suite across four zone markets and
measures the zone-sharded scheduler across all three placement engines.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer, aggregate_group
from repro.flexoffer.generators import RandomGeneratorConfig, random_flexoffer
from repro.flexoffer.model import offer_id_scope
from repro.scheduling.greedy import ScheduleConfig, ScheduleResult, greedy_schedule
from repro.scheduling.stochastic import improve_schedule
from repro.simulation.res import simulate_wind_production
from repro.timeseries.axis import axis_for_days
from repro.timeseries.series import TimeSeries
from repro.workloads.scenarios import SCENARIO_START

#: Relative tolerance for reference-vs-vectorized schedule costs.  The two
#: engines differ only in float summation order on the gain reductions.
SCHEDULE_FIDELITY_RTOL = 1e-9

#: Timing repetitions per engine; the minimum is reported (robust against
#: scheduler noise on shared CI machines).
_TIMING_REPEATS = 3


def build_schedule_workload(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
) -> tuple[list[AggregatedFlexOffer], TimeSeries]:
    """A deterministic market-scale workload: aggregates + week target.

    Random household-scale offers (12–48 h of start flexibility) are drawn
    on the week's metering axis; each group clusters members within the
    grouping grid's default 2-hour start tolerance (shifted copies of a
    base offer), matching the shape :func:`repro.aggregation.grouping
    .group_offers` produces on real fleets.  The target is simulated wind
    production rescaled so its total matches the fleet's maximum flexible
    energy.
    """
    from dataclasses import replace

    from repro.flexoffer.model import next_offer_id

    axis = axis_for_days(SCENARIO_START, days)
    rng = np.random.default_rng(seed)
    config = RandomGeneratorConfig(
        time_flexibility_min=timedelta(hours=12),
        time_flexibility_max=timedelta(hours=48),
    )
    aggregates: list[AggregatedFlexOffer] = []
    with offer_id_scope("schedule-bench"):
        for _ in range(n_aggregates):
            base = random_flexoffer(axis, rng, config)
            members = [base]
            for _ in range(members_per_aggregate - 1):
                offset = int(rng.integers(0, 9))  # within the 2 h grouping grid
                shifted = base.shifted(axis.resolution * offset)
                if shifted.latest_start + shifted.duration > axis.end:
                    shifted = base
                member = replace(
                    shifted.scaled(float(rng.uniform(0.6, 1.4))),
                    offer_id=next_offer_id("rand"),
                )
                members.append(member)
            aggregates.append(aggregate_group(members))
    target = simulate_wind_production(axis, np.random.default_rng(seed + 1))
    flexible = sum(a.offer.profile_energy_max for a in aggregates)
    if target.total() > 0:
        target = target * (flexible / target.total())
    return aggregates, target


def _timed(fn, repeats: int = _TIMING_REPEATS):
    """Run ``fn`` ``repeats`` times; return (min seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_schedule_benchmark(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    improve_iterations: int = 2000,
    out_path: Path | str | None = None,
) -> tuple[dict, ScheduleResult]:
    """Run the scheduling benchmark; returns the report dict and the
    vectorized greedy result.

    When ``out_path`` is given the report is also written there as JSON
    (the repository's ``BENCH_schedule.json`` baseline).
    """
    aggregates, target = build_schedule_workload(
        n_aggregates, members_per_aggregate, days, seed
    )
    offers = [a.offer for a in aggregates]
    reference_config = ScheduleConfig(engine="reference")

    # Warm-up (numpy dispatch, axis caches) before any timed pass.
    greedy_schedule(offers[:8], target)
    greedy_schedule(offers[:8], target, config=reference_config)

    reference_seconds, reference_result = _timed(
        lambda: greedy_schedule(offers, target, config=reference_config)
    )
    vectorized_seconds, vectorized_result = _timed(
        lambda: greedy_schedule(offers, target)
    )
    speedup = (
        reference_seconds / vectorized_seconds
        if vectorized_seconds > 0
        else float("inf")
    )

    placements_identical = [
        (s.offer.offer_id, s.start) for s in reference_result.schedules
    ] == [(s.offer.offer_id, s.start) for s in vectorized_result.schedules]
    cost_match = bool(
        np.isclose(
            reference_result.cost,
            vectorized_result.cost,
            rtol=SCHEDULE_FIDELITY_RTOL,
        )
    )
    energies_reference = [
        e for s in reference_result.schedules for e in s.slice_energies
    ]
    energies_vectorized = [
        e for s in vectorized_result.schedules for e in s.slice_energies
    ]
    energies_match = bool(
        np.allclose(
            energies_reference,
            energies_vectorized,
            rtol=SCHEDULE_FIDELITY_RTOL,
            atol=1e-12,
        )
    )

    improve_reference_seconds, improve_reference = _timed(
        lambda: improve_schedule(
            vectorized_result,
            np.random.default_rng(seed),
            iterations=improve_iterations,
            engine="reference",
        )
    )
    improve_vectorized_seconds, improve_vectorized = _timed(
        lambda: improve_schedule(
            vectorized_result,
            np.random.default_rng(seed),
            iterations=improve_iterations,
            engine="vectorized",
        )
    )
    improve_identical = [
        (s.start, s.slice_energies) for s in improve_reference.schedules
    ] == [(s.start, s.slice_energies) for s in improve_vectorized.schedules]
    improve_speedup = (
        improve_reference_seconds / improve_vectorized_seconds
        if improve_vectorized_seconds > 0
        else float("inf")
    )

    report = {
        "workload": {
            "aggregates": len(aggregates),
            "member_offers": sum(a.size for a in aggregates),
            "days": days,
            "seed": seed,
            "order": "least-flexible-first",
        },
        "target": {
            "kind": "wind",
            "total_kwh": round(target.total(), 6),
            "intervals": target.axis.length,
        },
        "greedy": {
            "reference_seconds": round(reference_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(speedup, 2),
            "placed": len(vectorized_result.schedules),
            "unplaced": len(vectorized_result.unplaced),
            "cost": round(vectorized_result.cost, 6),
            "improvement": round(vectorized_result.improvement, 6),
        },
        "improve": {
            "iterations": improve_iterations,
            "reference_seconds": round(improve_reference_seconds, 4),
            "vectorized_seconds": round(improve_vectorized_seconds, 4),
            "speedup": round(improve_speedup, 2),
            "cost": round(improve_vectorized.cost, 6),
            "identical": improve_identical,
        },
        "equivalence": {
            "placements_identical": placements_identical,
            "cost_match": cost_match,
            "energies_match": energies_match,
            "fidelity_rtol": SCHEDULE_FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, vectorized_result


def build_zoned_workload(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    zones: int = 4,
):
    """The 220-offer suite sharded into a deterministic zoned market.

    Reuses :func:`build_schedule_workload`'s aggregates; the market is
    ``zones`` named zones, each with its own wind profile (seeded
    ``seed + 100 + zone index``) scaled to an equal slice of the fleet's
    flexible energy and its own price band.  Half the aggregates are
    routed through the explicit assignment mapping (round-robin by routing
    key), the rest through the hash-shard fallback, so the benchmark
    exercises both policy paths.  Returns ``(aggregates, zoned_target)``.
    """
    from repro.scheduling.zones import ZonedTarget, make_market_zones, routing_key

    aggregates, target = build_schedule_workload(
        n_aggregates, members_per_aggregate, days, seed
    )
    flexible = sum(a.offer.profile_energy_max for a in aggregates)
    market_zones = make_market_zones(
        target.axis, zones, seed + 100, flexible / max(zones, 1)
    )
    assignment = {
        routing_key(aggregate): market_zones[index % zones].name
        for index, aggregate in enumerate(aggregates[: n_aggregates // 2])
    }
    return aggregates, ZonedTarget(zones=market_zones, assignment=assignment)


def run_zones_benchmark(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    zones: int = 4,
    out_path: Path | str | None = None,
):
    """Benchmark the zone-sharded scheduler across all three engines.

    Times :func:`~repro.scheduling.zones.schedule_zones` on the 220-offer
    suite under the reference, vectorized and incremental engines, gates
    the incremental engine ≥2× over the reference full-re-scoring loop
    with placements *bitwise identical* to the vectorized engine, and
    proves the ``workers=2`` process-pool fan-out produces a report
    identical to the sequential path.  Returns ``(report_dict,
    incremental_result)``; ``out_path`` writes the repository's
    ``BENCH_zones.json`` baseline.
    """
    from repro.scheduling.zones import assign_zones, schedule_zones

    aggregates, zoned = build_zoned_workload(
        n_aggregates, members_per_aggregate, days, seed, zones
    )
    buckets = assign_zones(aggregates, zoned)

    # Warm-up (numpy dispatch, axis caches) before any timed pass.
    for engine in ("reference", "vectorized", "incremental"):
        schedule_zones(aggregates[:8], zoned, ScheduleConfig(engine=engine))

    reference_seconds, reference_result = _timed(
        lambda: schedule_zones(aggregates, zoned, ScheduleConfig(engine="reference"))
    )
    vectorized_seconds, vectorized_result = _timed(
        lambda: schedule_zones(aggregates, zoned, ScheduleConfig(engine="vectorized"))
    )
    incremental_seconds, incremental_result = _timed(
        lambda: schedule_zones(aggregates, zoned, ScheduleConfig(engine="incremental"))
    )

    def _placements(result):
        return [
            (s.offer.offer_id, s.start, s.slice_energies)
            for zone_result in result.results
            for s in zone_result.schedules
        ]

    incremental_identical = _placements(incremental_result) == _placements(
        vectorized_result
    )
    reference_identical_starts = [
        (s.offer.offer_id, s.start) for r in reference_result.results for s in r.schedules
    ] == [
        (s.offer.offer_id, s.start)
        for r in incremental_result.results
        for s in r.schedules
    ]
    cost_match = bool(
        np.isclose(
            reference_result.cost,
            incremental_result.cost,
            rtol=SCHEDULE_FIDELITY_RTOL,
        )
    )

    fanned = schedule_zones(
        aggregates, zoned, ScheduleConfig(engine="incremental"), workers=2
    )
    workers_match = fanned == incremental_result

    routed = incremental_result.assignment()
    aggregate_ids = [a.offer.offer_id for a in aggregates]
    partition_ok = sorted(routed) == sorted(aggregate_ids)

    speedup_vs_reference = (
        reference_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf")
    )
    speedup_vs_vectorized = (
        vectorized_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf")
    )

    report = {
        "workload": {
            "aggregates": len(aggregates),
            "member_offers": sum(a.size for a in aggregates),
            "days": days,
            "seed": seed,
            "zones": len(zoned.zones),
            "mapped_keys": len(zoned.assignment),
        },
        "zones": [
            {
                "name": zone.name,
                "offers": len(buckets[zone.name]),
                "target_kwh": round(zone.target.total(), 6),
                "price_floor": zone.price_floor,
                "price_cap": zone.price_cap,
            }
            for zone in zoned.zones
        ],
        "greedy": {
            "reference_seconds": round(reference_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "incremental_seconds": round(incremental_seconds, 4),
            "speedup_vs_reference": round(speedup_vs_reference, 2),
            "speedup_vs_vectorized": round(speedup_vs_vectorized, 2),
            "placed": len(incremental_result.schedules),
            "unplaced": len(incremental_result.unplaced),
            "cost": round(incremental_result.cost, 6),
            "improvement": round(incremental_result.improvement, 6),
            "value_eur": round(incremental_result.market_value, 6),
        },
        "equivalence": {
            "incremental_identical_to_vectorized": incremental_identical,
            "reference_identical_placements": reference_identical_starts,
            "cost_match": cost_match,
            "workers_match_sequential": workers_match,
            "zone_partition": partition_ok,
            "fidelity_rtol": SCHEDULE_FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, incremental_result


def run_uncertainty_benchmark(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    out_path: Path | str | None = None,
):
    """Benchmark robust (quantile-fan) scheduling against point scheduling.

    Places the 220-aggregate suite twice on the vectorized engine — once
    against the point target, once against the synthetic quantile fan
    under CVaR risk — and reports the wall-time *overhead* of robust mode
    (gated ≤2× point scheduling: scoring a 3-scenario fan must stay in
    the same complexity class as the point path).  The equivalence block
    proves the robust reference scan and the batched robust path place
    bitwise identically, and that robust decisions are deterministic
    across runs.  The realized block scores both schedules against every
    scenario of the fan with :func:`~repro.scheduling.robust
    .evaluate_realized` — the robust schedule should not be beaten on the
    risk-weighted average it optimises.  Returns ``(report_dict,
    robust_result)``; ``out_path`` writes the repository's
    ``BENCH_uncertainty.json`` baseline.
    """
    from repro.scheduling.robust import (
        RobustConfig,
        evaluate_realized,
        quantile_weights,
        synthetic_fan,
    )

    #: The gate: robust placement may cost at most this many point passes.
    overhead_gate = 2.0

    aggregates, target = build_schedule_workload(
        n_aggregates, members_per_aggregate, days, seed
    )
    offers = [a.offer for a in aggregates]
    robust = RobustConfig(quantiles=(0.1, 0.5, 0.9), risk="cvar", alpha=0.3)
    robust_config = ScheduleConfig(robust=robust)
    scenarios = synthetic_fan(target, robust)
    weights = quantile_weights(robust.quantiles)

    # Warm-up (numpy dispatch, axis caches) before any timed pass.
    greedy_schedule(offers[:8], target)
    greedy_schedule(offers[:8], target, config=robust_config)

    point_seconds, point_result = _timed(lambda: greedy_schedule(offers, target))
    robust_seconds, robust_result = _timed(
        lambda: greedy_schedule(offers, target, config=robust_config)
    )
    overhead = (
        robust_seconds / point_seconds if point_seconds > 0 else float("inf")
    )

    def _placements(result):
        return [
            (s.offer.offer_id, s.start, s.slice_energies)
            for s in result.schedules
        ]

    reference_result = greedy_schedule(
        offers, target, config=ScheduleConfig(engine="reference", robust=robust)
    )
    reference_identical = _placements(reference_result) == _placements(
        robust_result
    )
    rerun_result = greedy_schedule(offers, target, config=robust_config)
    deterministic = _placements(rerun_result) == _placements(robust_result)

    point_costs = [
        evaluate_realized(point_result, scenario).realized_cost
        for scenario in scenarios
    ]
    robust_costs = [
        evaluate_realized(robust_result, scenario).realized_cost
        for scenario in scenarios
    ]
    point_expected = float(sum(w * c for w, c in zip(weights, point_costs)))
    robust_expected = float(sum(w * c for w, c in zip(weights, robust_costs)))

    report = {
        "workload": {
            "aggregates": len(aggregates),
            "member_offers": sum(a.size for a in aggregates),
            "days": days,
            "seed": seed,
            "quantiles": list(robust.quantiles),
            "risk": robust.risk,
            "alpha": robust.alpha,
            "sigma": robust.sigma,
        },
        "target": {
            "kind": "wind",
            "total_kwh": round(target.total(), 6),
            "intervals": target.axis.length,
        },
        "greedy": {
            "point_seconds": round(point_seconds, 4),
            "robust_seconds": round(robust_seconds, 4),
            "overhead": round(overhead, 2),
            "overhead_gate": overhead_gate,
            "meets_overhead_gate": bool(overhead <= overhead_gate),
            "placed": len(robust_result.schedules),
            "unplaced": len(robust_result.unplaced),
            "point_cost": round(point_result.cost, 6),
            "robust_cost": round(robust_result.cost, 6),
        },
        "realized": {
            "levels": list(robust.quantiles),
            "point_costs": [round(c, 6) for c in point_costs],
            "robust_costs": [round(c, 6) for c in robust_costs],
            "point_expected": round(point_expected, 6),
            "robust_expected": round(robust_expected, 6),
        },
        "equivalence": {
            "robust_reference_identical": reference_identical,
            "deterministic_across_runs": deterministic,
            "fidelity_rtol": SCHEDULE_FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, robust_result


def uncertainty_table_rows(report: dict) -> list[dict]:
    """Human-readable rows for the uncertainty CLI/bench table.

    One row per quantile level (realized cost of the point vs robust
    schedule against that scenario) plus a risk-weighted EXPECTED row.
    """
    realized = report["realized"]
    rows = [
        {
            "scenario": f"q{level:g}",
            "point_cost": round(point, 2),
            "robust_cost": round(robust, 2),
            "delta": round(robust - point, 2),
        }
        for level, point, robust in zip(
            realized["levels"], realized["point_costs"], realized["robust_costs"]
        )
    ]
    rows.append(
        {
            "scenario": "EXPECTED",
            "point_cost": round(realized["point_expected"], 2),
            "robust_cost": round(realized["robust_expected"], 2),
            "delta": round(
                realized["robust_expected"] - realized["point_expected"], 2
            ),
        }
    )
    return rows


def zones_table_rows(report: dict) -> list[dict]:
    """Human-readable rows for the zones CLI/bench table.

    One row per zone plus a TOTAL row; engine timings/speedups are printed
    separately (``_cmd_bench_zones``), not smuggled into a zone column.
    """
    rows = [
        {
            "zone": zone["name"],
            "offers": zone["offers"],
            "target_kwh": round(zone["target_kwh"], 1),
            "price_band": f"{zone['price_floor']}-{zone['price_cap']}",
        }
        for zone in report["zones"]
    ]
    rows.append(
        {
            "zone": "TOTAL",
            "offers": report["workload"]["aggregates"],
            "target_kwh": round(sum(z["target_kwh"] for z in report["zones"]), 1),
            "price_band": "—",
        }
    )
    return rows


def schedule_table_rows(report: dict) -> list[dict]:
    """Human-readable rows for the CLI/bench table."""
    greedy = report["greedy"]
    improve = report["improve"]
    return [
        {
            "phase": "greedy placement",
            "reference_s": greedy["reference_seconds"],
            "vectorized_s": greedy["vectorized_seconds"],
            "speedup": f"{greedy['speedup']}x",
            "detail": f"{greedy['placed']} placed / {greedy['unplaced']} unplaced",
        },
        {
            "phase": f"stochastic improve ({improve['iterations']} it)",
            "reference_s": improve["reference_seconds"],
            "vectorized_s": improve["vectorized_seconds"],
            "speedup": f"{improve['speedup']}x",
            "detail": f"cost {improve['cost']:.2f} (greedy {greedy['cost']:.2f})",
        },
    ]

"""Flex-offer scheduling against RES surplus (MIRABEL substrate, paper [5])."""

from repro.scheduling.greedy import ScheduleResult, greedy_schedule, naive_schedule
from repro.scheduling.objective import (
    absolute_imbalance,
    overshoot,
    squared_imbalance,
    unmet_target,
)
from repro.scheduling.stochastic import improve_schedule

__all__ = [
    "ScheduleResult",
    "greedy_schedule",
    "naive_schedule",
    "absolute_imbalance",
    "overshoot",
    "squared_imbalance",
    "unmet_target",
    "improve_schedule",
]

"""Flex-offer scheduling against market targets (MIRABEL substrate, [5]).

The market-facing half of the loop: aggregated flex-offers are placed
against target series (RES surplus, zone demand) by a greedy water-fill
search plus an optional stochastic hill climber, single-market
(:mod:`repro.scheduling.greedy`) or sharded by grid zone
(:mod:`repro.scheduling.zones`).

Subsystem contract:

* **Determinism** — every scheduler is a pure function of (offers, target,
  config, seed); repeated runs, worker fan-outs (``schedule_zones
  (workers=N)``) and process boundaries produce identical placements.
* **Engine equivalence** — ``ScheduleConfig(engine=...)`` selects an
  execution plan, never a behaviour: ``"vectorized"`` and
  ``"incremental"`` make placements *bitwise identical* to each other and
  identical to the ``"reference"`` per-start loop (cost within
  ``rtol=1e-9``), asserted by ``benchmarks/bench_schedule.py``,
  ``benchmarks/bench_zones.py`` and the conformance matrix.
  ``"auto"`` resolves to one of that bitwise pair from the workload's
  placement density (:mod:`repro.scheduling.autotune`), so autotuning is
  a wall-clock decision that can never change a schedule.
* **Performance baselines** — the reference engines are kept runnable;
  ``BENCH_schedule.json`` / ``BENCH_zones.json`` /
  ``BENCH_uncertainty.json`` pin the measured speedups, overheads and
  equivalence booleans (refresh via ``repro bench``).
* **Uncertainty** — ``ScheduleConfig(robust=RobustConfig(...))`` scores
  every candidate placement against a quantile scenario fan
  (:mod:`repro.scheduling.robust`) under an expected or CVaR risk
  measure; energies stay the point-target water-fill, so robust mode
  changes *which start wins*, never the feasibility story, and the
  reference/vectorized bitwise pair extends to the robust paths.
"""

from repro.scheduling.autotune import (
    AUTO_DENSITY_CROSSOVER,
    AUTO_MIN_OFFERS,
    choose_engine,
    crossover_sweep,
    placement_density,
    resolve_engine,
)
from repro.scheduling.bench import (
    SCHEDULE_FIDELITY_RTOL,
    build_schedule_workload,
    build_zoned_workload,
    run_schedule_benchmark,
    run_uncertainty_benchmark,
    run_zones_benchmark,
    schedule_table_rows,
    uncertainty_table_rows,
    zones_table_rows,
)
from repro.scheduling.robust import (
    DEFAULT_ROBUST_QUANTILES,
    RISK_MEASURES,
    RealizedEvaluation,
    RobustConfig,
    cvar_count,
    evaluate_realized,
    quantile_weights,
    resolve_fan,
    risk_of,
    risk_profile,
    synthetic_fan,
)
from repro.scheduling.greedy import (
    ScheduleConfig,
    ScheduleResult,
    greedy_schedule,
    naive_schedule,
)
from repro.scheduling.objective import (
    absolute_imbalance,
    overshoot,
    squared_imbalance,
    unmet_target,
)
from repro.scheduling.stochastic import improve_schedule
from repro.scheduling.zones import (
    MarketZone,
    ZonedScheduleResult,
    ZonedTarget,
    assign_zone,
    assign_zones,
    hash_shard,
    make_market_zones,
    routing_key,
    schedule_zones,
    zone_name,
)

__all__ = [
    "AUTO_DENSITY_CROSSOVER",
    "AUTO_MIN_OFFERS",
    "choose_engine",
    "crossover_sweep",
    "placement_density",
    "resolve_engine",
    "SCHEDULE_FIDELITY_RTOL",
    "build_schedule_workload",
    "build_zoned_workload",
    "run_schedule_benchmark",
    "run_uncertainty_benchmark",
    "run_zones_benchmark",
    "schedule_table_rows",
    "uncertainty_table_rows",
    "zones_table_rows",
    "DEFAULT_ROBUST_QUANTILES",
    "RISK_MEASURES",
    "RealizedEvaluation",
    "RobustConfig",
    "cvar_count",
    "evaluate_realized",
    "quantile_weights",
    "resolve_fan",
    "risk_of",
    "risk_profile",
    "synthetic_fan",
    "ScheduleConfig",
    "ScheduleResult",
    "greedy_schedule",
    "naive_schedule",
    "absolute_imbalance",
    "overshoot",
    "squared_imbalance",
    "unmet_target",
    "improve_schedule",
    "MarketZone",
    "ZonedScheduleResult",
    "ZonedTarget",
    "assign_zone",
    "assign_zones",
    "hash_shard",
    "make_market_zones",
    "routing_key",
    "schedule_zones",
    "zone_name",
]

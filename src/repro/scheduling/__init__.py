"""Flex-offer scheduling against RES surplus (MIRABEL substrate, paper [5])."""

from repro.scheduling.bench import (
    SCHEDULE_FIDELITY_RTOL,
    build_schedule_workload,
    run_schedule_benchmark,
    schedule_table_rows,
)
from repro.scheduling.greedy import (
    ScheduleConfig,
    ScheduleResult,
    greedy_schedule,
    naive_schedule,
)
from repro.scheduling.objective import (
    absolute_imbalance,
    overshoot,
    squared_imbalance,
    unmet_target,
)
from repro.scheduling.stochastic import improve_schedule

__all__ = [
    "SCHEDULE_FIDELITY_RTOL",
    "build_schedule_workload",
    "run_schedule_benchmark",
    "schedule_table_rows",
    "ScheduleConfig",
    "ScheduleResult",
    "greedy_schedule",
    "naive_schedule",
    "absolute_imbalance",
    "overshoot",
    "squared_imbalance",
    "unmet_target",
    "improve_schedule",
]

"""Engine-crossover autotuning: pick the greedy engine from workload shape.

The ``"vectorized"`` and ``"incremental"`` engines place offers bitwise
identically (shared :func:`~repro.scheduling.greedy._score_windows`
arithmetic), so engine choice is *purely* a performance decision — which
makes it automatable.  Their costs diverge on one axis:

* the vectorized engine re-scores **all** of an offer's candidate starts
  at that offer's turn — cost grows with candidates × placements that
  happened before the turn, regardless of whether those placements touched
  the offer's windows;
* the incremental engine scores everything once upfront and thereafter
  re-scores only candidates whose residual window a placement actually
  overlapped — cost grows with the *overlap* between placements and
  candidate windows, plus bookkeeping per placement.

The decisive workload statistic is therefore **placement density**: how
much of the target axis the fleet's placements cover.  Each placement
spans ``n`` intervals and dirties candidate windows it intersects, so with
``P`` offers of mean span ``n̄`` on an axis of ``L`` intervals, a candidate
window expects about ``P · 2n̄ / L`` dirtying placements over the run —
:func:`placement_density`.  Sparse markets (density ≪ 1: wide feasible
windows, placements rarely collide) leave most cached gains clean and the
incremental engine wins; dense markets (density ≫ 1: every placement
dirties most candidates) degrade it to full re-scoring *plus* cache
bookkeeping, and the vectorized engine wins.

``ScheduleConfig(engine="auto")`` resolves through :func:`choose_engine`
at the entry of :func:`~repro.scheduling.greedy.greedy_schedule` (and once
in the pipeline's schedule stage, before the stochastic improver).  The
crossover constant is calibrated by :func:`crossover_sweep`, which times
both engines on synthetic workloads across a density ladder — the scale
benchmark (``repro bench --suite scale``) records the sweep in
``BENCH_scale.json`` and gates that ``"auto"`` picks the measured winner
on both ends of the ladder.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import replace
from datetime import datetime
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flexoffer.model import FlexOffer
    from repro.scheduling.greedy import ScheduleConfig, ScheduleResult
    from repro.timeseries.axis import TimeAxis

#: Density at which the engines cross over, calibrated by
#: :func:`crossover_sweep` on the scale benchmark's synthetic workloads
#: (see ``BENCH_scale.json``).  Below: incremental; at/above: vectorized.
#: Measured on the sweep's density ladder: incremental is ~10% faster at
#: density ≲ 1.3, at parity around 2, and loses 10–30% from ~2.6 up.
AUTO_DENSITY_CROSSOVER = 2.0

#: Workloads smaller than this always take the vectorized engine: the
#: incremental engine's upfront group scoring + per-placement bookkeeping
#: only amortizes across enough offers.
AUTO_MIN_OFFERS = 32


def placement_density(offers: Sequence["FlexOffer"], axis: "TimeAxis") -> float:
    """Expected dirtying placements per candidate window (see module doc).

    ``len(offers) * 2 * mean_profile_span / axis.length`` — dimensionless;
    ``0.0`` for an empty workload.  Deterministic and O(offers), so the
    autotuner itself never shows up in a profile.
    """
    if not offers or axis.length == 0:
        return 0.0
    mean_span = sum(offer.profile_intervals for offer in offers) / len(offers)
    return 2.0 * len(offers) * mean_span / axis.length


def choose_engine(offers: Sequence["FlexOffer"], axis: "TimeAxis") -> str:
    """The concrete engine ``engine="auto"`` resolves to for this workload."""
    if len(offers) < AUTO_MIN_OFFERS:
        return "vectorized"
    density = placement_density(offers, axis)
    return "incremental" if density < AUTO_DENSITY_CROSSOVER else "vectorized"


def resolve_engine(
    config: "ScheduleConfig",
    offers: Sequence["FlexOffer"],
    axis: "TimeAxis",
) -> "ScheduleConfig":
    """``config`` with ``engine="auto"`` replaced by the workload's winner.

    Any other engine passes through unchanged, so callers can resolve
    unconditionally.  The pipeline's schedule stage resolves *before* the
    stochastic improver so one decision governs the whole stage.  Robust
    mode (``config.robust``) always resolves to vectorized: the
    incremental engine has no scenario-fan path, so the density crossover
    does not apply.
    """
    if config.engine != "auto":
        return config
    if config.robust is not None:
        return replace(config, engine="vectorized")
    return replace(config, engine=choose_engine(offers, axis))


# --------------------------------------------------------------------- #
# Crossover calibration (the scale benchmark's sweep)
# --------------------------------------------------------------------- #


def sweep_offers(
    count: int, axis: "TimeAxis", seed: int = 0
) -> list["FlexOffer"]:
    """``count`` deterministic synthetic offers spread over ``axis``.

    Profile spans of 3–8 intervals with wide feasible windows — the shape
    aggregated household offers take after grouping — spread uniformly so
    the workload's :func:`placement_density` is controlled by ``count``
    and ``axis.length`` alone.
    """
    from repro.flexoffer.model import FlexOffer, ProfileSlice

    rng = np.random.default_rng(seed)
    spans = rng.integers(3, 9, size=count)
    anchors = rng.integers(0, max(1, axis.length - 16), size=count)
    flexes = rng.integers(8, 97, size=count)
    offers = []
    for index in range(count):
        earliest = axis.start + int(anchors[index]) * axis.resolution
        latest = earliest + int(flexes[index]) * axis.resolution
        slices = tuple(
            ProfileSlice(float(lo), float(lo) * 1.8)
            for lo in rng.uniform(0.2, 0.8, int(spans[index]))
        )
        offers.append(
            FlexOffer(
                earliest_start=earliest,
                latest_start=latest,
                slices=slices,
                resolution=axis.resolution,
                offer_id=f"sweep-{seed}-{index}",
            )
        )
    return offers


def _time_engines(
    offers: list["FlexOffer"], target, repeats: int
) -> dict[str, tuple[float, "ScheduleResult"]]:
    """Best-of-``repeats`` wall time per engine, engines interleaved.

    Interleaving (vec, inc, vec, inc, ...) instead of timing each engine's
    repeats back to back keeps slow machine-wide drifts (single-core
    boxes, noisy neighbours) from landing entirely on one engine.
    """
    from repro.scheduling.greedy import ScheduleConfig, greedy_schedule

    engines = ("vectorized", "incremental")
    best: dict[str, float] = {engine: float("inf") for engine in engines}
    results: dict[str, "ScheduleResult"] = {}
    for engine in engines:  # warm-up, untimed
        results[engine] = greedy_schedule(
            offers, target, config=ScheduleConfig(engine=engine)
        )
    for _ in range(repeats):
        for engine in engines:
            begin = time.perf_counter()
            greedy_schedule(offers, target, config=ScheduleConfig(engine=engine))
            best[engine] = min(best[engine], time.perf_counter() - begin)
    return {engine: (best[engine], results[engine]) for engine in engines}


def crossover_sweep(
    offer_count: int = 1024,
    axis_days: Sequence[int] = (7, 30, 90, 365),
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, float | str | bool]]:
    """Time both engines across a density ladder; one row per axis length.

    Fixing the offer count and stretching the axis walks the density from
    dense (short axis, placements collide constantly) to sparse (long
    axis, placements rarely meet) — the single knob the engines disagree
    on.  Each row records the density, both engines' best-of-``repeats``
    wall times, the measured winner, what :func:`choose_engine` would have
    picked, and whether the two engines' placements agreed bitwise (they
    must; the row asserts the engine-equivalence contract end to end).
    """
    from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis

    start = datetime(2012, 3, 5)
    rows: list[dict[str, float | str | bool]] = []
    for days in axis_days:
        axis = TimeAxis(start, FIFTEEN_MINUTES, 96 * days)
        offers = sweep_offers(offer_count, axis, seed=seed)
        rng = np.random.default_rng(seed + days)
        target_values = rng.uniform(0.0, 2.0, axis.length)
        from repro.timeseries.series import TimeSeries

        target = TimeSeries(axis, target_values, name="sweep-target")
        timed = _time_engines(offers, target, repeats)
        vec_seconds, vec_result = timed["vectorized"]
        inc_seconds, inc_result = timed["incremental"]
        identical = [
            (s.offer.offer_id, s.start, s.slice_energies)
            for s in vec_result.schedules
        ] == [
            (s.offer.offer_id, s.start, s.slice_energies)
            for s in inc_result.schedules
        ]
        rows.append(
            {
                "offers": float(offer_count),
                "axis_days": float(days),
                "density": placement_density(offers, axis),
                "vectorized_seconds": round(vec_seconds, 6),
                "incremental_seconds": round(inc_seconds, 6),
                "measured_winner": (
                    "incremental" if inc_seconds < vec_seconds else "vectorized"
                ),
                "auto_choice": choose_engine(offers, axis),
                "engines_bitwise_identical": identical,
            }
        )
    return rows


__all__ = [
    "AUTO_DENSITY_CROSSOVER",
    "AUTO_MIN_OFFERS",
    "choose_engine",
    "crossover_sweep",
    "placement_density",
    "resolve_engine",
    "sweep_offers",
]

"""Greedy flex-offer scheduling against a target series (paper [5]).

Tušar et al., "Using aggregation to improve the scheduling of flexible
energy offers" (BIOMA 2012) schedule aggregated flex-offers so flexible
demand soaks up surplus RES production.  This module implements the greedy
core: offers are placed one by one (least-flexible first, so constrained
offers grab their slots before flexible ones fill the gaps); each offer
tries every feasible grid start, its slice energies water-fill the remaining
target, and the start with the largest squared-imbalance reduction wins.

Three engines implement the same greedy semantics, mirroring the matching
layer's :class:`~repro.disaggregation.matching.MatchingConfig` pattern:

* ``"vectorized"`` (default) — the market-scale hot path.  Each offer's
  per-interval bounds are hoisted to arrays once, all feasible starts are
  evaluated in one ``sliding_window_view`` gather + water-fill + gain pass,
  and offers sharing a profile length share one window view over the
  residual (the view is a stride trick, so placements flow through it
  without rebuilding).
* ``"incremental"`` — batches offers *across* placements: every offer's
  gains are scored once upfront in profile-length groups, and a placement
  only dirties the candidate starts whose windows it overlaps; at each
  offer's turn, only its dirtied starts are re-scored (with the same
  arithmetic the vectorized engine uses on the same residual values, so
  the two engines' gain arrays — and therefore their placements — are
  **bitwise identical**; asserted by ``benchmarks/bench_zones.py`` and the
  conformance matrix).  This is the zone-sharded scheduler's engine of
  choice: sharding keeps placements local, so most candidates stay clean.
* ``"reference"`` — the original per-start Python loop, kept both as the
  behavioural reference and as the baseline the schedule benchmarks
  measure speedups against.

All engines are deterministic and resolve gain ties toward the earliest
feasible start; the vectorized/incremental pair may differ from the
reference in float round-off on the gain reductions and can therefore flip
near-tie placements, but all agree on every placement and on the final
cost within ``rtol=1e-9`` on realistic targets (asserted by
``benchmarks/bench_schedule.py`` and ``benchmarks/bench_zones.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

_ENGINES = ("vectorized", "incremental", "reference")

_ORDERS = ("least-flexible-first", "largest-first", "as-given")


@dataclass(frozen=True, slots=True)
class ScheduleConfig:
    """Knobs of the greedy scheduler (and the pipeline's schedule stage).

    ``order`` is the placement order heuristic (the paper's default places
    the least flexible offers first).  ``engine`` selects the
    implementation: the vectorized market-scale engine or the original
    per-start reference.  ``improve_iterations``/``improve_seed`` configure
    the optional stochastic hill-climbing pass the fleet pipeline runs
    after the greedy placement (0 disables it).
    """

    order: str = "least-flexible-first"
    engine: str = "vectorized"  # "vectorized" | "incremental" | "reference"
    improve_iterations: int = 0
    improve_seed: int = 0

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise SchedulingError(f"unknown order {self.order!r}")
        if self.engine not in _ENGINES:
            raise SchedulingError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.improve_iterations < 0:
            raise SchedulingError("improve_iterations must be >= 0")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a scheduling run."""

    schedules: list[ScheduledFlexOffer]
    demand: TimeSeries
    target: TimeSeries
    unplaced: list[FlexOffer] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Final squared imbalance against the target."""
        diff = self.demand.values - self.target.values
        return float(np.dot(diff, diff))

    @property
    def baseline_cost(self) -> float:
        """Squared imbalance of scheduling nothing at all."""
        return float(np.dot(self.target.values, self.target.values))

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs scheduling nothing (0..1)."""
        base = self.baseline_cost
        return (base - self.cost) / base if base > 0 else 0.0

    @property
    def scheduled_energy(self) -> float:
        """Total energy placed by the schedule (kWh)."""
        return float(sum(s.total_energy for s in self.schedules))

    def summary(self) -> dict[str, float]:
        """Scalar overview of the run (report/benchmark rows)."""
        return {
            "schedule_placed": float(len(self.schedules)),
            "schedule_unplaced": float(len(self.unplaced)),
            "schedule_cost": self.cost,
            "schedule_improvement": self.improvement,
            "schedule_energy_kwh": self.scheduled_energy,
        }


def _water_fill(remaining: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-interval energies tracking the remaining target within bounds."""
    return np.clip(remaining, lows, highs)


def _placement_gain(remaining: np.ndarray, energies: np.ndarray) -> float:
    """Reduction in squared imbalance from consuming ``energies`` here."""
    before = np.dot(remaining, remaining)
    diff = remaining - energies
    after = np.dot(diff, diff)
    return float(before - after)


def start_grid(
    offer: FlexOffer, axis: TimeAxis, require_fit: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """The offer's feasible-start grid as ``(steps, first_indices)`` arrays.

    Exactly :meth:`FlexOffer.feasible_starts` filtered to starts on the
    axis — computed arithmetically (integer microseconds) instead of a
    Python datetime loop, with identical floor semantics to
    :meth:`TimeAxis.index_of`.  ``steps[i]`` counts resolution steps from
    ``earliest_start`` (so the start datetime is ``earliest_start +
    steps[i] * resolution``); ``first_indices[i]`` is the axis index of the
    interval containing that start.  ``require_fit`` additionally drops
    starts whose profile would overrun the axis end.
    """
    one_us = timedelta(microseconds=1)
    res_us = offer.resolution // one_us
    axis_us = axis.resolution // one_us
    off0_us = (offer.earliest_start - axis.start) // one_us
    count = (offer.latest_start - offer.earliest_start) // offer.resolution + 1
    steps = np.arange(count, dtype=np.int64)
    off_us = off0_us + steps * res_us
    total_us = axis_us * axis.length
    first_indices = off_us // axis_us
    valid = (off_us >= 0) & (off_us < total_us)
    if require_fit:
        n = offer.profile_intervals
        valid &= first_indices + n <= axis.length
    return steps[valid], first_indices[valid].astype(np.intp)


@dataclass(frozen=True)
class _PlacementPlan:
    """One offer's placement search space, hoisted to arrays once.

    ``steps``/``start_indices`` hold every feasible start that lies on the
    axis with room for the full profile (see :func:`start_grid`);
    ``lows``/``highs`` are the per-interval water-fill bounds
    (:meth:`FlexOffer.slice_expansion` as vectors).  Building the plan is
    the only per-offer Python-level work the vectorized engine performs.
    """

    offer: FlexOffer
    n: int
    lows: np.ndarray
    highs: np.ndarray
    steps: np.ndarray
    start_indices: np.ndarray


def _build_plan(offer: FlexOffer, axis: TimeAxis) -> _PlacementPlan:
    lows, highs = offer.slice_expansion_arrays()
    steps, indices = start_grid(offer, axis, require_fit=True)
    return _PlacementPlan(
        offer=offer,
        n=lows.size,
        lows=lows,
        highs=highs,
        steps=steps,
        start_indices=indices,
    )


def _pick_best(
    gains: np.ndarray, windows_of, lows: np.ndarray, highs: np.ndarray
) -> int:
    """The row of ``gains`` the greedy step selects, ties resolved exactly.

    Near-tie resolution: exactly-tied gains (flat target regions produce
    them routinely) and ulp-level einsum-vs-dot differences must resolve
    exactly like the reference engine's strict-greater scan.  Candidates
    within round-off of the max (almost always just one) are re-scored
    with the reference arithmetic, so every engine selects the same start.
    ``windows_of(rows)`` gathers the candidates' current residual windows.
    """
    best_gain = float(gains.max())
    tolerance = 1e-12 * max(1.0, abs(best_gain))
    candidates = np.flatnonzero(gains >= best_gain - tolerance)
    if candidates.size == 1:
        return int(candidates[0])
    best = int(candidates[0])
    best_ref = -np.inf
    windows = windows_of(candidates)
    for candidate, window in zip(candidates, windows):
        gain = _placement_gain(window, _water_fill(window, lows, highs))
        if gain > best_ref:
            best, best_ref = int(candidate), gain
    return best


def _best_start_batched(
    plan: _PlacementPlan, windows_view: np.ndarray
) -> tuple[datetime, np.ndarray] | None:
    """All feasible starts of one offer in a single numpy pass.

    ``windows_view`` is ``sliding_window_view(remaining, plan.n)`` — a
    stride trick over the live residual, shared by every offer of the same
    profile length.  The gather copies the current residual values, so
    earlier placements are always reflected.
    """
    if plan.start_indices.size == 0:
        return None
    windows = windows_view[plan.start_indices]
    energies, gains = _score_windows(windows, plan.lows, plan.highs)
    best = _pick_best(gains, lambda rows: windows[rows], plan.lows, plan.highs)
    start = plan.offer.earliest_start + plan.offer.resolution * int(plan.steps[best])
    return start, energies[best]


@dataclass
class _GainCache:
    """One plan's cached gains plus the overlap counts they were scored at.

    ``seen[i]`` is the number of placements whose interval span intersected
    candidate ``i``'s window when its gain was last computed; a candidate is
    dirty exactly when the current intersection count exceeds it.  Counting
    intersections (two ``searchsorted`` calls against the sorted placement
    bounds) makes the dirty test O(log placements) per candidate and
    independent of how many placements happened since the last rescore —
    multiple dirtyings of the same candidate coalesce into one rescore.
    """

    gains: np.ndarray
    seen: np.ndarray


def _score_windows(
    windows: np.ndarray, lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Water-fill + gain for a batch of residual windows.

    The single home of the scoring arithmetic (elementwise clip, one
    einsum reduction per row): the vectorized and incremental engines both
    call it, so their gains are bitwise equal by construction — the
    identity gates in ``bench_zones.py`` and the conformance matrix rest
    on this arithmetic existing exactly once.  Returns ``(energies,
    gains)``.
    """
    energies = np.clip(windows, lows, highs)
    diff = windows - energies
    gains = np.einsum("ij,ij->i", windows, windows) - np.einsum(
        "ij,ij->i", diff, diff
    )
    return energies, gains


def _greedy_incremental(
    queue: list[FlexOffer], axis: TimeAxis, remaining: np.ndarray
) -> tuple[list[ScheduledFlexOffer], list[FlexOffer]]:
    """The ``engine="incremental"`` placement loop.

    Scores every offer's feasible starts once upfront — one gather +
    water-fill + gain pass per profile-length *group*, not per offer — and
    thereafter re-scores a candidate start only when a placement's interval
    span has overlapped its window (ROADMAP: "batch offers across
    placements").  Clean candidates keep their cached gain: their residual
    window is untouched, so the cached value is bitwise equal to what a
    fresh scoring would produce, and the selection (shared
    :func:`_pick_best` tie resolution included) is identical to the
    vectorized engine's.
    """
    plans = [_build_plan(offer, axis) for offer in queue]
    views: dict[int, np.ndarray] = {
        plan.n: sliding_window_view(remaining, plan.n)
        for plan in plans
        if plan.n <= remaining.size
    }
    caches: list[_GainCache | None] = [None] * len(plans)
    groups: dict[int, list[int]] = {}
    for position, plan in enumerate(plans):
        if plan.n in views and plan.start_indices.size:
            groups.setdefault(plan.n, []).append(position)
    for n, positions in groups.items():
        indices = np.concatenate([plans[p].start_indices for p in positions])
        sizes = [plans[p].start_indices.size for p in positions]
        lows = np.concatenate(
            [np.broadcast_to(plans[p].lows, (size, n)) for p, size in zip(positions, sizes)]
        )
        highs = np.concatenate(
            [np.broadcast_to(plans[p].highs, (size, n)) for p, size in zip(positions, sizes)]
        )
        _, gains = _score_windows(views[n][indices], lows, highs)
        cursor = 0
        for position, size in zip(positions, sizes):
            caches[position] = _GainCache(
                gains=gains[cursor : cursor + size].copy(),
                seen=np.zeros(size, dtype=np.int64),
            )
            cursor += size

    firsts_sorted = np.empty(0, dtype=np.int64)
    lasts_sorted = np.empty(0, dtype=np.int64)
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for position, offer in enumerate(queue):
        plan = plans[position]
        cache = caches[position]
        if cache is None:
            unplaced.append(offer)
            continue
        view = views[plan.n]
        indices = plan.start_indices
        if firsts_sorted.size:
            # Placement [a, b) intersects window [s, s+n) iff a < s+n and
            # b > s; count both inequalities against the sorted bounds.
            current = np.searchsorted(
                firsts_sorted, indices + plan.n, side="left"
            ) - np.searchsorted(lasts_sorted, indices, side="right")
            dirty = np.flatnonzero(current > cache.seen)
            if dirty.size:
                _, cache.gains[dirty] = _score_windows(
                    view[indices[dirty]], plan.lows, plan.highs
                )
                cache.seen[dirty] = current[dirty]
        best = _pick_best(
            cache.gains, lambda rows: view[indices[rows]], plan.lows, plan.highs
        )
        start = offer.earliest_start + offer.resolution * int(plan.steps[best])
        # start_grid guarantees indices[best] == axis.index_of(start).
        first = int(indices[best])
        interval_energies = np.clip(view[first], plan.lows, plan.highs)
        schedule = ScheduledFlexOffer(
            offer, start, _intervals_to_slices(offer, interval_energies)
        )
        schedules.append(schedule)
        remaining[first : first + plan.n] -= schedule.interval_energies()
        # Keep the placement bounds sorted by insertion (O(P) per
        # placement) rather than re-sorting the whole history.
        firsts_sorted = np.insert(
            firsts_sorted, np.searchsorted(firsts_sorted, first), first
        )
        last = first + plan.n
        lasts_sorted = np.insert(
            lasts_sorted, np.searchsorted(lasts_sorted, last), last
        )
    return schedules, unplaced


def greedy_schedule(
    offers: list[FlexOffer],
    target: TimeSeries,
    order: str | None = None,
    config: ScheduleConfig | None = None,
) -> ScheduleResult:
    """Greedily schedule offers to soak up the target series.

    Parameters
    ----------
    offers:
        Flex-offers (individual or aggregated).  Offers whose feasible
        window does not intersect the target axis are returned unplaced.
    target:
        The series to track (e.g. RES surplus), energy per interval.
    order:
        ``"least-flexible-first"`` (default, the paper's heuristic),
        ``"largest-first"`` (by expected energy) or ``"as-given"``.
        Overrides ``config.order`` when given.
    config:
        Engine/order selection; defaults to the vectorized engine.
    """
    config = config if config is not None else ScheduleConfig()
    if order is not None:
        config = replace(config, order=order)
    axis = target.axis
    if config.order == "least-flexible-first":
        queue = sorted(offers, key=lambda o: (o.time_flexibility, -o.profile_energy_max))
    elif config.order == "largest-first":
        queue = sorted(offers, key=lambda o: -o.profile_energy_max)
    else:
        queue = list(offers)

    remaining = target.values.copy()
    if config.engine == "incremental":
        schedules, unplaced = _greedy_incremental(queue, axis, remaining)
        return ScheduleResult(
            schedules=schedules,
            demand=schedules_to_series(schedules, axis),
            target=target,
            unplaced=unplaced,
        )
    vectorized = config.engine == "vectorized"
    if vectorized:
        # Hoist every offer's bounds/starts once; offers sharing a profile
        # length share a single window view over the residual.
        plans = [_build_plan(offer, axis) for offer in queue]
        views: dict[int, np.ndarray] = {
            plan.n: sliding_window_view(remaining, plan.n)
            for plan in plans
            if plan.n <= remaining.size
        }
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for position, offer in enumerate(queue):
        if vectorized:
            plan = plans[position]
            placement = (
                _best_start_batched(plan, views[plan.n])
                if plan.n in views
                else None
            )
        else:
            placement = _best_start(offer, remaining, axis)
        if placement is None:
            unplaced.append(offer)
            continue
        start, interval_energies = placement
        slice_energies = _intervals_to_slices(offer, interval_energies)
        schedule = ScheduledFlexOffer(offer, start, slice_energies)
        schedules.append(schedule)
        first = axis.index_of(start)
        remaining[first : first + len(interval_energies)] -= schedule.interval_energies()

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def naive_schedule(offers: list[FlexOffer], target: TimeSeries) -> ScheduleResult:
    """The no-scheduling reference: every offer runs at its earliest start.

    Slice energies sit at the profile midpoint — this is (approximately)
    where and how the demand occurred historically, so comparing a greedy
    schedule's cost against this one measures the value of exploiting the
    offers' flexibility, which is the MIRABEL question.
    """
    axis = target.axis
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for offer in offers:
        start = offer.earliest_start
        n = offer.profile_intervals
        if not axis.contains(start) or axis.index_of(start) + n > axis.length:
            unplaced.append(offer)
            continue
        energies = tuple(sl.midpoint for sl in offer.slices)
        schedules.append(ScheduledFlexOffer(offer, start, energies))
    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def _best_start(
    offer: FlexOffer, remaining: np.ndarray, axis
) -> tuple[datetime, np.ndarray] | None:
    """The feasible start with the highest placement gain, or ``None``.

    The ``engine="reference"`` placement search: one Python-level pass over
    every feasible start, water-filling and scoring each window separately.
    """
    expansion = offer.slice_expansion()
    lows = np.array([lo for lo, _ in expansion])
    highs = np.array([hi for _, hi in expansion])
    n = len(expansion)
    best: tuple[float, datetime, np.ndarray] | None = None
    for start in offer.feasible_starts():
        if not axis.contains(start):
            continue
        first = axis.index_of(start)
        if first + n > axis.length:
            continue
        window = remaining[first : first + n]
        energies = _water_fill(window, lows, highs)
        gain = _placement_gain(window, energies)
        if best is None or gain > best[0]:
            best = (gain, start, energies)
    if best is None:
        return None
    return best[1], best[2]


def _intervals_to_slices(offer: FlexOffer, interval_energies: np.ndarray) -> tuple[float, ...]:
    """Collapse per-interval energies back to per-slice energies."""
    out = []
    cursor = 0
    for sl in offer.slices:
        out.append(float(interval_energies[cursor : cursor + sl.duration].sum()))
        cursor += sl.duration
    return tuple(out)

"""Greedy flex-offer scheduling against a target series (paper [5]).

Tušar et al., "Using aggregation to improve the scheduling of flexible
energy offers" (BIOMA 2012) schedule aggregated flex-offers so flexible
demand soaks up surplus RES production.  This module implements the greedy
core: offers are placed one by one (least-flexible first, so constrained
offers grab their slots before flexible ones fill the gaps); each offer
tries every feasible grid start, its slice energies water-fill the remaining
target, and the start with the largest squared-imbalance reduction wins.

Two engines implement the same greedy semantics, mirroring the matching
layer's :class:`~repro.disaggregation.matching.MatchingConfig` pattern:

* ``"vectorized"`` (default) — the market-scale hot path.  Each offer's
  per-interval bounds are hoisted to arrays once, all feasible starts are
  evaluated in one ``sliding_window_view`` gather + water-fill + gain pass,
  and offers sharing a profile length share one window view over the
  residual (the view is a stride trick, so placements flow through it
  without rebuilding).
* ``"reference"`` — the original per-start Python loop, kept both as the
  behavioural reference and as the baseline the schedule benchmark
  measures speedups against.

Both engines are deterministic and resolve gain ties toward the earliest
feasible start; they may differ in float round-off on the gain reductions
and can therefore flip near-tie placements, but agree on every placement
and on the final cost within ``rtol=1e-9`` on realistic targets (asserted
by ``benchmarks/bench_schedule.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

_ENGINES = ("vectorized", "reference")

_ORDERS = ("least-flexible-first", "largest-first", "as-given")


@dataclass(frozen=True, slots=True)
class ScheduleConfig:
    """Knobs of the greedy scheduler (and the pipeline's schedule stage).

    ``order`` is the placement order heuristic (the paper's default places
    the least flexible offers first).  ``engine`` selects the
    implementation: the vectorized market-scale engine or the original
    per-start reference.  ``improve_iterations``/``improve_seed`` configure
    the optional stochastic hill-climbing pass the fleet pipeline runs
    after the greedy placement (0 disables it).
    """

    order: str = "least-flexible-first"
    engine: str = "vectorized"
    improve_iterations: int = 0
    improve_seed: int = 0

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise SchedulingError(f"unknown order {self.order!r}")
        if self.engine not in _ENGINES:
            raise SchedulingError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.improve_iterations < 0:
            raise SchedulingError("improve_iterations must be >= 0")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a scheduling run."""

    schedules: list[ScheduledFlexOffer]
    demand: TimeSeries
    target: TimeSeries
    unplaced: list[FlexOffer] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Final squared imbalance against the target."""
        diff = self.demand.values - self.target.values
        return float(np.dot(diff, diff))

    @property
    def baseline_cost(self) -> float:
        """Squared imbalance of scheduling nothing at all."""
        return float(np.dot(self.target.values, self.target.values))

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs scheduling nothing (0..1)."""
        base = self.baseline_cost
        return (base - self.cost) / base if base > 0 else 0.0

    @property
    def scheduled_energy(self) -> float:
        """Total energy placed by the schedule (kWh)."""
        return float(sum(s.total_energy for s in self.schedules))

    def summary(self) -> dict[str, float]:
        """Scalar overview of the run (report/benchmark rows)."""
        return {
            "schedule_placed": float(len(self.schedules)),
            "schedule_unplaced": float(len(self.unplaced)),
            "schedule_cost": self.cost,
            "schedule_improvement": self.improvement,
            "schedule_energy_kwh": self.scheduled_energy,
        }


def _water_fill(remaining: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-interval energies tracking the remaining target within bounds."""
    return np.clip(remaining, lows, highs)


def _placement_gain(remaining: np.ndarray, energies: np.ndarray) -> float:
    """Reduction in squared imbalance from consuming ``energies`` here."""
    before = np.dot(remaining, remaining)
    diff = remaining - energies
    after = np.dot(diff, diff)
    return float(before - after)


def start_grid(
    offer: FlexOffer, axis: TimeAxis, require_fit: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """The offer's feasible-start grid as ``(steps, first_indices)`` arrays.

    Exactly :meth:`FlexOffer.feasible_starts` filtered to starts on the
    axis — computed arithmetically (integer microseconds) instead of a
    Python datetime loop, with identical floor semantics to
    :meth:`TimeAxis.index_of`.  ``steps[i]`` counts resolution steps from
    ``earliest_start`` (so the start datetime is ``earliest_start +
    steps[i] * resolution``); ``first_indices[i]`` is the axis index of the
    interval containing that start.  ``require_fit`` additionally drops
    starts whose profile would overrun the axis end.
    """
    one_us = timedelta(microseconds=1)
    res_us = offer.resolution // one_us
    axis_us = axis.resolution // one_us
    off0_us = (offer.earliest_start - axis.start) // one_us
    count = (offer.latest_start - offer.earliest_start) // offer.resolution + 1
    steps = np.arange(count, dtype=np.int64)
    off_us = off0_us + steps * res_us
    total_us = axis_us * axis.length
    first_indices = off_us // axis_us
    valid = (off_us >= 0) & (off_us < total_us)
    if require_fit:
        n = offer.profile_intervals
        valid &= first_indices + n <= axis.length
    return steps[valid], first_indices[valid].astype(np.intp)


@dataclass(frozen=True)
class _PlacementPlan:
    """One offer's placement search space, hoisted to arrays once.

    ``steps``/``start_indices`` hold every feasible start that lies on the
    axis with room for the full profile (see :func:`start_grid`);
    ``lows``/``highs`` are the per-interval water-fill bounds
    (:meth:`FlexOffer.slice_expansion` as vectors).  Building the plan is
    the only per-offer Python-level work the vectorized engine performs.
    """

    offer: FlexOffer
    n: int
    lows: np.ndarray
    highs: np.ndarray
    steps: np.ndarray
    start_indices: np.ndarray


def _build_plan(offer: FlexOffer, axis: TimeAxis) -> _PlacementPlan:
    lows, highs = offer.slice_expansion_arrays()
    steps, indices = start_grid(offer, axis, require_fit=True)
    return _PlacementPlan(
        offer=offer,
        n=lows.size,
        lows=lows,
        highs=highs,
        steps=steps,
        start_indices=indices,
    )


def _best_start_batched(
    plan: _PlacementPlan, windows_view: np.ndarray
) -> tuple[datetime, np.ndarray] | None:
    """All feasible starts of one offer in a single numpy pass.

    ``windows_view`` is ``sliding_window_view(remaining, plan.n)`` — a
    stride trick over the live residual, shared by every offer of the same
    profile length.  The gather copies the current residual values, so
    earlier placements are always reflected.
    """
    if plan.start_indices.size == 0:
        return None
    windows = windows_view[plan.start_indices]
    energies = np.clip(windows, plan.lows, plan.highs)
    diff = windows - energies
    gains = np.einsum("ij,ij->i", windows, windows) - np.einsum(
        "ij,ij->i", diff, diff
    )
    # Near-tie resolution: exactly-tied gains (flat target regions produce
    # them routinely) and ulp-level einsum-vs-dot differences must resolve
    # exactly like the reference engine's strict-greater scan.  Candidates
    # within round-off of the max (almost always just one) are re-scored
    # with the reference arithmetic, so both engines select the same start.
    best_gain = float(gains.max())
    tolerance = 1e-12 * max(1.0, abs(best_gain))
    candidates = np.flatnonzero(gains >= best_gain - tolerance)
    if candidates.size == 1:
        best = int(candidates[0])
    else:
        best = int(candidates[0])
        best_ref = -np.inf
        for candidate in candidates:
            window = windows[candidate]
            gain = _placement_gain(
                window, _water_fill(window, plan.lows, plan.highs)
            )
            if gain > best_ref:
                best, best_ref = int(candidate), gain
    start = plan.offer.earliest_start + plan.offer.resolution * int(plan.steps[best])
    return start, energies[best]


def greedy_schedule(
    offers: list[FlexOffer],
    target: TimeSeries,
    order: str | None = None,
    config: ScheduleConfig | None = None,
) -> ScheduleResult:
    """Greedily schedule offers to soak up the target series.

    Parameters
    ----------
    offers:
        Flex-offers (individual or aggregated).  Offers whose feasible
        window does not intersect the target axis are returned unplaced.
    target:
        The series to track (e.g. RES surplus), energy per interval.
    order:
        ``"least-flexible-first"`` (default, the paper's heuristic),
        ``"largest-first"`` (by expected energy) or ``"as-given"``.
        Overrides ``config.order`` when given.
    config:
        Engine/order selection; defaults to the vectorized engine.
    """
    config = config if config is not None else ScheduleConfig()
    if order is not None:
        config = replace(config, order=order)
    axis = target.axis
    if config.order == "least-flexible-first":
        queue = sorted(offers, key=lambda o: (o.time_flexibility, -o.profile_energy_max))
    elif config.order == "largest-first":
        queue = sorted(offers, key=lambda o: -o.profile_energy_max)
    else:
        queue = list(offers)

    remaining = target.values.copy()
    vectorized = config.engine == "vectorized"
    if vectorized:
        # Hoist every offer's bounds/starts once; offers sharing a profile
        # length share a single window view over the residual.
        plans = [_build_plan(offer, axis) for offer in queue]
        views: dict[int, np.ndarray] = {
            plan.n: sliding_window_view(remaining, plan.n)
            for plan in plans
            if plan.n <= remaining.size
        }
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for position, offer in enumerate(queue):
        if vectorized:
            plan = plans[position]
            placement = (
                _best_start_batched(plan, views[plan.n])
                if plan.n in views
                else None
            )
        else:
            placement = _best_start(offer, remaining, axis)
        if placement is None:
            unplaced.append(offer)
            continue
        start, interval_energies = placement
        slice_energies = _intervals_to_slices(offer, interval_energies)
        schedule = ScheduledFlexOffer(offer, start, slice_energies)
        schedules.append(schedule)
        first = axis.index_of(start)
        remaining[first : first + len(interval_energies)] -= schedule.interval_energies()

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def naive_schedule(offers: list[FlexOffer], target: TimeSeries) -> ScheduleResult:
    """The no-scheduling reference: every offer runs at its earliest start.

    Slice energies sit at the profile midpoint — this is (approximately)
    where and how the demand occurred historically, so comparing a greedy
    schedule's cost against this one measures the value of exploiting the
    offers' flexibility, which is the MIRABEL question.
    """
    axis = target.axis
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for offer in offers:
        start = offer.earliest_start
        n = offer.profile_intervals
        if not axis.contains(start) or axis.index_of(start) + n > axis.length:
            unplaced.append(offer)
            continue
        energies = tuple(sl.midpoint for sl in offer.slices)
        schedules.append(ScheduledFlexOffer(offer, start, energies))
    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def _best_start(
    offer: FlexOffer, remaining: np.ndarray, axis
) -> tuple[datetime, np.ndarray] | None:
    """The feasible start with the highest placement gain, or ``None``.

    The ``engine="reference"`` placement search: one Python-level pass over
    every feasible start, water-filling and scoring each window separately.
    """
    expansion = offer.slice_expansion()
    lows = np.array([lo for lo, _ in expansion])
    highs = np.array([hi for _, hi in expansion])
    n = len(expansion)
    best: tuple[float, datetime, np.ndarray] | None = None
    for start in offer.feasible_starts():
        if not axis.contains(start):
            continue
        first = axis.index_of(start)
        if first + n > axis.length:
            continue
        window = remaining[first : first + n]
        energies = _water_fill(window, lows, highs)
        gain = _placement_gain(window, energies)
        if best is None or gain > best[0]:
            best = (gain, start, energies)
    if best is None:
        return None
    return best[1], best[2]


def _intervals_to_slices(offer: FlexOffer, interval_energies: np.ndarray) -> tuple[float, ...]:
    """Collapse per-interval energies back to per-slice energies."""
    out = []
    cursor = 0
    for sl in offer.slices:
        out.append(float(interval_energies[cursor : cursor + sl.duration].sum()))
        cursor += sl.duration
    return tuple(out)

"""Greedy flex-offer scheduling against a target series (paper [5]).

Tušar et al., "Using aggregation to improve the scheduling of flexible
energy offers" (BIOMA 2012) schedule aggregated flex-offers so flexible
demand soaks up surplus RES production.  This module implements the greedy
core: offers are placed one by one (least-flexible first, so constrained
offers grab their slots before flexible ones fill the gaps); each offer
tries every feasible grid start, its slice energies water-fill the remaining
target, and the start with the largest squared-imbalance reduction wins.

Three engines implement the same greedy semantics, mirroring the matching
layer's :class:`~repro.disaggregation.matching.MatchingConfig` pattern:

* ``"vectorized"`` (default) — the market-scale hot path.  Each offer's
  per-interval bounds are hoisted to arrays once, all feasible starts are
  evaluated in one ``sliding_window_view`` gather + water-fill + gain pass,
  and offers sharing a profile length share one window view over the
  residual (the view is a stride trick, so placements flow through it
  without rebuilding).
* ``"incremental"`` — batches offers *across* placements: offers are
  scored in lookahead blocks (gains + water-filled energies cached in one
  batched pass per profile-length group, against the residual at the
  block boundary), and within a block a placement only dirties the
  candidate starts whose windows it overlaps; at each offer's turn, only
  its dirtied starts are re-scored (with the same arithmetic the
  vectorized engine uses on the same residual values, so the two engines'
  gain arrays — and therefore their placements — are **bitwise
  identical**; asserted by ``benchmarks/bench_zones.py`` and the
  conformance matrix).  Wins on sparse workloads, where blocks amortize
  the per-offer scoring calls and placements rarely dirty anything.
* ``"reference"`` — the original per-start Python loop, kept both as the
  behavioural reference and as the baseline the schedule benchmarks
  measure speedups against.
* ``"auto"`` — not a fourth implementation: resolves to vectorized or
  incremental from the workload's placement density before any scoring
  happens (see :mod:`repro.scheduling.autotune`).  Because that pair is
  bitwise identical, the autotuner can only change wall-clock, never
  placements.

All engines are deterministic and resolve gain ties toward the earliest
feasible start; the vectorized/incremental pair may differ from the
reference in float round-off on the gain reductions and can therefore flip
near-tie placements, but all agree on every placement and on the final
cost within ``rtol=1e-9`` on realistic targets (asserted by
``benchmarks/bench_schedule.py`` and ``benchmarks/bench_zones.py``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

_ENGINES = ("vectorized", "incremental", "reference", "auto")

_ORDERS = ("least-flexible-first", "largest-first", "as-given")


@dataclass(frozen=True, slots=True)
class ScheduleConfig:
    """Knobs of the greedy scheduler (and the pipeline's schedule stage).

    ``order`` is the placement order heuristic (the paper's default places
    the least flexible offers first).  ``engine`` selects the
    implementation: the vectorized market-scale engine or the original
    per-start reference.  ``improve_iterations``/``improve_seed`` configure
    the optional stochastic hill-climbing pass the fleet pipeline runs
    after the greedy placement (0 disables it).  ``market`` (a
    :class:`repro.market.model.MarketConfig`) enables merit-order clearing
    before placement on zoned targets; it is ignored by the single-market
    greedy path.  ``robust`` (a
    :class:`repro.scheduling.robust.RobustConfig`) scores placements
    against a quantile scenario fan instead of the point target alone —
    energies stay the point water-fill, only the winning start can change.
    """

    order: str = "least-flexible-first"
    engine: str = "vectorized"  # "vectorized" | "incremental" | "reference" | "auto"
    improve_iterations: int = 0
    improve_seed: int = 0
    market: object | None = None
    robust: object | None = None

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise SchedulingError(f"unknown order {self.order!r}")
        if self.engine not in _ENGINES:
            raise SchedulingError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.improve_iterations < 0:
            raise SchedulingError("improve_iterations must be >= 0")
        if self.market is not None:
            # Imported lazily: repro.market sits above the scheduling layer.
            from repro.market.model import MarketConfig

            if not isinstance(self.market, MarketConfig):
                raise SchedulingError(
                    f"market must be a MarketConfig or None, got {self.market!r}"
                )
        if self.robust is not None:
            from repro.scheduling.robust import RobustConfig

            if not isinstance(self.robust, RobustConfig):
                raise SchedulingError(
                    f"robust must be a RobustConfig or None, got {self.robust!r}"
                )
            if self.engine == "incremental":
                raise SchedulingError(
                    "robust mode supports the vectorized and reference engines "
                    '(and "auto", which resolves to vectorized); the incremental '
                    "engine's gain cache is point-target only"
                )


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a scheduling run."""

    schedules: list[ScheduledFlexOffer]
    demand: TimeSeries
    target: TimeSeries
    unplaced: list[FlexOffer] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Final squared imbalance against the target."""
        diff = self.demand.values - self.target.values
        return float(np.dot(diff, diff))

    @property
    def baseline_cost(self) -> float:
        """Squared imbalance of scheduling nothing at all."""
        return float(np.dot(self.target.values, self.target.values))

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs scheduling nothing (0..1)."""
        base = self.baseline_cost
        return (base - self.cost) / base if base > 0 else 0.0

    @property
    def scheduled_energy(self) -> float:
        """Total energy placed by the schedule (kWh)."""
        return float(sum(s.total_energy for s in self.schedules))

    def summary(self) -> dict[str, float]:
        """Scalar overview of the run (report/benchmark rows)."""
        return {
            "schedule_placed": float(len(self.schedules)),
            "schedule_unplaced": float(len(self.unplaced)),
            "schedule_cost": self.cost,
            "schedule_improvement": self.improvement,
            "schedule_energy_kwh": self.scheduled_energy,
        }


def _water_fill(remaining: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-interval energies tracking the remaining target within bounds."""
    return np.clip(remaining, lows, highs)


def _placement_gain(remaining: np.ndarray, energies: np.ndarray) -> float:
    """Reduction in squared imbalance from consuming ``energies`` here."""
    before = np.dot(remaining, remaining)
    diff = remaining - energies
    after = np.dot(diff, diff)
    return float(before - after)


def start_grid(
    offer: FlexOffer,
    axis: TimeAxis,
    require_fit: bool = True,
    earliest_allowed: datetime | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The offer's feasible-start grid as ``(steps, first_indices)`` arrays.

    Exactly :meth:`FlexOffer.feasible_starts` filtered to starts on the
    axis — computed arithmetically (integer microseconds) instead of a
    Python datetime loop, with identical floor semantics to
    :meth:`TimeAxis.index_of`.  ``steps[i]`` counts resolution steps from
    ``earliest_start`` (so the start datetime is ``earliest_start +
    steps[i] * resolution``); ``first_indices[i]`` is the axis index of the
    interval containing that start.  ``require_fit`` additionally drops
    starts whose profile would overrun the axis end.  ``earliest_allowed``
    further drops starts before that instant — the rolling-horizon
    session's commit boundary, where the past is no longer schedulable.
    """
    one_us = timedelta(microseconds=1)
    res_us = offer.resolution // one_us
    axis_us = axis.resolution // one_us
    off0_us = (offer.earliest_start - axis.start) // one_us
    count = (offer.latest_start - offer.earliest_start) // offer.resolution + 1
    steps = np.arange(count, dtype=np.int64)
    off_us = off0_us + steps * res_us
    total_us = axis_us * axis.length
    first_indices = off_us // axis_us
    valid = (off_us >= 0) & (off_us < total_us)
    if earliest_allowed is not None:
        valid &= off_us >= (earliest_allowed - axis.start) // one_us
    if require_fit:
        n = offer.profile_intervals
        valid &= first_indices + n <= axis.length
    return steps[valid], first_indices[valid].astype(np.intp)


@dataclass(frozen=True)
class _PlacementPlan:
    """One offer's placement search space, hoisted to arrays once.

    ``steps``/``start_indices`` hold every feasible start that lies on the
    axis with room for the full profile (see :func:`start_grid`);
    ``lows``/``highs`` are the per-interval water-fill bounds
    (:meth:`FlexOffer.slice_expansion` as vectors).  Building the plan is
    the only per-offer Python-level work the vectorized engine performs.
    """

    offer: FlexOffer
    n: int
    lows: np.ndarray
    highs: np.ndarray
    steps: np.ndarray
    start_indices: np.ndarray


def _build_plan(
    offer: FlexOffer,
    axis: TimeAxis,
    earliest_allowed: datetime | None = None,
) -> _PlacementPlan:
    lows, highs = offer.slice_expansion_arrays()
    steps, indices = start_grid(
        offer, axis, require_fit=True, earliest_allowed=earliest_allowed
    )
    return _PlacementPlan(
        offer=offer,
        n=lows.size,
        lows=lows,
        highs=highs,
        steps=steps,
        start_indices=indices,
    )


def _pick_best(
    gains: np.ndarray, windows_of, lows: np.ndarray, highs: np.ndarray
) -> int:
    """The row of ``gains`` the greedy step selects, ties resolved exactly.

    Near-tie resolution: exactly-tied gains (flat target regions produce
    them routinely) and ulp-level einsum-vs-dot differences must resolve
    exactly like the reference engine's strict-greater scan.  Candidates
    within round-off of the max (almost always just one) are re-scored
    with the reference arithmetic, so every engine selects the same start.
    ``windows_of(rows)`` gathers the candidates' current residual windows.
    """
    best_gain = float(gains.max())
    tolerance = 1e-12 * max(1.0, abs(best_gain))
    candidates = np.flatnonzero(gains >= best_gain - tolerance)
    if candidates.size == 1:
        return int(candidates[0])
    best = int(candidates[0])
    best_ref = -np.inf
    windows = windows_of(candidates)
    for candidate, window in zip(candidates, windows):
        gain = _placement_gain(window, _water_fill(window, lows, highs))
        if gain > best_ref:
            best, best_ref = int(candidate), gain
    return best


def _best_start_batched(
    plan: _PlacementPlan, windows_view: np.ndarray
) -> tuple[datetime, np.ndarray] | None:
    """All feasible starts of one offer in a single numpy pass.

    ``windows_view`` is ``sliding_window_view(remaining, plan.n)`` — a
    stride trick over the live residual, shared by every offer of the same
    profile length.  The gather copies the current residual values, so
    earlier placements are always reflected.
    """
    if plan.start_indices.size == 0:
        return None
    windows = windows_view[plan.start_indices]
    energies, gains = _score_windows(windows, plan.lows, plan.highs)
    best = _pick_best(gains, lambda rows: windows[rows], plan.lows, plan.highs)
    start = plan.offer.earliest_start + plan.offer.resolution * int(plan.steps[best])
    return start, energies[best]


def _score_windows(
    windows: np.ndarray, lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Water-fill + gain for a batch of residual windows.

    The single home of the scoring arithmetic (elementwise clip, one
    einsum reduction per row): the vectorized and incremental engines both
    call it, so their gains are bitwise equal by construction — the
    identity gates in ``bench_zones.py`` and the conformance matrix rest
    on this arithmetic existing exactly once.  Returns ``(energies,
    gains)``.
    """
    energies = np.clip(windows, lows, highs)
    diff = windows - energies
    gains = np.einsum("ij,ij->i", windows, windows) - np.einsum(
        "ij,ij->i", diff, diff
    )
    return energies, gains


# --------------------------------------------------------------------- #
# Robust scoring (ScheduleConfig.robust): the same greedy loop, but each
# candidate start is scored against every scenario of a quantile fan and
# the per-scenario gains collapse through a risk measure.  Energies stay
# the point-target water-fill, so only the winning start can differ from
# point scheduling — wire format and validation are untouched.
# --------------------------------------------------------------------- #


def _robust_gain_one(
    point_window: np.ndarray,
    scenario_windows: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    weights: np.ndarray,
    robust,
) -> tuple[float, np.ndarray]:
    """One candidate's risk-aggregated gain, in reference arithmetic.

    The robust counterpart of :func:`_water_fill` + :func:`_placement_gain`
    + :func:`repro.scheduling.robust.risk_of`: the reference engine scores
    every start through it and the vectorized engine re-scores near-tie
    candidates through it, so both engines resolve every selection with
    bitwise-identical numbers.  Returns ``(risk score, energies)``.
    """
    from repro.scheduling.robust import risk_of

    energies = _water_fill(point_window, lows, highs)
    gains = np.array(
        [_placement_gain(window, energies) for window in scenario_windows]
    )
    return risk_of(gains, weights, robust.risk, robust.alpha), energies


def _pick_best_robust(
    scores: np.ndarray,
    windows_of,
    lows: np.ndarray,
    highs: np.ndarray,
    weights: np.ndarray,
    robust,
) -> int:
    """Robust twin of :func:`_pick_best`: near-ties re-scored exactly.

    ``windows_of(rows)`` gathers ``(point windows, scenario windows)`` for
    the candidate rows; everything within round-off of the max is re-run
    through :func:`_robust_gain_one` with a strict-greater scan, matching
    the reference engine's selection bit for bit.
    """
    best_score = float(scores.max())
    tolerance = 1e-12 * max(1.0, abs(best_score))
    candidates = np.flatnonzero(scores >= best_score - tolerance)
    if candidates.size == 1:
        return int(candidates[0])
    point_windows, scenario_windows = windows_of(candidates)
    best = int(candidates[0])
    best_ref = -np.inf
    for row, candidate in enumerate(candidates):
        score, _ = _robust_gain_one(
            point_windows[row],
            scenario_windows[:, row, :],
            lows,
            highs,
            weights,
            robust,
        )
        if score > best_ref:
            best, best_ref = int(candidate), score
    return best


def _best_start_batched_robust(
    plan: _PlacementPlan,
    windows_view: np.ndarray,
    scenario_view: np.ndarray,
    weights: np.ndarray,
    robust,
) -> tuple[datetime, np.ndarray] | None:
    """All feasible starts of one offer against the whole scenario fan.

    ``windows_view`` is the point residual's ``sliding_window_view`` (the
    energies come from it, exactly as in :func:`_best_start_batched`);
    ``scenario_view`` is ``sliding_window_view(scenario_remaining, n,
    axis=1)`` — shape ``(scenarios, starts, n)`` over the live scenario
    residual matrix, so placements flow through both without rebuilding.
    """
    from repro.scheduling.robust import risk_profile

    if plan.start_indices.size == 0:
        return None
    windows = windows_view[plan.start_indices]
    energies = np.clip(windows, plan.lows, plan.highs)
    scenarios = scenario_view[:, plan.start_indices, :]
    diff = scenarios - energies[None, :, :]
    gains = np.einsum("sij,sij->si", scenarios, scenarios) - np.einsum(
        "sij,sij->si", diff, diff
    )
    scores = risk_profile(gains, weights, robust.risk, robust.alpha)
    best = _pick_best_robust(
        scores,
        lambda rows: (windows[rows], scenarios[:, rows, :]),
        plan.lows,
        plan.highs,
        weights,
        robust,
    )
    start = plan.offer.earliest_start + plan.offer.resolution * int(plan.steps[best])
    return start, energies[best]


#: Row budget of one upfront scoring call: small plans coalesce up to this
#: many candidate rows per call, larger plans score alone in slabs of it.
_UPFRONT_CHUNK_ROWS = 4096

#: Offers per incremental scoring block.  The incremental engine scores
#: the next this-many offers' candidates in one batched pass against the
#: *current* residual, so a cached gain can only be dirtied by the (at
#: most) this-many placements of its own block — the rescore fraction is
#: block-local, not run-global — while the batch still amortizes the
#: per-offer call overhead the vectorized engine pays at every turn.
#: 128 is the measured sweet spot on the scale benchmark's workloads:
#: larger blocks amortize little more but dirty noticeably more.
_INCREMENTAL_LOOKAHEAD = 128


def _score_group_upfront(
    plans: list[_PlacementPlan],
    positions: list[int],
    n: int,
    view: np.ndarray,
    caches: list[tuple[np.ndarray, np.ndarray | None] | None],
) -> None:
    """Cache every candidate gain of one profile-length group.

    Small plans coalesce into batched scoring calls — amortizing the
    per-call numpy overhead is exactly what the incremental engine saves
    over the vectorized engine's one-call-per-offer pass — and the batch
    itself is assembled with whole-batch numpy verbs (``concatenate`` the
    candidate indices, ``stack``/``repeat`` the water-fill bounds,
    ``split`` the gains back out as per-plan views), so the per-plan
    Python cost is a few list appends.  Plans bigger than the chunk budget
    score alone, in slabs, with their ``(n,)`` bounds broadcast, so the
    upfront pass never materializes much more than ``chunk × n`` floats
    however many candidates the group holds.  Batch composition cannot
    change a single bit: the scoring arithmetic of :func:`_score_windows`
    is row-independent, and ``np.repeat`` of the stacked bounds feeds each
    row exactly the values its own plan would broadcast.

    ``caches[position]`` receives ``(gains, energies)`` — the plan's gain
    row and water-filled candidate energies, both views into the batch's
    arrays; the per-plan slices are disjoint, so in-place dirty rescores
    through one view never touch another plan's rows.  Keeping the
    energies means a placement reads its interval energies straight out
    of the cache, the way the vectorized engine reads ``energies[best]``
    from its per-turn scoring.  (Plans big enough to score alone in slabs
    skip the energies cache — ``None`` — and water-fill at their turn.)
    """
    pending: list[int] = []
    pending_sizes: list[int] = []
    pending_rows = 0

    def flush() -> None:
        nonlocal pending, pending_sizes, pending_rows
        if not pending:
            return
        indices = np.concatenate(
            [plans[position].start_indices for position in pending]
        )
        lows = np.repeat(
            np.stack([plans[position].lows for position in pending]),
            pending_sizes,
            axis=0,
        )
        highs = np.repeat(
            np.stack([plans[position].highs for position in pending]),
            pending_sizes,
            axis=0,
        )
        energies, gains = _score_windows(view[indices], lows, highs)
        splits = np.cumsum(pending_sizes)[:-1]
        gain_rows = np.split(gains, splits)
        energy_rows = np.split(energies, splits)
        for position, gain_row, energy_row in zip(pending, gain_rows, energy_rows):
            caches[position] = (gain_row, energy_row)
        pending = []
        pending_sizes = []
        pending_rows = 0

    for position in positions:
        plan = plans[position]
        size = plan.start_indices.size
        if size >= _UPFRONT_CHUNK_ROWS:
            gains = np.empty(size)
            for first in range(0, size, _UPFRONT_CHUNK_ROWS):
                stop = min(first + _UPFRONT_CHUNK_ROWS, size)
                _, gains[first:stop] = _score_windows(
                    view[plan.start_indices[first:stop]], plan.lows, plan.highs
                )
            caches[position] = (gains, None)
            continue
        if pending_rows + size > _UPFRONT_CHUNK_ROWS:
            flush()
        pending.append(position)
        pending_sizes.append(size)
        pending_rows += size
    flush()


def _greedy_incremental(
    queue: list[FlexOffer],
    axis: TimeAxis,
    remaining: np.ndarray,
    earliest_allowed: datetime | None = None,
) -> tuple[list[ScheduledFlexOffer], list[FlexOffer]]:
    """The ``engine="incremental"`` placement loop.

    Works through the queue in lookahead blocks of
    :data:`_INCREMENTAL_LOOKAHEAD` offers: each block's candidate starts
    are scored in batched per-profile-length passes against the residual
    *as it stands at the block boundary* — everything placed earlier is
    already baked in — and within the block a candidate is re-scored at
    its offer's turn only if one of the block's own placements overlapped
    its window (ROADMAP: "batch offers across placements").  Clean
    candidates keep their cached gain: their residual window is untouched,
    so the cached value is bitwise equal to what a fresh scoring would
    produce, and the selection (shared :func:`_pick_best` tie resolution
    included) is identical to the vectorized engine's.  Peak cache memory
    is one block's gains, not the whole queue's.
    """
    plans = [_build_plan(offer, axis, earliest_allowed) for offer in queue]
    views: dict[int, np.ndarray] = {
        n: sliding_window_view(remaining, n)
        for n in {plan.n for plan in plans}
        if n <= remaining.size
    }
    total = len(queue)
    caches: list[tuple[np.ndarray, np.ndarray | None] | None] = [None] * total
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for block_first in range(0, total, _INCREMENTAL_LOOKAHEAD):
        block_stop = min(block_first + _INCREMENTAL_LOOKAHEAD, total)
        groups: dict[int, list[int]] = {}
        for position in range(block_first, block_stop):
            plan = plans[position]
            if plan.n in views and plan.start_indices.size:
                groups.setdefault(plan.n, []).append(position)
        for n, positions in groups.items():
            _score_group_upfront(plans, positions, n, views[n], caches)
        # Sorted bounds of this block's placements, reset each block.
        # Python lists + bisect, not numpy: a block holds at most
        # _INCREMENTAL_LOOKAHEAD placements, and at that size C-level
        # bisect/insort cost nanoseconds where each numpy searchsorted
        # call costs microseconds of dispatch — so the clean-turn fast
        # path is two bisects and nothing else.  The numpy arrays are
        # materialized only on the rare turns the scalar stab flags.
        firsts_list: list[int] = []
        lasts_list: list[int] = []
        for position in range(block_first, block_stop):
            offer = queue[position]
            plan = plans[position]
            cache = caches[position]
            if cache is None:
                unplaced.append(offer)
                continue
            caches[position] = None
            gains, energies = cache
            view = views[plan.n]
            indices = plan.start_indices
            if firsts_list:
                # Placement [a, b) intersects window [s, s+n) iff a < s+n
                # and b > s.  Stab the offer's whole contiguous candidate
                # range first: in sparse markets none of the block's
                # placements land anywhere near most offers, and their
                # turns then cost no per-candidate work at all.
                touching = bisect_left(
                    firsts_list, int(indices[-1]) + plan.n
                ) - bisect_right(lasts_list, int(indices[0]))
                if touching:
                    firsts_sorted = np.array(firsts_list, dtype=np.int64)
                    lasts_sorted = np.array(lasts_list, dtype=np.int64)
                    current = firsts_sorted.searchsorted(
                        indices + plan.n, side="left"
                    ) - lasts_sorted.searchsorted(indices, side="right")
                    dirty = np.flatnonzero(current)
                    if dirty.size:
                        fresh_energies, gains[dirty] = _score_windows(
                            view[indices[dirty]], plan.lows, plan.highs
                        )
                        if energies is not None:
                            energies[dirty] = fresh_energies
            best = _pick_best(
                gains, lambda rows: view[indices[rows]], plan.lows, plan.highs
            )
            start = offer.earliest_start + offer.resolution * int(plan.steps[best])
            # start_grid guarantees indices[best] == axis.index_of(start).
            first = int(indices[best])
            if energies is not None:
                interval_energies = energies[best]
            else:
                interval_energies = np.clip(view[first], plan.lows, plan.highs)
            schedule = ScheduledFlexOffer(
                offer, start, _intervals_to_slices(offer, interval_energies)
            )
            schedules.append(schedule)
            remaining[first : first + plan.n] -= schedule.interval_energies()
            insort(firsts_list, first)
            insort(lasts_list, first + plan.n)
    return schedules, unplaced


def greedy_schedule(
    offers: list[FlexOffer],
    target: TimeSeries,
    order: str | None = None,
    config: ScheduleConfig | None = None,
    earliest_allowed: datetime | None = None,
    scenarios: list[TimeSeries] | None = None,
) -> ScheduleResult:
    """Greedily schedule offers to soak up the target series.

    Parameters
    ----------
    offers:
        Flex-offers (individual or aggregated).  Offers whose feasible
        window does not intersect the target axis are returned unplaced.
    target:
        The series to track (e.g. RES surplus), energy per interval.
    order:
        ``"least-flexible-first"`` (default, the paper's heuristic),
        ``"largest-first"`` (by expected energy) or ``"as-given"``.
        Overrides ``config.order`` when given.
    config:
        Engine/order selection; defaults to the vectorized engine.
    earliest_allowed:
        When set, no placement may start before this instant (every
        engine applies the same start-grid filter).  The rolling-horizon
        session passes its commit boundary here so re-planned offers
        cannot reach back into the frozen window.  ``None`` — the default
        — is bitwise-identical to the pre-session behaviour.
    scenarios:
        Robust mode's explicit scenario fan — one target series per
        ``config.robust.quantiles`` level, all on the target axis (e.g. a
        rescaled quantile-forecast fan).  Requires ``config.robust``;
        when robust mode is on and ``scenarios`` is ``None``, a
        deterministic synthetic fan is derived from the point target
        (:func:`repro.scheduling.robust.synthetic_fan`).
    """
    config = config if config is not None else ScheduleConfig()
    if order is not None:
        config = replace(config, order=order)
    robust = config.robust
    if scenarios is not None and robust is None:
        raise SchedulingError(
            "scenarios were supplied but config.robust is not set"
        )
    axis = target.axis
    if config.order == "least-flexible-first":
        queue = sorted(offers, key=lambda o: (o.time_flexibility, -o.profile_energy_max))
    elif config.order == "largest-first":
        queue = sorted(offers, key=lambda o: -o.profile_energy_max)
    else:
        queue = list(offers)

    if config.engine == "auto":
        # Purely a performance decision: vectorized and incremental place
        # bitwise identically, so the autotuner can never change results.
        # Robust mode skips the tuner — its incremental engine does not
        # exist, so vectorized is the only batched option.
        from repro.scheduling.autotune import choose_engine

        engine = "vectorized" if robust is not None else choose_engine(queue, axis)
        config = replace(config, engine=engine)
    remaining = target.values.copy()
    if robust is not None:
        from repro.scheduling.robust import resolve_fan

        scenario_remaining, weights = resolve_fan(target, robust, scenarios)
    if config.engine == "incremental":
        schedules, unplaced = _greedy_incremental(
            queue, axis, remaining, earliest_allowed
        )
        return ScheduleResult(
            schedules=schedules,
            demand=schedules_to_series(schedules, axis),
            target=target,
            unplaced=unplaced,
        )
    vectorized = config.engine == "vectorized"
    if vectorized:
        # Hoist every offer's bounds/starts once; offers sharing a profile
        # length share a single window view over the residual.
        plans = [_build_plan(offer, axis, earliest_allowed) for offer in queue]
        views: dict[int, np.ndarray] = {
            n: sliding_window_view(remaining, n)
            for n in {plan.n for plan in plans}
            if n <= remaining.size
        }
        if robust is not None:
            scenario_views: dict[int, np.ndarray] = {
                n: sliding_window_view(scenario_remaining, n, axis=1)
                for n in views
            }
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for position, offer in enumerate(queue):
        if vectorized:
            plan = plans[position]
            if plan.n not in views:
                placement = None
            elif robust is not None:
                placement = _best_start_batched_robust(
                    plan, views[plan.n], scenario_views[plan.n], weights, robust
                )
            else:
                placement = _best_start_batched(plan, views[plan.n])
        elif robust is not None:
            placement = _best_start_robust(
                offer, remaining, scenario_remaining, weights, robust, axis,
                earliest_allowed,
            )
        else:
            placement = _best_start(offer, remaining, axis, earliest_allowed)
        if placement is None:
            unplaced.append(offer)
            continue
        start, interval_energies = placement
        slice_energies = _intervals_to_slices(offer, interval_energies)
        schedule = ScheduledFlexOffer(offer, start, slice_energies)
        schedules.append(schedule)
        first = axis.index_of(start)
        placed = schedule.interval_energies()
        remaining[first : first + len(interval_energies)] -= placed
        if robust is not None:
            scenario_remaining[:, first : first + len(interval_energies)] -= placed

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def naive_schedule(offers: list[FlexOffer], target: TimeSeries) -> ScheduleResult:
    """The no-scheduling reference: every offer runs at its earliest start.

    Slice energies sit at the profile midpoint — this is (approximately)
    where and how the demand occurred historically, so comparing a greedy
    schedule's cost against this one measures the value of exploiting the
    offers' flexibility, which is the MIRABEL question.
    """
    axis = target.axis
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for offer in offers:
        start = offer.earliest_start
        n = offer.profile_intervals
        if not axis.contains(start) or axis.index_of(start) + n > axis.length:
            unplaced.append(offer)
            continue
        energies = tuple(sl.midpoint for sl in offer.slices)
        schedules.append(ScheduledFlexOffer(offer, start, energies))
    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def _best_start(
    offer: FlexOffer,
    remaining: np.ndarray,
    axis,
    earliest_allowed: datetime | None = None,
) -> tuple[datetime, np.ndarray] | None:
    """The feasible start with the highest placement gain, or ``None``.

    The ``engine="reference"`` placement search: one Python-level pass over
    every feasible start, water-filling and scoring each window separately.
    """
    expansion = offer.slice_expansion()
    lows = np.array([lo for lo, _ in expansion])
    highs = np.array([hi for _, hi in expansion])
    n = len(expansion)
    best: tuple[float, datetime, np.ndarray] | None = None
    for start in offer.feasible_starts():
        if earliest_allowed is not None and start < earliest_allowed:
            continue
        if not axis.contains(start):
            continue
        first = axis.index_of(start)
        if first + n > axis.length:
            continue
        window = remaining[first : first + n]
        energies = _water_fill(window, lows, highs)
        gain = _placement_gain(window, energies)
        if best is None or gain > best[0]:
            best = (gain, start, energies)
    if best is None:
        return None
    return best[1], best[2]


def _best_start_robust(
    offer: FlexOffer,
    remaining: np.ndarray,
    scenario_remaining: np.ndarray,
    weights: np.ndarray,
    robust,
    axis,
    earliest_allowed: datetime | None = None,
) -> tuple[datetime, np.ndarray] | None:
    """The ``engine="reference"`` robust placement search.

    One Python-level pass over every feasible start, scoring each window
    through :func:`_robust_gain_one` — the arithmetic the vectorized
    robust engine's near-tie rescoring shares.
    """
    expansion = offer.slice_expansion()
    lows = np.array([lo for lo, _ in expansion])
    highs = np.array([hi for _, hi in expansion])
    n = len(expansion)
    best: tuple[float, datetime, np.ndarray] | None = None
    for start in offer.feasible_starts():
        if earliest_allowed is not None and start < earliest_allowed:
            continue
        if not axis.contains(start):
            continue
        first = axis.index_of(start)
        if first + n > axis.length:
            continue
        window = remaining[first : first + n]
        score, energies = _robust_gain_one(
            window, scenario_remaining[:, first : first + n], lows, highs,
            weights, robust,
        )
        if best is None or score > best[0]:
            best = (score, start, energies)
    if best is None:
        return None
    return best[1], best[2]


def _intervals_to_slices(
    offer: FlexOffer, interval_energies: np.ndarray
) -> tuple[float, ...]:
    """Collapse per-interval energies back to per-slice energies."""
    out = []
    cursor = 0
    for sl in offer.slices:
        out.append(float(interval_energies[cursor : cursor + sl.duration].sum()))
        cursor += sl.duration
    return tuple(out)

"""Greedy flex-offer scheduling against a target series (paper [5]).

Tušar et al., "Using aggregation to improve the scheduling of flexible
energy offers" (BIOMA 2012) schedule aggregated flex-offers so flexible
demand soaks up surplus RES production.  This module implements the greedy
core: offers are placed one by one (least-flexible first, so constrained
offers grab their slots before flexible ones fill the gaps); each offer
tries every feasible grid start, its slice energies water-fill the remaining
target, and the start with the largest squared-imbalance reduction wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

import numpy as np

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a scheduling run."""

    schedules: list[ScheduledFlexOffer]
    demand: TimeSeries
    target: TimeSeries
    unplaced: list[FlexOffer] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Final squared imbalance against the target."""
        diff = self.demand.values - self.target.values
        return float(np.dot(diff, diff))

    @property
    def baseline_cost(self) -> float:
        """Squared imbalance of scheduling nothing at all."""
        return float(np.dot(self.target.values, self.target.values))

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs scheduling nothing (0..1)."""
        base = self.baseline_cost
        return (base - self.cost) / base if base > 0 else 0.0


def _water_fill(remaining: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Per-interval energies tracking the remaining target within bounds."""
    return np.clip(remaining, lows, highs)


def _placement_gain(remaining: np.ndarray, energies: np.ndarray) -> float:
    """Reduction in squared imbalance from consuming ``energies`` here."""
    before = np.dot(remaining, remaining)
    diff = remaining - energies
    after = np.dot(diff, diff)
    return float(before - after)


def greedy_schedule(
    offers: list[FlexOffer],
    target: TimeSeries,
    order: str = "least-flexible-first",
) -> ScheduleResult:
    """Greedily schedule offers to soak up the target series.

    Parameters
    ----------
    offers:
        Flex-offers (individual or aggregated).  Offers whose feasible
        window does not intersect the target axis are returned unplaced.
    target:
        The series to track (e.g. RES surplus), energy per interval.
    order:
        ``"least-flexible-first"`` (default, the paper's heuristic),
        ``"largest-first"`` (by expected energy) or ``"as-given"``.
    """
    axis = target.axis
    if order == "least-flexible-first":
        queue = sorted(offers, key=lambda o: (o.time_flexibility, -o.profile_energy_max))
    elif order == "largest-first":
        queue = sorted(offers, key=lambda o: -o.profile_energy_max)
    elif order == "as-given":
        queue = list(offers)
    else:
        raise SchedulingError(f"unknown order {order!r}")

    remaining = target.values.copy()
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for offer in queue:
        placement = _best_start(offer, remaining, axis)
        if placement is None:
            unplaced.append(offer)
            continue
        start, interval_energies = placement
        slice_energies = _intervals_to_slices(offer, interval_energies)
        schedule = ScheduledFlexOffer(offer, start, slice_energies)
        schedules.append(schedule)
        first = axis.index_of(start)
        remaining[first : first + len(interval_energies)] -= schedule.interval_energies()

    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def naive_schedule(offers: list[FlexOffer], target: TimeSeries) -> ScheduleResult:
    """The no-scheduling reference: every offer runs at its earliest start.

    Slice energies sit at the profile midpoint — this is (approximately)
    where and how the demand occurred historically, so comparing a greedy
    schedule's cost against this one measures the value of exploiting the
    offers' flexibility, which is the MIRABEL question.
    """
    axis = target.axis
    schedules: list[ScheduledFlexOffer] = []
    unplaced: list[FlexOffer] = []
    for offer in offers:
        start = offer.earliest_start
        n = offer.profile_intervals
        if not axis.contains(start) or axis.index_of(start) + n > axis.length:
            unplaced.append(offer)
            continue
        energies = tuple(sl.midpoint for sl in offer.slices)
        schedules.append(ScheduledFlexOffer(offer, start, energies))
    demand = schedules_to_series(schedules, axis)
    return ScheduleResult(
        schedules=schedules, demand=demand, target=target, unplaced=unplaced
    )


def _best_start(
    offer: FlexOffer, remaining: np.ndarray, axis
) -> tuple[datetime, np.ndarray] | None:
    """The feasible start with the highest placement gain, or ``None``."""
    expansion = offer.slice_expansion()
    lows = np.array([lo for lo, _ in expansion])
    highs = np.array([hi for _, hi in expansion])
    n = len(expansion)
    best: tuple[float, datetime, np.ndarray] | None = None
    for start in offer.feasible_starts():
        if not axis.contains(start):
            continue
        first = axis.index_of(start)
        if first + n > axis.length:
            continue
        window = remaining[first : first + n]
        energies = _water_fill(window, lows, highs)
        gain = _placement_gain(window, energies)
        if best is None or gain > best[0]:
            best = (gain, start, energies)
    if best is None:
        return None
    return best[1], best[2]


def _intervals_to_slices(offer: FlexOffer, interval_energies: np.ndarray) -> tuple[float, ...]:
    """Collapse per-interval energies back to per-slice energies."""
    out = []
    cursor = 0
    for sl in offer.slices:
        out.append(float(interval_energies[cursor : cursor + sl.duration].sum()))
        cursor += sl.duration
    return tuple(out)

"""Robust scheduling over forecast uncertainty: scenario fans and risk.

The greedy scheduler trusts its target; this module makes that trust
optional.  A :class:`RobustConfig` on
:class:`~repro.scheduling.greedy.ScheduleConfig` turns the single point
target into a *scenario fan* — one target series per quantile level,
either supplied explicitly (a
:class:`~repro.forecasting.quantiles.QuantileForecast` fan) or
synthesised deterministically from the point target
(:func:`synthetic_fan`) — and scores every candidate placement against
all scenarios at once, aggregated by a risk measure:

* ``risk="expected"`` — the probability-weighted mean gain over the fan,
  with weights read off the quantile levels (:func:`quantile_weights`);
* ``risk="cvar"`` — the mean gain over the worst ``alpha`` tail of
  scenarios (Conditional Value at Risk), i.e. plan for the bad draws.

Placement *energies* stay the point-target water-fill, so robust mode
only changes *which start* wins — the wire format, disaggregation path
and schedule validation are untouched.  Both greedy engines share the
scalar risk arithmetic here (:func:`risk_of` / :func:`risk_profile`), so
the vectorized robust path is gated bitwise on decisions against the
reference loop exactly like the point-target engines.

After the fact, :func:`evaluate_realized` scores any schedule against
the series that actually materialised — the realized-imbalance oracle
the ``replan-no-worse-realized`` conformance invariant is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.timeseries.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.greedy import ScheduleResult

#: Supported risk measures over the scenario fan.
RISK_MEASURES = ("expected", "cvar")

#: Default quantile levels for robust scheduling fans.
DEFAULT_ROBUST_QUANTILES = (0.1, 0.5, 0.9)


@dataclass(frozen=True, slots=True)
class RobustConfig:
    """How robust mode builds and aggregates its scenario fan.

    ``quantiles`` are the fan's levels (strictly increasing, in ``(0,1)``);
    ``risk`` picks the aggregation (:data:`RISK_MEASURES`); ``alpha`` is
    the CVaR tail mass (ignored for ``"expected"``); ``sigma`` is the
    relative spread used when the fan is synthesised from a point target
    rather than supplied (:func:`synthetic_fan`).
    """

    quantiles: tuple[float, ...] = DEFAULT_ROBUST_QUANTILES
    risk: str = "expected"
    alpha: float = 0.3
    sigma: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "quantiles", tuple(float(q) for q in self.quantiles)
        )
        if not self.quantiles:
            raise SchedulingError("robust.quantiles must be non-empty")
        for level in self.quantiles:
            if not 0.0 < level < 1.0:
                raise SchedulingError(
                    f"robust quantile levels must be in (0, 1), got {level}"
                )
        if any(b <= a for a, b in zip(self.quantiles, self.quantiles[1:])):
            raise SchedulingError(
                f"robust.quantiles must be strictly increasing, got {self.quantiles}"
            )
        if self.risk not in RISK_MEASURES:
            raise SchedulingError(
                f"unknown risk measure {self.risk!r}; expected one of {RISK_MEASURES}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise SchedulingError(f"robust.alpha must be in (0, 1], got {self.alpha}")
        if self.sigma < 0.0:
            raise SchedulingError(f"robust.sigma must be >= 0, got {self.sigma}")


def quantile_weights(levels: Sequence[float]) -> np.ndarray:
    """Probability mass per quantile level, by midpoint partition of [0, 1].

    Each level represents the slab of probability between the midpoints to
    its neighbours (outer slabs run to 0 and 1), so the weights sum to 1
    exactly and a symmetric level set weights the median heaviest — e.g.
    ``(0.1, 0.5, 0.9) -> (0.3, 0.4, 0.3)``.
    """
    levels_arr = np.asarray(levels, dtype=np.float64)
    mids = (levels_arr[:-1] + levels_arr[1:]) / 2.0
    bounds = np.concatenate(([0.0], mids, [1.0]))
    return np.diff(bounds)


def synthetic_fan(target: TimeSeries, robust: RobustConfig) -> tuple[TimeSeries, ...]:
    """A deterministic multiplicative fan around a point target.

    Level ``q`` scales the target by ``1 + sigma * (2q - 1)`` — the 0.5
    level reproduces the point target exactly, the fan is monotone in
    level wherever the target is non-negative, and no RNG is involved, so
    robust runs without an explicit forecast stay bitwise reproducible.
    """
    return tuple(
        (target * (1.0 + robust.sigma * (2.0 * level - 1.0))).with_name(
            f"{target.name}@q{level:g}"
        )
        for level in robust.quantiles
    )


def resolve_fan(
    target: TimeSeries,
    robust: RobustConfig,
    scenarios: Sequence[TimeSeries] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(scenario matrix, weights)`` robust placement scores against.

    ``scenarios`` may be an explicit sequence of per-level target series
    (e.g. a rescaled :class:`~repro.forecasting.quantiles.QuantileForecast`
    fan, one series per ``robust.quantiles`` entry, all on the target's
    axis); when absent, :func:`synthetic_fan` supplies them.  Returns the
    stacked ``(levels, axis)`` float matrix plus the matching
    :func:`quantile_weights`.
    """
    if scenarios is None:
        fan = synthetic_fan(target, robust)
    else:
        fan = tuple(scenarios)
        if len(fan) != len(robust.quantiles):
            raise SchedulingError(
                f"robust mode expects one scenario per quantile level: "
                f"{len(robust.quantiles)} level(s), {len(fan)} scenario(s)"
            )
        for scenario in fan:
            if not isinstance(scenario, TimeSeries):
                raise SchedulingError(
                    f"scenarios must be TimeSeries, got {type(scenario).__name__}"
                )
            target.axis.require_aligned(scenario.axis)
    matrix = np.stack([scenario.values for scenario in fan])
    return matrix, quantile_weights(robust.quantiles)


def cvar_count(alpha: float, scenarios: int) -> int:
    """How many worst scenarios the ``alpha`` tail covers (at least one)."""
    return max(1, math.ceil(alpha * scenarios))


def risk_of(gains: np.ndarray, weights: np.ndarray, risk: str, alpha: float) -> float:
    """Aggregate one candidate's per-scenario gains into a scalar score.

    The single home of the robust scoring arithmetic — the reference
    engine calls it per candidate and the vectorized engine's near-tie
    rescoring calls it too, which is what keeps their decisions bitwise
    identical.
    """
    if risk == "expected":
        return float(np.dot(weights, gains))
    worst = np.sort(gains)[: cvar_count(alpha, gains.size)]
    return float(worst.mean())


def risk_profile(
    gains: np.ndarray, weights: np.ndarray, risk: str, alpha: float
) -> np.ndarray:
    """Batched :func:`risk_of` over a ``(scenarios, candidates)`` matrix."""
    if risk == "expected":
        return weights @ gains
    worst = np.sort(gains, axis=0)[: cvar_count(alpha, gains.shape[0])]
    return worst.mean(axis=0)


# --------------------------------------------------------------------- #
# Realized-vs-scheduled evaluation
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class RealizedEvaluation:
    """A schedule scored against the series that actually materialised.

    ``planned_cost`` is the squared imbalance against the target the
    schedule was built for; ``realized_cost`` is the same demand held
    against the realized series; ``realized_baseline_cost`` is the cost of
    having scheduled nothing at all, and ``realized_improvement`` the
    relative reduction the schedule still achieved ex post.
    """

    planned_cost: float
    realized_cost: float
    realized_baseline_cost: float
    unplaced: int = field(default=0)

    @property
    def realized_improvement(self) -> float:
        """Relative realized cost reduction vs scheduling nothing (0..1)."""
        base = self.realized_baseline_cost
        return (base - self.realized_cost) / base if base > 0 else 0.0

    @property
    def forecast_regret(self) -> float:
        """How much worse reality scored the plan than the forecast did."""
        return self.realized_cost - self.planned_cost

    def summary(self) -> dict[str, float]:
        """Scalar overview (report/benchmark rows)."""
        return {
            "realized_cost": self.realized_cost,
            "realized_baseline_cost": self.realized_baseline_cost,
            "realized_improvement": self.realized_improvement,
            "planned_cost": self.planned_cost,
            "forecast_regret": self.forecast_regret,
        }


def evaluate_realized(
    schedule: "ScheduleResult | Any", realized: TimeSeries
) -> RealizedEvaluation:
    """Score a schedule's demand against the realized target series.

    Accepts anything with the :class:`ScheduleResult` surface (``demand``,
    ``target``, ``cost``, ``unplaced``), including a zoned result's
    per-zone entries.  The realized series must live on the schedule's
    axis — comparing across axes would silently misalign intervals.
    """
    demand = schedule.demand
    if not isinstance(realized, TimeSeries):
        raise SchedulingError(
            f"realized must be a TimeSeries, got {type(realized).__name__}"
        )
    demand.axis.require_aligned(realized.axis)
    diff = demand.values - realized.values
    return RealizedEvaluation(
        planned_cost=float(schedule.cost),
        realized_cost=float(np.dot(diff, diff)),
        realized_baseline_cost=float(np.dot(realized.values, realized.values)),
        unplaced=len(schedule.unplaced),
    )


__all__ = [
    "DEFAULT_ROBUST_QUANTILES",
    "RISK_MEASURES",
    "RealizedEvaluation",
    "RobustConfig",
    "cvar_count",
    "evaluate_realized",
    "quantile_weights",
    "resolve_fan",
    "risk_of",
    "risk_profile",
    "synthetic_fan",
]

"""Zone-sharded multi-market scheduling of aggregated flex-offers.

The paper's scheduling step (§6 via Tušar et al.) places aggregates
against *one* market target; real balance-responsible parties operate per
grid zone — the space-time load-shifting framing of Zhang & Zavala
(arXiv:2303.10217) and the distribution-grid flexibility-trading setting
of Eck et al. (arXiv:1909.10870).  This module scales the schedule stage
past one market:

* :class:`MarketZone` — one named zone: its own demand profile (the target
  series the zone's offers chase) and its own clearing-price band.
* :class:`ZonedTarget` — the zoned market: the zone list plus the
  assignment policy mapping household/consumer ids to zone names.
* :func:`assign_zones` — the deterministic offer→zone routing: an
  aggregate goes to the zone its routing key (the first member's consumer
  id) is mapped to, falling back to a stable hash shard over the zone
  names for unmapped keys.  The hash is :func:`zlib.crc32`-based, so the
  routing is identical across processes and Python runs (``PYTHONHASHSEED``
  never leaks into schedules).
* :func:`schedule_zones` — the driver: schedules every zone independently
  (each zone is its own greedy + optional stochastic-improvement run),
  sequentially or fanned out over a process pool (``workers=N``).  Zones
  are independent and every per-zone run is deterministic, so the worker
  fan-out produces a report *identical* to the sequential path — the same
  contract the fleet pipeline and the conformance runner already enforce.

Inside each zone the placement engine is selectable via
:class:`~repro.scheduling.greedy.ScheduleConfig`; the zone-sharded hot
path defaults to ``engine="auto"``, resolved per zone from that zone's
own workload shape (:mod:`repro.scheduling.autotune`).  All engines are
gated bitwise-identical (vectorized/incremental) or
placement-identical (reference) and benchmarked in
``benchmarks/bench_zones.py`` (``BENCH_zones.json``).
"""

from __future__ import annotations

import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import TYPE_CHECKING

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer
from repro.errors import SchedulingError
from repro.scheduling.greedy import ScheduleConfig, ScheduleResult
from repro.timeseries.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.market.clearing import ClearingResult
    from repro.pipeline.dispatch import RetryPolicy

#: Engine the zone-sharded scheduler uses unless the caller says otherwise.
#: ``"auto"`` resolves per zone from that zone's own workload shape (see
#: :mod:`repro.scheduling.autotune`): dense shards take the vectorized
#: engine, sparse ones the incremental engine — placements are bitwise
#: identical either way, so the default is purely a wall-clock choice.
ZONE_DEFAULT_CONFIG = ScheduleConfig(engine="auto")


@dataclass(frozen=True)
class MarketZone:
    """One grid zone of a zoned market.

    ``target`` is the zone's own demand profile — the series its offers
    are scheduled against (e.g. the zone's RES surplus).  ``price_floor``
    and ``price_cap`` bound the zone's clearing price (EUR/kWh): when a
    :class:`~repro.market.model.MarketConfig` is set they parameterise the
    zone's supply ramp in merit-order clearing (:mod:`repro.market`);
    without one they only value the zone's scheduled energy in reports at
    the band midpoint.  ``price_floor == price_cap == 0.0`` means "no
    market" (see :attr:`priced`); clearing refuses such zones loudly.
    """

    name: str
    target: TimeSeries
    price_floor: float = 0.0
    price_cap: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("zone name must be non-empty")
        if self.price_floor < 0 or self.price_cap < 0:
            raise SchedulingError(f"zone {self.name!r}: prices must be >= 0")
        if self.price_cap < self.price_floor:
            raise SchedulingError(
                f"zone {self.name!r}: price_cap {self.price_cap} below "
                f"price_floor {self.price_floor}"
            )

    @property
    def price_mid(self) -> float:
        """Midpoint of the price band (the report's valuation price)."""
        return 0.5 * (self.price_floor + self.price_cap)

    @property
    def priced(self) -> bool:
        """True when the zone has a real price band a market can clear on.

        The all-zero default band is the explicit "no market" state: it is
        valid for plain zoned placement but rejected by merit-order
        clearing (a zero-width zero ramp would clear everything for free).
        """
        return self.price_floor > 0.0 or self.price_cap > 0.0


@dataclass(frozen=True)
class ZonedTarget:
    """A zoned market: named zones plus the offer-assignment policy.

    ``assignment`` maps routing keys (household/consumer ids — the
    metadata the simulator stamps on every offer) to zone names; keys
    absent from the mapping fall back to the deterministic hash shard of
    :func:`assign_zone`.  The mapping is frozen at construction so a
    zoned target is immutable end to end, like the spec layer.
    """

    zones: tuple[MarketZone, ...]
    assignment: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "zones", tuple(self.zones))
        if not self.zones:
            raise SchedulingError("a zoned target needs at least one zone")
        names = [zone.name for zone in self.zones]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate zone names: {', '.join(names)}")
        unknown = sorted(set(self.assignment.values()) - set(names))
        if unknown:
            raise SchedulingError(
                f"assignment routes to unknown zone(s) {', '.join(unknown)}; "
                f"zones: {', '.join(names)}"
            )
        object.__setattr__(
            self, "assignment", MappingProxyType(dict(self.assignment))
        )

    @property
    def names(self) -> tuple[str, ...]:
        """Zone names in declaration order."""
        return tuple(zone.name for zone in self.zones)

    def zone(self, name: str) -> MarketZone:
        """Look up one zone; raises with the valid names on a miss."""
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise SchedulingError(
            f"unknown zone {name!r}; zones: {', '.join(self.names)}"
        )


def routing_key(aggregate: AggregatedFlexOffer) -> str:
    """The metadata key an aggregate is routed by.

    Aggregates are built from one grouping-grid cell, so their members are
    near-identical in time; the first member's consumer id (the household
    identity the simulator stamps on every offer) identifies where the
    demand physically sits.  Offers without consumer metadata (synthetic
    benchmark offers) fall back to the aggregate's own id — still stable
    and deterministic, routed by the hash shard.
    """
    for member in aggregate.members:
        if member.consumer_id:
            return member.consumer_id
    return aggregate.offer.offer_id


def hash_shard(key: str, names: tuple[str, ...]) -> str:
    """The fallback zone of an unmapped routing key: a stable hash shard.

    ``zlib.crc32`` over the UTF-8 key — deterministic across processes and
    runs (unlike built-in ``hash``), so worker fan-outs and re-runs route
    identically.
    """
    return names[zlib.crc32(key.encode("utf-8")) % len(names)]


def assign_zone(aggregate: AggregatedFlexOffer, zoned: ZonedTarget) -> str:
    """The zone one aggregate is scheduled in.

    Explicit policy first: the aggregate goes to the zone of its first
    member whose consumer id appears in the assignment mapping — grouping
    can merge offers of *different* households into one aggregate, and an
    explicitly assigned household must not be silently overridden just
    because an unmapped household's offer happens to lead the group.  (An
    aggregate is one indivisible offer, so when members are mapped to
    different zones the earliest mapped member still wins — declaration
    order inside the aggregate is deterministic.)  Aggregates with no
    mapped member fall back to their routing key: mapped directly if the
    key itself is in the policy, hash-sharded otherwise.
    """
    for member in aggregate.members:
        mapped = zoned.assignment.get(member.consumer_id)
        if member.consumer_id and mapped is not None:
            return mapped
    key = routing_key(aggregate)
    mapped = zoned.assignment.get(key)
    return mapped if mapped is not None else hash_shard(key, zoned.names)


def zone_name(index: int) -> str:
    """The default name of zone ``index``: ``zone-a`` … ``zone-z``, then
    numeric (``zone-27``, …) so large markets never get non-letter names."""
    if index < 26:
        return f"zone-{chr(ord('a') + index)}"
    return f"zone-{index + 1}"


def make_market_zones(
    axis, count: int, seed: int, zone_kwh: float
) -> tuple[MarketZone, ...]:
    """``count`` deterministic wind-profile zones on one metering axis.

    The shared zone-market constructor behind
    :func:`repro.pipeline.fleet.fleet_zoned_target` and the zones
    benchmark workload: zone ``i`` draws its own wind profile from
    ``default_rng(seed + i)``, rescaled to ``zone_kwh``, with a
    deterministic per-zone price band.
    """
    from repro.simulation.res import simulate_wind_production

    if count < 1:
        raise SchedulingError("a zoned market needs at least one zone")
    zones = []
    for index in range(count):
        name = zone_name(index)
        production = simulate_wind_production(
            axis, np.random.default_rng(seed + index)
        )
        if production.total() > 0 and zone_kwh > 0:
            production = production * (zone_kwh / production.total())
        zones.append(
            MarketZone(
                name=name,
                target=production.with_name(f"{name}-target"),
                price_floor=round(0.02 + 0.01 * index, 4),
                price_cap=round(0.12 + 0.02 * index, 4),
            )
        )
    return tuple(zones)


def assign_zones(
    aggregates: tuple[AggregatedFlexOffer, ...] | list[AggregatedFlexOffer],
    zoned: ZonedTarget,
) -> dict[str, list[AggregatedFlexOffer]]:
    """Partition aggregates into zones, preserving input order per zone.

    Every zone appears in the result (possibly empty), in declaration
    order; every aggregate lands in exactly one zone.
    """
    buckets: dict[str, list[AggregatedFlexOffer]] = {
        name: [] for name in zoned.names
    }
    for aggregate in aggregates:
        buckets[assign_zone(aggregate, zoned)].append(aggregate)
    return buckets


@dataclass(frozen=True)
class ZonedScheduleResult:
    """Every zone's scheduling outcome, in zone declaration order.

    ``zones`` are the market zones scheduled; ``results[i]`` is zone
    ``zones[i]``'s :class:`~repro.scheduling.greedy.ScheduleResult` over
    exactly the aggregates routed to it.  Scalar properties sum over
    zones, so a zoned result drops into the same report slots a
    single-market result occupies.  When the run cleared a market first,
    ``clearing`` holds the :class:`~repro.market.clearing.ClearingResult`
    (``None`` for plain zoned placement — old results are unchanged).
    """

    zones: tuple[MarketZone, ...]
    results: tuple[ScheduleResult, ...]
    clearing: "ClearingResult | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "zones", tuple(self.zones))
        object.__setattr__(self, "results", tuple(self.results))
        if len(self.zones) != len(self.results):
            raise SchedulingError(
                f"{len(self.zones)} zones but {len(self.results)} results"
            )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(zone.name for zone in self.zones)

    def zone_result(self, name: str) -> ScheduleResult:
        """One zone's schedule, by name."""
        for zone, result in zip(self.zones, self.results):
            if zone.name == name:
                return result
        raise SchedulingError(
            f"unknown zone {name!r}; zones: {', '.join(self.names)}"
        )

    def assignment(self) -> dict[str, str]:
        """Offer id → zone name, over placed and unplaced offers alike."""
        routed: dict[str, str] = {}
        for zone, result in zip(self.zones, self.results):
            for schedule in result.schedules:
                routed[schedule.offer.offer_id] = zone.name
            for offer in result.unplaced:
                routed[offer.offer_id] = zone.name
        return routed

    @property
    def schedules(self):
        """All placements, zone-major (declaration order)."""
        return [s for result in self.results for s in result.schedules]

    @property
    def unplaced(self):
        """All unplaced offers, zone-major (declaration order)."""
        return [o for result in self.results for o in result.unplaced]

    @property
    def cost(self) -> float:
        """Total squared imbalance, summed over zones."""
        return float(sum(result.cost for result in self.results))

    @property
    def baseline_cost(self) -> float:
        """Cost of scheduling nothing in any zone."""
        return float(sum(result.baseline_cost for result in self.results))

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs scheduling nothing (0..1)."""
        base = self.baseline_cost
        return (base - self.cost) / base if base > 0 else 0.0

    @property
    def scheduled_energy(self) -> float:
        """Total energy placed across every zone (kWh)."""
        return float(sum(result.scheduled_energy for result in self.results))

    @property
    def market_value(self) -> float:
        """Scheduled energy valued at each zone's price-band midpoint (EUR)."""
        return float(
            sum(
                zone.price_mid * result.scheduled_energy
                for zone, result in zip(self.zones, self.results)
            )
        )

    def summary(self) -> dict[str, float]:
        """Scalar overview matching :meth:`ScheduleResult.summary`'s keys.

        Market-cleared runs append the clearing's welfare metrics
        (``market_*`` keys); plain zoned runs keep the historical shape.
        """
        summary: dict[str, float] = {
            "schedule_placed": float(len(self.schedules)),
            "schedule_unplaced": float(len(self.unplaced)),
            "schedule_cost": self.cost,
            "schedule_improvement": self.improvement,
            "schedule_energy_kwh": self.scheduled_energy,
            "schedule_zones": float(len(self.zones)),
            "schedule_value_eur": self.market_value,
        }
        if self.clearing is not None:
            summary.update(
                (key, float(value))
                for key, value in self.clearing.summary().items()
            )
        return summary

    def zone_rows(self) -> list[dict[str, float | str]]:
        """One human-readable row per zone (CLI output)."""
        return [
            {
                "zone": zone.name,
                "placed": len(result.schedules),
                "unplaced": len(result.unplaced),
                "target_kwh": round(result.target.total(), 2),
                "scheduled_kwh": round(result.scheduled_energy, 2),
                "improvement": f"{result.improvement:.1%}",
                "value_eur": round(zone.price_mid * result.scheduled_energy, 2),
            }
            for zone, result in zip(self.zones, self.results)
        ]


def _schedule_one_zone(
    zone: MarketZone,
    aggregates: list[AggregatedFlexOffer],
    config: ScheduleConfig,
) -> ScheduleResult:
    """One zone's independent run (module-level so process pools pickle it)."""
    from repro.pipeline.fleet import schedule_aggregates

    return schedule_aggregates(aggregates, zone.target, config)


def _schedule_zone_task(
    position: int,
    zone: MarketZone,
    aggregates: list[AggregatedFlexOffer],
    config: ScheduleConfig,
) -> ScheduleResult:
    """Worker entry for one zone: fault probe plus the zone run."""
    from repro.testing import faults

    faults.fire("zone-worker", position)
    return _schedule_one_zone(zone, aggregates, config)


def schedule_zones(
    aggregates: tuple[AggregatedFlexOffer, ...] | list[AggregatedFlexOffer],
    zoned: ZonedTarget,
    config: ScheduleConfig | None = None,
    workers: int | None = None,
    retry: "RetryPolicy | None" = None,
) -> ZonedScheduleResult:
    """Schedule every zone of a zoned market independently.

    Aggregates are routed by :func:`assign_zones` (explicit assignment,
    hash-shard fallback); each zone then runs the greedy placement (and
    the optional stochastic-improvement pass of ``config``) against its
    own target.  ``workers`` > 1 fans zones out over a process pool; zone
    runs share no state and are deterministic, so the result is identical
    to the sequential path for any worker count (asserted by
    ``benchmarks/bench_zones.py`` and the zone tests).  The fan-out rides
    the fault-tolerant dispatcher: a worker killed mid-zone rebuilds the
    pool and re-dispatches only the outstanding zones (``retry``, a
    :class:`~repro.pipeline.dispatch.RetryPolicy`, tunes the policy), so
    one dead process never aborts — or changes — the market run.

    With ``config.market`` set, merit-order clearing runs *before*
    placement (:func:`repro.market.clearing.clear_zones`): only cleared
    bids are scheduled — in the zone they cleared in, which for spilled
    bids differs from their home zone — and rejected bids surface as
    unplaced offers of their home zone.  Clearing requires every zone to
    be priced (:attr:`MarketZone.priced`).
    """
    if workers is not None and workers < 1:
        raise SchedulingError("workers must be >= 1 (or None)")
    config = config if config is not None else ZONE_DEFAULT_CONFIG
    clearing = None
    rejected: dict[str, list] = {}
    if config.market is not None:
        unpriced = sorted(zone.name for zone in zoned.zones if not zone.priced)
        if unpriced:
            raise SchedulingError(
                f"market clearing requested but zone(s) {', '.join(unpriced)} "
                "have no price band (price_floor == price_cap == 0.0); set "
                "price_floor/price_cap on the zone or drop the market config"
            )
        from repro.market.clearing import clear_zones

        clearing = clear_zones(aggregates, zoned, config.market)
        outcomes = clearing.by_offer()
        buckets = {zone.name: [] for zone in zoned.zones}
        rejected = {zone.name: [] for zone in zoned.zones}
        for aggregate in aggregates:
            outcome = outcomes[aggregate.offer.offer_id]
            if outcome.cleared:
                buckets[outcome.zone].append(aggregate)
            else:
                rejected[outcome.home_zone].append(aggregate.offer)
    else:
        buckets = assign_zones(aggregates, zoned)
    if workers is not None and workers > 1 and len(zoned.zones) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.pipeline.dispatch import dispatch_chunks

        task_args = [
            (position, zone, buckets[zone.name], config)
            for position, zone in enumerate(zoned.zones)
        ]
        results = tuple(
            dispatch_chunks(
                task_args,
                _schedule_zone_task,
                lambda: ProcessPoolExecutor(max_workers=workers),
                lambda position: _schedule_one_zone(
                    zoned.zones[position], buckets[zoned.zones[position].name], config
                ),
                policy=retry,
                label="zone scheduling",
            )
        )
    else:
        results = tuple(
            _schedule_one_zone(zone, buckets[zone.name], config)
            for zone in zoned.zones
        )
    if clearing is not None:
        # Market-rejected bids were never handed to placement; account for
        # them as unplaced offers of their home zone.
        results = tuple(
            replace(result, unplaced=list(result.unplaced) + rejected[zone.name])
            for zone, result in zip(zoned.zones, results)
        )
    return ZonedScheduleResult(zones=zoned.zones, results=results, clearing=clearing)

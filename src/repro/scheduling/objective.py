"""Scheduling objectives: how well scheduled demand tracks a target.

MIRABEL positions flexible demand under surplus RES production (paper [5],
§6).  The canonical objective is the squared imbalance between the scheduled
flexible demand and the available surplus; absolute imbalance is provided as
an alternative for reporting.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries


def squared_imbalance(demand: TimeSeries, target: TimeSeries) -> float:
    """Sum of squared per-interval deviations between demand and target."""
    demand.axis.require_aligned(target.axis)
    diff = demand.values - target.values
    return float(np.dot(diff, diff))


def absolute_imbalance(demand: TimeSeries, target: TimeSeries) -> float:
    """Sum of absolute per-interval deviations (kWh of mismatch)."""
    demand.axis.require_aligned(target.axis)
    return float(np.abs(demand.values - target.values).sum())


def unmet_target(demand: TimeSeries, target: TimeSeries) -> float:
    """Surplus energy left unconsumed (kWh): positive residual target."""
    demand.axis.require_aligned(target.axis)
    return float(np.clip(target.values - demand.values, 0.0, None).sum())


def overshoot(demand: TimeSeries, target: TimeSeries) -> float:
    """Demand scheduled beyond the available target (kWh)."""
    demand.axis.require_aligned(target.axis)
    return float(np.clip(demand.values - target.values, 0.0, None).sum())

"""String-keyed extractor registry: one place that maps names to approaches.

The paper's Figure 3 taxonomy gives every extraction approach a stable,
human-readable name (basic, peak-based, multi-tariff, ...).  This module
makes those names the *only* construction surface for string-driven callers
— the CLI, declarative run specs, evaluation suites and benchmarks all go
through :func:`create_extractor` instead of hand-wiring classes, so adding
an approach means registering it once.

Extractor classes self-register at import time::

    @register_extractor(
        "peak-based",
        input="metered",
        summary="One offer per day on a size-sampled consumption peak",
    )
    @dataclass(frozen=True)
    class PeakBasedExtractor(FlexibilityExtractor):
        ...

and callers resolve them by name::

    extractor = create_extractor("peak-based", flexible_share=0.07)

Parameter routing is dataclass-aware: keyword arguments matching the
extractor's own fields are passed directly, while arguments matching the
fields of nested config dataclasses (``params``/``matching``/``config``)
are routed into a rebuilt nested config.  ``timedelta``-typed fields accept
plain numbers of seconds so parameters stay JSON-representable.  Unknown
names and unknown/missing parameters raise :class:`~repro.errors.RegistryError`
with the full list of valid alternatives.

This module deliberately imports nothing from :mod:`repro.extraction` at
module level (the extraction modules import *us* for the decorator); the
lazy :func:`_ensure_registered` import breaks the cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import MISSING
from datetime import timedelta
from difflib import get_close_matches
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from repro.errors import RegistryError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.extraction.base import FlexibilityExtractor

T = TypeVar("T", bound=type)

#: Input-series kinds an extractor can declare (which fleet series it reads).
INPUT_KINDS: tuple[str, ...] = ("metered", "total")

#: Human description of each input kind's grid, for error messages.
GRID_OF_INPUT: dict[str, str] = {
    "metered": "15-minute metered",
    "total": "1-minute total",
}

#: Nested config fields whose sub-fields are addressable as flat parameters.
_NESTED_FIELDS: tuple[str, ...] = ("params", "matching", "config")


@dataclasses.dataclass(frozen=True)
class ExtractorEntry:
    """One registered approach: the class plus its service-level metadata.

    ``input`` names the fleet series the approach consumes ("metered" =
    the 15-minute metering grid, "total" = the 1-minute appliance-visible
    grid); ``strict_grid`` marks approaches that hard-require that exact
    resolution (the paper's §4 granularity requirement for appliance-level
    extraction).  ``level`` is the Figure 3 taxonomy position.
    """

    name: str
    cls: type
    input: str = "metered"
    strict_grid: bool = False
    level: str = "household"
    summary: str = ""

    def required_parameters(self) -> tuple[str, ...]:
        """Fields of the extractor class without defaults (must be supplied)."""
        return tuple(
            f.name
            for f in dataclasses.fields(self.cls)
            if f.default is MISSING and f.default_factory is MISSING
        )

    def accepted_parameters(self) -> tuple[str, ...]:
        """All flat parameter names :func:`create_extractor` accepts."""
        names: list[str] = [f.name for f in dataclasses.fields(self.cls)]
        for nested in _nested_configs(self.cls):
            names.extend(
                f.name for f in dataclasses.fields(nested.type_) if f.name not in names
            )
        return tuple(names)


_REGISTRY: dict[str, ExtractorEntry] = {}
_BY_CLASS: dict[type, ExtractorEntry] = {}


def register_extractor(
    name: str,
    *,
    input: str = "metered",
    strict_grid: bool = False,
    level: str = "household",
    summary: str = "",
) -> Callable[[T], T]:
    """Class decorator: publish an extractor under a stable string name."""
    if input not in INPUT_KINDS:
        raise RegistryError(f"input must be one of {INPUT_KINDS}, got {input!r}")

    def decorate(cls: T) -> T:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.cls is not cls:
            raise RegistryError(
                f"extractor name {name!r} is already registered "
                f"(by {existing.cls.__name__})"
            )
        entry = ExtractorEntry(
            name=name,
            cls=cls,
            input=input,
            strict_grid=strict_grid,
            level=level,
            summary=summary,
        )
        _REGISTRY[name] = entry
        _BY_CLASS[cls] = entry
        return cls

    return decorate


def _ensure_registered() -> None:
    """Import the extraction package so its decorators have run."""
    import repro.extraction  # noqa: F401  (self-registration side effect)


def available_extractors() -> tuple[str, ...]:
    """All registered approach names, sorted."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def get_entry(name: str) -> ExtractorEntry:
    """The registry entry behind ``name``; raises on unknown names."""
    _ensure_registered()
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        hint = ""
        matches = get_close_matches(name, _REGISTRY, n=1)
        if matches:
            hint = f" (did you mean {matches[0]!r}?)"
        raise RegistryError(
            f"unknown extractor {name!r}{hint}; available: {known}"
        )
    return entry


def entry_for(extractor: "FlexibilityExtractor") -> ExtractorEntry | None:
    """The entry an extractor *instance* was registered under, if any.

    Resolves through the MRO so subclasses of a registered approach (e.g. a
    tweaked ``FrequencyBasedExtractor`` variant) inherit its entry — and
    with it the input-grid routing — exactly like the historical
    ``isinstance`` checks did.
    """
    _ensure_registered()
    for cls in type(extractor).__mro__:
        entry = _BY_CLASS.get(cls)
        if entry is not None:
            return entry
    return None


@dataclasses.dataclass(frozen=True)
class _NestedConfig:
    field_name: str
    type_: type


def _nested_configs(cls: type) -> list[_NestedConfig]:
    """The routable nested config dataclasses of an extractor class.

    Nested types are discovered from the field's default/default_factory
    (all registered extractors default their config fields), so no
    annotation resolution is needed.
    """
    nested: list[_NestedConfig] = []
    for f in dataclasses.fields(cls):
        if f.name not in _NESTED_FIELDS:
            continue
        if f.default_factory is not MISSING:
            default = f.default_factory()
        elif f.default is not MISSING:
            default = f.default
        else:
            continue
        if dataclasses.is_dataclass(default):
            nested.append(_NestedConfig(field_name=f.name, type_=type(default)))
    return nested


def _coerce(field: dataclasses.Field, value: Any) -> Any:
    """Coerce JSON-level scalars to field types (numbers → timedelta seconds)."""
    if isinstance(value, bool):
        return value
    default = field.default
    if default is MISSING and field.default_factory is not MISSING:
        default = field.default_factory()
    if isinstance(default, timedelta) and isinstance(value, (int, float)):
        return timedelta(seconds=value)
    if isinstance(default, tuple) and isinstance(value, list):
        return tuple(value)
    return value


def create_extractor(name: str, **params: Any) -> "FlexibilityExtractor":
    """Instantiate a registered extractor from its name and flat parameters.

    Parameters matching the extractor's own dataclass fields are passed
    through; parameters matching a nested config dataclass
    (``params``/``matching``/``config``) are routed into a rebuilt nested
    instance.  Everything else raises :class:`RegistryError` naming the
    acceptable parameters.
    """
    entry = get_entry(name)
    cls = entry.cls
    own_fields = {f.name: f for f in dataclasses.fields(cls)}
    nested = _nested_configs(cls)

    direct: dict[str, Any] = {}
    nested_kwargs: dict[str, dict[str, Any]] = {n.field_name: {} for n in nested}
    nested_fields = {
        n.field_name: {f.name: f for f in dataclasses.fields(n.type_)} for n in nested
    }
    for key, value in params.items():
        if key in own_fields:
            direct[key] = _coerce(own_fields[key], value)
            continue
        routed = False
        for n in nested:
            if key in nested_fields[n.field_name]:
                nested_kwargs[n.field_name][key] = _coerce(
                    nested_fields[n.field_name][key], value
                )
                routed = True
                break
        if not routed:
            accepted = ", ".join(entry.accepted_parameters())
            raise RegistryError(
                f"extractor {name!r} has no parameter {key!r}; accepted: {accepted}"
            )

    missing = [
        required
        for required in entry.required_parameters()
        if required not in direct
    ]
    if missing:
        raise RegistryError(
            f"extractor {name!r} requires parameter(s) "
            f"{', '.join(repr(m) for m in missing)} "
            f"(e.g. the multi-tariff approach needs a one-tariff "
            f"reference series of the same consumer)"
        )

    try:
        for n in nested:
            if not nested_kwargs[n.field_name]:
                continue
            if n.field_name in direct:
                # Mixing a whole config object with flat sub-parameters is
                # ambiguous (which wins?) — refuse rather than silently
                # dropping the flat overrides.
                flat = ", ".join(sorted(nested_kwargs[n.field_name]))
                raise RegistryError(
                    f"extractor {name!r}: parameter(s) {flat} conflict with the "
                    f"explicit {n.field_name!r} object; pass one or the other"
                )
            direct[n.field_name] = n.type_(**nested_kwargs[n.field_name])
        return cls(**direct)
    except RegistryError:
        raise
    except ReproError as exc:
        raise RegistryError(f"extractor {name!r}: {exc}") from exc


def registry_rows() -> list[dict[str, str]]:
    """One table row per registered approach (the ``repro approaches`` view)."""
    rows = []
    for name in available_extractors():
        entry = _REGISTRY[name]
        rows.append(
            {
                "approach": name,
                "level": entry.level,
                "input": GRID_OF_INPUT[entry.input],
                "strict": "yes" if entry.strict_grid else "no",
                "summary": entry.summary,
            }
        )
    return rows


def input_series_for(extractor: "FlexibilityExtractor", trace: Any):
    """Pick a household trace's series at the extractor's registered grid.

    Appliance-level approaches consume the 1-minute total series (the
    paper's §4 granularity requirement); everything else consumes the
    15-minute metering series.  Unregistered extractor classes default to
    the metering grid.
    """
    entry = entry_for(extractor)
    if entry is not None and entry.input == "total":
        return trace.total
    return trace.metered()

"""`repro.api` — the declarative service surface of the reproduction.

Three layers, one import::

    from repro.api import (
        available_extractors, create_extractor,   # extractor registry
        RunSpec, ExtractorSpec,                   # declarative run specs
        FlexibilityService, RunReport,            # the façade
    )

* the **registry** (:mod:`repro.api.registry`) maps stable string names to
  the paper's extraction approaches — the only place string-driven callers
  construct extractors;
* the **spec layer** (:mod:`repro.api.spec`) describes any
  simulate→extract→group→aggregate run as frozen, versioned, JSON
  round-trippable dataclasses;
* the **service** (:mod:`repro.api.service`) executes specs through the
  fleet pipeline, the evaluation harness or the benchmark, and returns a
  serialisable :class:`~repro.api.service.RunReport`.

The CLI (``repro run --spec run.json``) is a thin shell over this package.

Subsystem contract:

* **Wire-format stability** — specs and reports are versioned and
  round-trip losslessly through JSON; optional stages (``schedule``,
  ``zones``, ``session``) are omitted from the encoding when absent so
  pre-existing spec files and goldens keep loading (golden- and
  property-tested).
* **Strict validation** — unknown keys, wrong types and unsupported
  versions raise :class:`~repro.errors.SpecError` naming the offending
  path; registry misuse raises with the full list of alternatives
  (error messages are golden-pinned).
* **Replayability** — a :class:`RunSpec` fully determines its
  :class:`RunReport`; store both and the run is auditable and repeatable.
"""

from repro.api.registry import (
    ExtractorEntry,
    available_extractors,
    create_extractor,
    entry_for,
    get_entry,
    input_series_for,
    register_extractor,
    registry_rows,
)
from repro.api.service import (
    REPORT_VERSION,
    ExtractorRunReport,
    FlexibilityService,
    RunReport,
    build_schedule_target,
)
from repro.api.spec import (
    RUN_KINDS,
    SPEC_VERSION,
    ExtractorSpec,
    MarketSpec,
    PipelineSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    SessionSpec,
    ZoneSpec,
    load_run_spec,
    save_run_spec,
)

__all__ = [
    "ExtractorEntry",
    "available_extractors",
    "create_extractor",
    "entry_for",
    "get_entry",
    "input_series_for",
    "register_extractor",
    "registry_rows",
    "REPORT_VERSION",
    "ExtractorRunReport",
    "FlexibilityService",
    "RunReport",
    "build_schedule_target",
    "RUN_KINDS",
    "SPEC_VERSION",
    "ExtractorSpec",
    "MarketSpec",
    "PipelineSpec",
    "RunSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "SessionSpec",
    "ZoneSpec",
    "load_run_spec",
    "save_run_spec",
]

"""One façade over every entry point: ``FlexibilityService.run(spec)``.

The CLI, notebooks and future network services all drive the system the
same way: build (or load) a :class:`~repro.api.spec.RunSpec`, hand it to
:class:`FlexibilityService`, get a :class:`RunReport` back.  The service
routes by spec kind:

``fleet``
    One :class:`~repro.pipeline.FleetPipeline` run per extractor spec over
    the simulated scenario fleet — offers, fleet-wide aggregates and
    per-stage timings per approach.
``compare``
    The evaluation harness (:func:`repro.evaluation.comparison
    .compare_on_traces`): every approach on every household, scored
    against simulation ground truth.
``bench``
    The fleet benchmark (:func:`repro.pipeline.run_fleet_benchmark`):
    batched engine vs the sequential reference loop, speedup and
    equivalence checks included.

:class:`RunReport` serialises through the extended :mod:`repro.flexoffer.io`
wire format (offers + aggregates + stage timings + summaries) and
round-trips losslessly through JSON, so a run's complete output can be
stored next to the spec that produced it.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType
from typing import TYPE_CHECKING, Any

from repro.api.registry import get_entry
from repro.api.spec import RunSpec, load_run_spec
from repro.errors import DataError, RegistryError
from repro.flexoffer.io import (
    aggregated_from_dict,
    aggregated_to_dict,
    any_schedule_from_dict,
    any_schedule_to_dict,
    flexoffer_from_dict,
    flexoffer_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aggregation.aggregate import AggregatedFlexOffer
    from repro.extraction.base import ExtractionResult
    from repro.flexoffer.model import FlexOffer
    from repro.scheduling.greedy import ScheduleResult
    from repro.scheduling.zones import ZonedScheduleResult, ZonedTarget
    from repro.timeseries.series import TimeSeries

#: Wire-format version of run reports; bump on incompatible change.
REPORT_VERSION = 1


def _frozen(mapping: Mapping[str, Any]) -> Mapping[str, Any]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class ExtractorRunReport:
    """One approach's share of a run: offers, aggregates, timings, summary.

    ``schedule`` carries the schedule-stage output when the run placed the
    fleet aggregates against a target — zone-sharded runs carry a
    :class:`~repro.scheduling.zones.ZonedScheduleResult` (its wire
    encoding is discriminated by a ``"zones"`` key); the wire format omits
    the key entirely when absent, so pre-schedule reports keep loading
    unchanged.
    """

    extractor: str
    households: int
    offers: tuple["FlexOffer", ...] = ()
    aggregates: tuple["AggregatedFlexOffer", ...] = ()
    stage_seconds: Mapping[str, float] = field(default_factory=dict)
    summary: Mapping[str, Any] = field(default_factory=dict)
    schedule: "ScheduleResult | ZonedScheduleResult | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "offers", tuple(self.offers))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        object.__setattr__(self, "stage_seconds", _frozen(self.stage_seconds))
        object.__setattr__(self, "summary", _frozen(self.summary))

    def to_dict(self) -> dict[str, Any]:
        encoded = {
            "extractor": self.extractor,
            "households": self.households,
            "offers": [flexoffer_to_dict(o) for o in self.offers],
            "aggregates": [aggregated_to_dict(a) for a in self.aggregates],
            "stage_seconds": dict(self.stage_seconds),
            "summary": dict(self.summary),
        }
        if self.schedule is not None:
            encoded["schedule"] = any_schedule_to_dict(self.schedule)
        return encoded

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExtractorRunReport":
        schedule = data.get("schedule")
        try:
            return cls(
                extractor=data["extractor"],
                households=data["households"],
                offers=tuple(flexoffer_from_dict(o) for o in data["offers"]),
                aggregates=tuple(
                    aggregated_from_dict(a) for a in data["aggregates"]
                ),
                stage_seconds=data.get("stage_seconds", {}),
                summary=data.get("summary", {}),
                schedule=None if schedule is None else any_schedule_from_dict(schedule),
            )
        except KeyError as exc:
            raise DataError(f"extractor run report missing field: {exc}") from exc


@dataclass(frozen=True)
class RunReport:
    """Everything a :class:`FlexibilityService` run produced, serialisable."""

    spec: RunSpec
    results: tuple[ExtractorRunReport, ...]
    extras: Mapping[str, Any] = field(default_factory=dict)
    version: int = REPORT_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        object.__setattr__(self, "extras", _frozen(self.extras))

    def get(self, extractor: str) -> ExtractorRunReport:
        """The report of one approach, by registry name."""
        for result in self.results:
            if result.extractor == extractor:
                return result
        known = ", ".join(r.extractor for r in self.results)
        raise KeyError(f"no result for {extractor!r} (have: {known})")

    @property
    def total_offers(self) -> int:
        return sum(len(r.offers) for r in self.results)

    def table_rows(self) -> list[dict[str, Any]]:
        """One human-readable row per approach (CLI output)."""
        rows: list[dict[str, Any]] = []
        for result in self.results:
            row: dict[str, Any] = {"extractor": result.extractor}
            for key, value in result.summary.items():
                row[key] = round(value, 4) if isinstance(value, float) else value
            if result.stage_seconds:
                row["seconds"] = round(sum(result.stage_seconds.values()), 4)
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "spec": self.spec.to_dict(),
            "results": [r.to_dict() for r in self.results],
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        version = data.get("version", REPORT_VERSION)
        if version != REPORT_VERSION:
            raise DataError(f"unsupported run-report format version {version}")
        try:
            return cls(
                spec=RunSpec.from_dict(data["spec"]),
                results=tuple(
                    ExtractorRunReport.from_dict(r) for r in data["results"]
                ),
                extras=data.get("extras", {}),
                version=version,
            )
        except KeyError as exc:
            raise DataError(f"run report missing field: {exc}") from exc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_json(Path(path).read_text())


class FlexibilityService:
    """The single programmatic entry point for spec-driven runs.

    Stateless by design (every run is fully described by its spec), so one
    service instance can serve many concurrent callers; it is also the
    natural seam for future network transports (REST/queue workers call
    ``run`` with deserialised specs).
    """

    def run(self, spec: RunSpec) -> RunReport:
        """Execute a run spec end to end and return its report."""
        if spec.kind == "fleet":
            return self._run_fleet(spec)
        if spec.kind == "compare":
            return self._run_compare(spec)
        return self._run_bench(spec)

    def run_file(self, path: str | Path) -> RunReport:
        """Load a spec JSON file and execute it."""
        return self.run(load_run_spec(path))

    # ------------------------------------------------------------------ #
    # Kind routers (heavy imports stay lazy so `import repro.api` is cheap
    # and the registry decorators never see a half-initialised package)
    # ------------------------------------------------------------------ #

    def _simulate(self, spec: RunSpec):
        from repro.simulation.dataset import generate_fleet

        scenario = spec.scenario
        return generate_fleet(
            scenario.households, scenario.start, scenario.days, seed=scenario.seed
        )

    def _build_target(self, spec: RunSpec) -> "TimeSeries | ZonedTarget":
        """Synthesise the schedule stage's target from the spec.

        A spec with zones yields a
        :class:`~repro.scheduling.zones.ZonedTarget` — one deterministic
        series per zone (the zone's own ``target_seed``/``target_kwh``)
        plus the explicit household→zone assignment; otherwise one plain
        target series.
        """
        schedule = spec.pipeline.schedule
        if schedule.zones:
            return self._build_zoned_target(spec)
        return self._synthesise_series(
            spec, schedule.target_seed, schedule.target_kwh
        )

    def _synthesise_series(
        self,
        spec: RunSpec,
        seed: int,
        target_kwh: float | None,
        name: str | None = None,
    ) -> "TimeSeries":
        # ``name=None`` keeps the series' own name (the wind simulator's /
        # "flat-target"), preserving pre-zone report content byte for byte.
        import numpy as np

        from repro.simulation.res import simulate_wind_production
        from repro.timeseries.axis import axis_for_days
        from repro.timeseries.series import TimeSeries

        schedule = spec.pipeline.schedule
        axis = axis_for_days(spec.scenario.start, spec.scenario.days)
        if schedule.target == "wind":
            series = simulate_wind_production(axis, np.random.default_rng(seed))
            if name is not None:
                series = series.with_name(name)
        else:
            series = TimeSeries.full(axis, 1.0, name=name or "flat-target")
        if target_kwh is not None and series.total() > 0:
            series = series * (target_kwh / series.total())
        return series

    def _build_scenarios(
        self, spec: RunSpec, target: "TimeSeries | ZonedTarget"
    ) -> "list[TimeSeries] | None":
        """Synthesise the robust mode's quantile scenario fan, if any.

        A spec with ``schedule.robust`` set gets one scenario series per
        configured quantile level — the deterministic symmetric fan of
        :func:`repro.scheduling.robust.synthetic_fan` around the point
        target (spec validation already rejected zoned targets, so
        ``target`` is a plain series here).  Returns ``None`` for point
        scheduling, which keeps pre-robust runs byte-identical.
        """
        schedule = spec.pipeline.schedule
        if schedule is None or schedule.robust is None:
            return None
        from repro.scheduling.robust import synthetic_fan

        return synthetic_fan(target, schedule.robust.config())

    @staticmethod
    def _uncertainty_summary(
        schedule: "ScheduleResult",
        scenarios: "list[TimeSeries]",
        robust_spec,
    ) -> dict[str, Any]:
        """Per-quantile realized costs of the robust schedule (run summary).

        Scores the placed schedule against every scenario in the fan with
        :func:`repro.scheduling.robust.evaluate_realized`; the low/median/
        high rows bound the schedule's imbalance across the forecast
        uncertainty band.
        """
        from repro.scheduling.robust import evaluate_realized

        costs = [
            evaluate_realized(schedule, scenario).realized_cost
            for scenario in scenarios
        ]
        return {
            "robust_risk": robust_spec.risk,
            "robust_scenarios": float(len(scenarios)),
            "realized_cost_low_q": costs[0],
            "realized_cost_median_q": costs[len(costs) // 2],
            "realized_cost_high_q": costs[-1],
        }

    def _build_zoned_target(self, spec: RunSpec) -> "ZonedTarget":
        from repro.scheduling.zones import MarketZone, ZonedTarget

        schedule = spec.pipeline.schedule
        zones = tuple(
            MarketZone(
                name=zone.name,
                target=self._synthesise_series(
                    spec, zone.target_seed, zone.target_kwh, f"{zone.name}-target"
                ),
                price_floor=zone.price_floor,
                price_cap=zone.price_cap,
            )
            for zone in schedule.zones
        )
        assignment = {
            household: zone.name
            for zone in schedule.zones
            for household in zone.households
        }
        return ZonedTarget(zones=zones, assignment=assignment)

    def _run_fleet(self, spec: RunSpec) -> RunReport:
        from repro.pipeline.fleet import FleetPipeline

        fleet = self._simulate(spec)
        schedule_spec = spec.pipeline.schedule
        target = self._build_target(spec) if schedule_spec is not None else None
        scenarios = (
            self._build_scenarios(spec, target) if target is not None else None
        )
        results = []
        for extractor_spec in spec.extractors:
            pipeline = FleetPipeline(
                extractor=extractor_spec.create(),
                grouping=spec.pipeline.grouping_params(),
                chunk_size=spec.pipeline.chunk_size,
                workers=spec.pipeline.workers,
                seed=spec.scenario.seed,
                schedule=None if schedule_spec is None else schedule_spec.config(),
            )
            fleet_result = pipeline.run(fleet, target=target, scenarios=scenarios)
            summary = {
                "offers": float(len(fleet_result.offers)),
                "aggregates": float(len(fleet_result.aggregates)),
                "extracted_kwh": fleet_result.total_extracted_kwh,
            }
            if fleet_result.schedule is not None:
                summary.update(fleet_result.schedule.summary())
                if scenarios is not None:
                    summary.update(
                        self._uncertainty_summary(
                            fleet_result.schedule, scenarios, schedule_spec.robust
                        )
                    )
            results.append(
                ExtractorRunReport(
                    extractor=extractor_spec.name,
                    households=spec.scenario.households,
                    offers=tuple(fleet_result.offers),
                    aggregates=fleet_result.aggregates,
                    stage_seconds=fleet_result.timings.seconds,
                    summary=summary,
                    schedule=fleet_result.schedule,
                )
            )
        return RunReport(spec=spec, results=tuple(results))

    def _run_compare(self, spec: RunSpec) -> RunReport:
        from repro.evaluation.comparison import compare_on_traces

        fleet = self._simulate(spec)
        extractors = [e.create() for e in spec.extractors]
        comparison = compare_on_traces(
            fleet.traces, extractors, seed=spec.scenario.seed
        )
        rows = {row["extractor"]: row for row in comparison.mean_rows()}
        results = tuple(
            ExtractorRunReport(
                extractor=extractor_spec.name,
                households=spec.scenario.households,
                summary={
                    k: v for k, v in rows[extractor.name].items() if k != "extractor"
                },
            )
            for extractor_spec, extractor in zip(spec.extractors, extractors)
        )
        return RunReport(spec=spec, results=results)

    def _run_bench(self, spec: RunSpec) -> RunReport:
        from repro.errors import SpecError
        from repro.pipeline.bench import run_fleet_benchmark

        # The benchmark pins its own extractor pair (vectorized-vs-reference
        # frequency-based); a spec naming anything else would be recorded as
        # run when it never was — reject it instead of silently ignoring it.
        names = [e.name for e in spec.extractors]
        if names != ["frequency-based"] or dict(spec.extractors[0].params):
            raise SpecError(
                "kind='bench' runs the pinned frequency-based benchmark; the "
                "spec must name exactly one parameterless 'frequency-based' "
                f"extractor (got: {', '.join(names)})"
            )
        report, timed_result = run_fleet_benchmark(
            n_households=spec.scenario.households,
            days=spec.scenario.days,
            seed=spec.scenario.seed,
            workers=spec.pipeline.workers,
            chunk_size=spec.pipeline.chunk_size,
        )
        result = ExtractorRunReport(
            extractor=report["workload"]["extractor"],
            households=spec.scenario.households,
            offers=tuple(timed_result.offers),
            aggregates=timed_result.aggregates,
            stage_seconds=timed_result.timings.seconds,
            summary={
                "offers": float(len(timed_result.offers)),
                "aggregates": float(len(timed_result.aggregates)),
                "extracted_kwh": timed_result.total_extracted_kwh,
                "speedup": float(report["speedup"]),
            },
        )
        return RunReport(spec=spec, results=(result,), extras={"bench": report})

    # ------------------------------------------------------------------ #
    # Conformance (the `repro conformance` backend)
    # ------------------------------------------------------------------ #

    def conformance(
        self,
        scenarios: tuple[str, ...] | list[str] | None = None,
        extractors: tuple[str, ...] | list[str] | None = None,
        invariants: tuple[str, ...] | list[str] | None = None,
        workers: int | None = None,
    ):
        """Run the scenario-matrix invariant harness (repro.conformance).

        Crosses every registered extractor with every compatible scenario
        of the conformance matrix (optionally restricted by name) and
        returns the :class:`~repro.conformance.runner.ConformanceReport`.
        ``workers`` > 1 fans cells out over a process pool; the report is
        identical to the in-process run.
        """
        from repro.conformance import run_conformance

        return run_conformance(
            scenarios=scenarios,
            extractors=extractors,
            invariants=invariants,
            workers=workers,
        )

    # ------------------------------------------------------------------ #
    # Single-series extraction (the `repro extract` backend)
    # ------------------------------------------------------------------ #

    def extract(
        self,
        approach: str,
        series: "TimeSeries",
        *,
        seed: int = 0,
        **params: Any,
    ) -> "ExtractionResult":
        """Run one registered approach on one series, grid-validated.

        Raises :class:`~repro.errors.RegistryError` before extraction when
        the series resolution does not meet the approach's declared input
        grid (e.g. appliance-level approaches hard-require 1-minute data).
        """
        import numpy as np

        self.validate_input_grid(approach, series)
        from repro.api.registry import create_extractor

        extractor = create_extractor(approach, **params)
        return extractor.extract(series, np.random.default_rng(seed))

    @staticmethod
    def validate_input_grid(approach: str, series: "TimeSeries") -> None:
        """Check a series' resolution against an approach's declared grid."""
        from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE

        entry = get_entry(approach)
        if not entry.strict_grid:
            return
        required = ONE_MINUTE if entry.input == "total" else FIFTEEN_MINUTES
        if series.axis.resolution != required:
            have = series.axis.resolution
            raise RegistryError(
                f"approach {approach!r} requires input on the "
                f"{int(required.total_seconds() // 60)}-minute grid, got "
                f"{have} resolution; resample the series or use "
                f"`repro simulate --grid total` for 1-minute data"
            )


def build_schedule_target(spec: RunSpec) -> "TimeSeries | ZonedTarget | None":
    """Synthesise a spec's schedule-stage target outside a service run.

    The public face of the target builders above, for drivers that execute
    specs without going through :meth:`FlexibilityService.run` — the
    session replay driver (``repro session --replay``) being the one that
    must build the *same* target a one-shot run would, or its equivalence
    oracle means nothing.  Returns ``None`` when the spec has no schedule
    stage.
    """
    if spec.pipeline.schedule is None:
        return None
    return FlexibilityService()._build_target(spec)

"""Declarative, versioned run specs: describe a whole run as data.

MIRABEL's vision (paper §6) is a *system* that continuously turns metered
series into flex-offers; operating such a system means a run must be
describable, storable and replayable without code.  A :class:`RunSpec` is
that description: which fleet to simulate (:class:`ScenarioSpec`), which
registered approaches to run with which parameters
(:class:`ExtractorSpec`), and how to batch/group the fleet execution
(:class:`PipelineSpec`).

All spec classes are frozen dataclasses with strict ``to_dict`` /
``from_dict`` / JSON round-trips: unknown keys, wrong types and
unsupported versions raise :class:`~repro.errors.SpecError` naming the
offending path, and ``RunSpec.from_dict(spec.to_dict()) == spec`` holds
for every valid spec (property-tested).

Example spec file (``examples/specs/smoke.json``)::

    {
      "version": 1,
      "kind": "fleet",
      "scenario": {"households": 2, "days": 1, "seed": 7},
      "extractors": [
        {"name": "peak-based", "params": {"flexible_share": 0.05}},
        {"name": "frequency-based"}
      ],
      "pipeline": {"chunk_size": 4}
    }
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace
from datetime import datetime, timedelta
from pathlib import Path
from types import MappingProxyType
from typing import Any

from repro.errors import SpecError

#: Wire-format version of the spec layer; bump on incompatible change.
SPEC_VERSION = 1

#: Run kinds the service knows how to route (see repro.api.service).
RUN_KINDS: tuple[str, ...] = ("fleet", "compare", "bench")

#: Default scenario anchor — Monday 2012-03-05, the paper-week start shared
#: with repro.workloads.scenarios.SCENARIO_START (duplicated here so the
#: spec layer stays import-light).
DEFAULT_START = datetime(2012, 3, 5)


def _require_keys(data: Mapping[str, Any], allowed: tuple[str, ...], where: str) -> None:
    if not isinstance(data, Mapping):
        raise SpecError(f"{where}: expected a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(repr(k) for k in unknown)}; "
            f"allowed: {', '.join(allowed)}"
        )


def _require_type(value: Any, types: tuple[type, ...], where: str) -> Any:
    if isinstance(value, bool) and bool not in types:
        raise SpecError(f"{where}: expected {_type_names(types)}, got bool")
    if not isinstance(value, types):
        raise SpecError(
            f"{where}: expected {_type_names(types)}, got {type(value).__name__}"
        )
    return value


def _type_names(types: tuple[type, ...]) -> str:
    return "/".join(t.__name__ for t in types)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Which simulated fleet a run operates on.

    The simulation is fully deterministic in (households, days, seed,
    start), so a scenario spec *is* the dataset identity.
    """

    households: int = 4
    days: int = 7
    seed: int = 0
    start: datetime = DEFAULT_START

    def __post_init__(self) -> None:
        if self.households < 1:
            raise SpecError("scenario.households must be >= 1")
        if self.days < 1:
            raise SpecError("scenario.days must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "households": self.households,
            "days": self.days,
            "seed": self.seed,
            "start": self.start.isoformat(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        _require_keys(data, ("households", "days", "seed", "start"), "scenario")
        kwargs: dict[str, Any] = {}
        for key in ("households", "days", "seed"):
            if key in data:
                kwargs[key] = _require_type(data[key], (int,), f"scenario.{key}")
        if "start" in data:
            raw = _require_type(data["start"], (str,), "scenario.start")
            try:
                kwargs["start"] = datetime.fromisoformat(raw)
            except ValueError as exc:
                raise SpecError(f"scenario.start: {exc}") from exc
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class ExtractorSpec:
    """One registered approach plus its flat parameter overrides.

    ``params`` values must be JSON scalars (or lists thereof); they are
    routed through :func:`repro.api.registry.create_extractor`, which
    owns the name→class mapping and parameter validation.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("extractor.name must be a non-empty string")
        if not isinstance(self.params, Mapping):
            raise SpecError("extractor.params must be a mapping")
        # Freeze the parameter mapping so the spec is immutable end to end.
        # (MappingProxyType compares by underlying dict, so dataclass
        # equality — and the round-trip property — still hold.)
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    def create(self):
        """Instantiate via the registry (the only construction path)."""
        from repro.api.registry import create_extractor

        return create_extractor(self.name, **dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExtractorSpec":
        _require_keys(data, ("name", "params"), "extractor")
        if "name" not in data:
            raise SpecError("extractor: missing required key 'name'")
        name = _require_type(data["name"], (str,), "extractor.name")
        params = data.get("params", {})
        _require_type(params, (Mapping,), "extractor.params")
        return cls(name=name, params=dict(params))


#: Target-series kinds the schedule stage can synthesise declaratively.
SCHEDULE_TARGETS: tuple[str, ...] = ("wind", "flat")

#: Placement orders / engines — mirror ``repro.scheduling.greedy`` (kept in
#: sync by a test; duplicated here so the spec layer stays import-light).
SCHEDULE_ORDERS: tuple[str, ...] = ("least-flexible-first", "largest-first", "as-given")
SCHEDULE_ENGINES: tuple[str, ...] = ("vectorized", "incremental", "reference", "auto")

#: Market-clearing engines — mirror ``repro.market.model.MARKET_ENGINES``
#: (kept in sync by a test; duplicated so the spec layer stays import-light).
MARKET_ENGINES: tuple[str, ...] = ("reference", "vectorized")

#: Risk measures — mirror ``repro.scheduling.robust.RISK_MEASURES`` (kept
#: in sync by a test; duplicated so the spec layer stays import-light).
ROBUST_RISKS: tuple[str, ...] = ("expected", "cvar")


@dataclass(frozen=True, slots=True)
class MarketSpec:
    """The declarative merit-order clearing stage of a zoned schedule.

    Mirrors :class:`repro.market.model.MarketConfig`: the target axis is
    divided into ``slices`` uniform market periods (one uniform clearing
    price each), ``coupling_kwh`` bounds the cross-zone spill pass (0
    disables it) and ``engine`` picks the execution plan.  Requires zones
    with real price bands (``price_floor < price_cap``) — the scheduler
    rejects clearing on unpriced zones.
    """

    slices: int = 8
    coupling_kwh: float = 0.0
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise SpecError(
                f"schedule.market.slices must be >= 1, got {self.slices}"
            )
        if self.coupling_kwh < 0:
            raise SpecError(
                f"schedule.market.coupling_kwh must be >= 0, "
                f"got {self.coupling_kwh}"
            )
        if self.engine not in MARKET_ENGINES:
            raise SpecError(
                f"schedule.market.engine must be one of "
                f"{', '.join(MARKET_ENGINES)}, got {self.engine!r}"
            )

    def config(self):
        """The stage configuration as the market layer's own dataclass."""
        from repro.market.model import MarketConfig

        return MarketConfig(
            slices=self.slices,
            coupling_kwh=self.coupling_kwh,
            engine=self.engine,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "slices": self.slices,
            "coupling_kwh": self.coupling_kwh,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MarketSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline.schedule.market")
        kwargs: dict[str, Any] = {}
        if "slices" in data:
            kwargs["slices"] = _require_type(
                data["slices"], (int,), "pipeline.schedule.market.slices"
            )
        if "coupling_kwh" in data:
            kwargs["coupling_kwh"] = float(
                _require_type(
                    data["coupling_kwh"],
                    (int, float),
                    "pipeline.schedule.market.coupling_kwh",
                )
            )
        if "engine" in data:
            kwargs["engine"] = _require_type(
                data["engine"], (str,), "pipeline.schedule.market.engine"
            )
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class RobustSpec:
    """The declarative uncertainty-aware mode of the schedule stage.

    Mirrors :class:`repro.scheduling.robust.RobustConfig`: placements are
    scored against a quantile scenario fan instead of the point target
    alone.  ``quantiles`` are the fan's levels (strictly increasing, in
    ``(0, 1)``), ``risk`` aggregates the per-scenario gains
    (``"expected"`` weights them by level mass, ``"cvar"`` plans for the
    worst ``alpha`` tail), and ``sigma`` is the relative spread of the
    fan the service synthesises around the target when no explicit
    forecast fan is supplied.  Plain (non-zoned) targets only.
    """

    quantiles: tuple[float, ...] = (0.1, 0.5, 0.9)
    risk: str = "expected"
    alpha: float = 0.3
    sigma: float = 0.25

    def __post_init__(self) -> None:
        if not isinstance(self.quantiles, tuple):
            object.__setattr__(self, "quantiles", tuple(self.quantiles))
        if not self.quantiles:
            raise SpecError("schedule.robust.quantiles must be non-empty")
        for level in self.quantiles:
            if not 0.0 < level < 1.0:
                raise SpecError(
                    f"schedule.robust.quantiles must lie in (0, 1), got {level}"
                )
        if any(b <= a for a, b in zip(self.quantiles, self.quantiles[1:])):
            raise SpecError(
                "schedule.robust.quantiles must be strictly increasing, "
                f"got {self.quantiles}"
            )
        if self.risk not in ROBUST_RISKS:
            raise SpecError(
                f"schedule.robust.risk must be one of {', '.join(ROBUST_RISKS)}, "
                f"got {self.risk!r}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise SpecError(
                f"schedule.robust.alpha must be in (0, 1], got {self.alpha}"
            )
        if self.sigma < 0:
            raise SpecError(f"schedule.robust.sigma must be >= 0, got {self.sigma}")

    def config(self):
        """The mode configuration as the scheduling layer's own dataclass."""
        from repro.scheduling.robust import RobustConfig

        return RobustConfig(
            quantiles=self.quantiles,
            risk=self.risk,
            alpha=self.alpha,
            sigma=self.sigma,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "quantiles": list(self.quantiles),
            "risk": self.risk,
            "alpha": self.alpha,
            "sigma": self.sigma,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RobustSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline.schedule.robust")
        kwargs: dict[str, Any] = {}
        if "quantiles" in data:
            raw = _require_type(
                data["quantiles"], (list, tuple), "pipeline.schedule.robust.quantiles"
            )
            kwargs["quantiles"] = tuple(
                float(
                    _require_type(
                        q, (int, float), "pipeline.schedule.robust.quantiles[]"
                    )
                )
                for q in raw
            )
        if "risk" in data:
            kwargs["risk"] = _require_type(
                data["risk"], (str,), "pipeline.schedule.robust.risk"
            )
        for key in ("alpha", "sigma"):
            if key in data:
                kwargs[key] = float(
                    _require_type(
                        data[key], (int, float), f"pipeline.schedule.robust.{key}"
                    )
                )
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class ZoneSpec:
    """One declarative market zone of a zoned schedule stage.

    The zone's demand profile is synthesised from the enclosing
    :class:`ScheduleSpec`'s ``target`` kind and this zone's own
    ``target_seed``; ``target_kwh`` (when given) rescales the zone's total
    energy.  ``price_floor``/``price_cap`` bound the zone's clearing price
    (EUR/kWh): with a :class:`MarketSpec` they define the zone's supply
    ramp and bid band, otherwise they are reporting metadata.
    ``households`` lists the consumer ids
    routed to this zone by the explicit assignment policy; households not
    listed under any zone fall back to the deterministic hash shard (see
    :func:`repro.scheduling.zones.assign_zone`).
    """

    name: str
    target_seed: int = 0
    target_kwh: float | None = None
    price_floor: float = 0.0
    price_cap: float = 0.0
    households: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("zone.name must be a non-empty string")
        if self.target_kwh is not None and self.target_kwh <= 0:
            raise SpecError(f"zone {self.name!r}: target_kwh must be > 0 (or null)")
        if self.price_floor < 0 or self.price_cap < 0:
            raise SpecError(f"zone {self.name!r}: prices must be >= 0")
        if self.price_cap < self.price_floor:
            raise SpecError(
                f"zone {self.name!r}: price_cap below price_floor"
            )
        if not isinstance(self.households, tuple):
            object.__setattr__(self, "households", tuple(self.households))
        if len(set(self.households)) != len(self.households):
            raise SpecError(
                f"zone {self.name!r}: duplicate household(s) in households"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "target_seed": self.target_seed,
            "target_kwh": self.target_kwh,
            "price_floor": self.price_floor,
            "price_cap": self.price_cap,
            "households": list(self.households),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ZoneSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline.schedule.zone")
        if "name" not in data:
            raise SpecError("pipeline.schedule.zone: missing required key 'name'")
        kwargs: dict[str, Any] = {
            "name": _require_type(data["name"], (str,), "pipeline.schedule.zone.name")
        }
        if "target_seed" in data:
            kwargs["target_seed"] = _require_type(
                data["target_seed"], (int,), "pipeline.schedule.zone.target_seed"
            )
        if "target_kwh" in data and data["target_kwh"] is not None:
            kwargs["target_kwh"] = float(
                _require_type(
                    data["target_kwh"],
                    (int, float),
                    "pipeline.schedule.zone.target_kwh",
                )
            )
        for key in ("price_floor", "price_cap"):
            if key in data:
                kwargs[key] = float(
                    _require_type(
                        data[key], (int, float), f"pipeline.schedule.zone.{key}"
                    )
                )
        if "households" in data:
            raw = _require_type(
                data["households"], (list, tuple), "pipeline.schedule.zone.households"
            )
            kwargs["households"] = tuple(
                _require_type(h, (str,), "pipeline.schedule.zone.households[]")
                for h in raw
            )
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class ScheduleSpec:
    """The declarative schedule stage: place fleet aggregates on a target.

    The target series is synthesised deterministically from the spec —
    ``"wind"`` simulates RES production on the scenario's metering axis
    from ``target_seed``, ``"flat"`` is a constant series — and
    ``target_kwh`` (when given) rescales its total energy.  A non-empty
    ``zones`` tuple turns the stage into a zone-sharded multi-market run
    (one synthesised target per :class:`ZoneSpec`; ``target_seed`` and
    ``target_kwh`` then apply per zone and the top-level ones are unused);
    the wire format omits the key when absent, so pre-zone spec files and
    goldens keep loading unchanged.  A non-null ``market`` additionally
    runs merit-order clearing before placement (zoned runs only; the key
    is likewise omitted when absent).  A non-null ``robust``
    (:class:`RobustSpec`) scores placements against a quantile scenario
    fan — the service synthesises the fan from a quantile forecast of the
    target (plain targets only; the key is omitted when absent).  The
    remaining fields mirror :class:`repro.scheduling.greedy.ScheduleConfig`.
    """

    target: str = "wind"
    target_seed: int = 2
    target_kwh: float | None = None
    order: str = "least-flexible-first"
    engine: str = "vectorized"
    improve_iterations: int = 0
    improve_seed: int = 0
    zones: tuple[ZoneSpec, ...] = ()
    market: MarketSpec | None = None
    robust: RobustSpec | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.zones, tuple):
            object.__setattr__(self, "zones", tuple(self.zones))
        names = [zone.name for zone in self.zones]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate zone names: {', '.join(names)}")
        routed: set[str] = set()
        for zone in self.zones:
            doubled = routed & set(zone.households)
            if doubled:
                raise SpecError(
                    f"household(s) {', '.join(sorted(doubled))} assigned to "
                    f"more than one zone"
                )
            routed |= set(zone.households)
        if self.target not in SCHEDULE_TARGETS:
            raise SpecError(
                f"schedule.target must be one of {', '.join(SCHEDULE_TARGETS)}, "
                f"got {self.target!r}"
            )
        if self.order not in SCHEDULE_ORDERS:
            raise SpecError(
                f"schedule.order must be one of {', '.join(SCHEDULE_ORDERS)}, "
                f"got {self.order!r}"
            )
        if self.engine not in SCHEDULE_ENGINES:
            raise SpecError(
                f"schedule.engine must be one of {', '.join(SCHEDULE_ENGINES)}, "
                f"got {self.engine!r}"
            )
        if self.target_kwh is not None and self.target_kwh <= 0:
            raise SpecError("schedule.target_kwh must be > 0 (or null)")
        if self.improve_iterations < 0:
            raise SpecError("schedule.improve_iterations must be >= 0")
        if self.market is not None and not self.zones:
            raise SpecError(
                "schedule.market requires schedule.zones: merit-order "
                "clearing runs on zoned targets only"
            )
        if self.robust is not None:
            if self.zones:
                raise SpecError(
                    "schedule.robust applies to plain targets only; zoned "
                    "markets keep point scheduling"
                )
            if self.engine == "incremental":
                raise SpecError(
                    "schedule.robust supports the vectorized and reference "
                    'engines (and "auto"); the incremental engine is '
                    "point-target only"
                )

    def config(self):
        """The stage configuration as the scheduling layer's own dataclass."""
        from repro.scheduling.greedy import ScheduleConfig

        return ScheduleConfig(
            order=self.order,
            engine=self.engine,
            improve_iterations=self.improve_iterations,
            improve_seed=self.improve_seed,
            market=None if self.market is None else self.market.config(),
            robust=None if self.robust is None else self.robust.config(),
        )

    def to_dict(self) -> dict[str, Any]:
        encoded: dict[str, Any] = {
            "target": self.target,
            "target_seed": self.target_seed,
            "target_kwh": self.target_kwh,
            "order": self.order,
            "engine": self.engine,
            "improve_iterations": self.improve_iterations,
            "improve_seed": self.improve_seed,
        }
        if self.zones:
            encoded["zones"] = [zone.to_dict() for zone in self.zones]
        if self.market is not None:
            encoded["market"] = self.market.to_dict()
        if self.robust is not None:
            encoded["robust"] = self.robust.to_dict()
        return encoded

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline.schedule")
        kwargs: dict[str, Any] = {}
        for key in ("target", "order", "engine"):
            if key in data:
                kwargs[key] = _require_type(
                    data[key], (str,), f"pipeline.schedule.{key}"
                )
        for key in ("target_seed", "improve_iterations", "improve_seed"):
            if key in data:
                kwargs[key] = _require_type(
                    data[key], (int,), f"pipeline.schedule.{key}"
                )
        if "target_kwh" in data and data["target_kwh"] is not None:
            kwargs["target_kwh"] = float(
                _require_type(
                    data["target_kwh"], (int, float), "pipeline.schedule.target_kwh"
                )
            )
        if "zones" in data:
            raw = _require_type(
                data["zones"], (list, tuple), "pipeline.schedule.zones"
            )
            kwargs["zones"] = tuple(ZoneSpec.from_dict(z) for z in raw)
        if "market" in data and data["market"] is not None:
            market = _require_type(
                data["market"], (Mapping,), "pipeline.schedule.market"
            )
            kwargs["market"] = MarketSpec.from_dict(market)
        if "robust" in data and data["robust"] is not None:
            robust = _require_type(
                data["robust"], (Mapping,), "pipeline.schedule.robust"
            )
            kwargs["robust"] = RobustSpec.from_dict(robust)
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class SessionSpec:
    """The declarative rolling-horizon session stage.

    Configures :class:`repro.session.FlexibilitySession` for replay-driven
    runs (``repro session --replay``): ``commit_horizon_minutes`` is the
    window ahead of the data watermark inside which every replan freezes
    its placements (``null`` never auto-commits — the setting under which
    a fully ingested session bit-reproduces the one-shot pipeline).  Like
    :class:`MarketSpec`, the wire format omits the whole key when the
    stage is absent, so pre-session spec files keep loading unchanged.

    ``journal_snapshot_every`` tunes the durable journal (``repro session
    --journal DIR``): how many replans pass between WAL snapshot
    compactions.  ``null`` takes the journal layer's default; the wire
    format omits the key when unset, so existing spec files and goldens
    keep loading (and re-encoding) unchanged.
    """

    commit_horizon_minutes: int | None = None
    journal_snapshot_every: int | None = None

    def __post_init__(self) -> None:
        if self.commit_horizon_minutes is not None and self.commit_horizon_minutes < 0:
            raise SpecError(
                "pipeline.session.commit_horizon_minutes must be >= 0 (or null), "
                f"got {self.commit_horizon_minutes}"
            )
        if self.journal_snapshot_every is not None and self.journal_snapshot_every < 1:
            raise SpecError(
                "pipeline.session.journal_snapshot_every must be >= 1 (or null), "
                f"got {self.journal_snapshot_every}"
            )

    def commit_horizon(self) -> timedelta | None:
        """The horizon as the session layer's own unit."""
        if self.commit_horizon_minutes is None:
            return None
        return timedelta(minutes=self.commit_horizon_minutes)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"commit_horizon_minutes": self.commit_horizon_minutes}
        if self.journal_snapshot_every is not None:
            data["journal_snapshot_every"] = self.journal_snapshot_every
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline.session")
        kwargs: dict[str, Any] = {}
        for key in ("commit_horizon_minutes", "journal_snapshot_every"):
            if key in data and data[key] is not None:
                kwargs[key] = _require_type(
                    data[key], (int,), f"pipeline.session.{key}"
                )
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class PipelineSpec:
    """How the fleet execution is batched, fanned out, grouped — and,
    optionally, scheduled.

    Mirrors :class:`repro.pipeline.FleetPipeline` plus the
    :class:`repro.aggregation.grouping.GroupingParams` grid, in
    JSON-scalar units (minutes for the grouping tolerances).  A non-null
    ``schedule`` enables the market-facing schedule stage; a non-null
    ``session`` configures the rolling-horizon replay session.  Either key
    is omitted from the wire format when absent so pre-schedule (and
    pre-session) spec files and goldens keep loading unchanged.
    """

    chunk_size: int = 8
    workers: int | None = None
    start_tolerance_minutes: int = 120
    flexibility_tolerance_minutes: int = 240
    max_group_size: int = 64
    schedule: ScheduleSpec | None = None
    session: SessionSpec | None = None

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise SpecError("pipeline.chunk_size must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise SpecError("pipeline.workers must be >= 1 (or null)")
        if self.start_tolerance_minutes < 1:
            raise SpecError("pipeline.start_tolerance_minutes must be >= 1")
        if self.flexibility_tolerance_minutes < 1:
            raise SpecError("pipeline.flexibility_tolerance_minutes must be >= 1")
        if self.max_group_size < 1:
            raise SpecError("pipeline.max_group_size must be >= 1")

    def grouping_params(self):
        """The grouping grid as the aggregation layer's own dataclass."""
        from repro.aggregation.grouping import GroupingParams

        return GroupingParams(
            start_tolerance=timedelta(minutes=self.start_tolerance_minutes),
            flexibility_tolerance=timedelta(minutes=self.flexibility_tolerance_minutes),
            max_group_size=self.max_group_size,
        )

    def to_dict(self) -> dict[str, Any]:
        encoded: dict[str, Any] = {
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "start_tolerance_minutes": self.start_tolerance_minutes,
            "flexibility_tolerance_minutes": self.flexibility_tolerance_minutes,
            "max_group_size": self.max_group_size,
        }
        if self.schedule is not None:
            encoded["schedule"] = self.schedule.to_dict()
        if self.session is not None:
            encoded["session"] = self.session.to_dict()
        return encoded

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        allowed = tuple(f.name for f in fields(cls))
        _require_keys(data, allowed, "pipeline")
        kwargs: dict[str, Any] = {}
        for key in allowed:
            if key not in data:
                continue
            value = data[key]
            if key == "schedule":
                kwargs[key] = None if value is None else ScheduleSpec.from_dict(value)
            elif key == "session":
                kwargs[key] = None if value is None else SessionSpec.from_dict(value)
            elif key == "workers" and value is None:
                kwargs[key] = None
            else:
                kwargs[key] = _require_type(value, (int,), f"pipeline.{key}")
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class RunSpec:
    """A complete, replayable simulate→extract→group→aggregate run."""

    kind: str = "fleet"
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    extractors: tuple[ExtractorSpec, ...] = (ExtractorSpec("frequency-based"),)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    name: str = ""
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.version != SPEC_VERSION:
            raise SpecError(
                f"unsupported run-spec version {self.version!r} "
                f"(this build reads version {SPEC_VERSION})"
            )
        if self.kind not in RUN_KINDS:
            raise SpecError(
                f"kind must be one of {', '.join(RUN_KINDS)}, got {self.kind!r}"
            )
        if not isinstance(self.extractors, tuple):
            object.__setattr__(self, "extractors", tuple(self.extractors))
        if not self.extractors:
            raise SpecError("a run spec needs at least one extractor")

    def with_overrides(self, **changes: Any) -> "RunSpec":
        """A copy with top-level fields replaced (CLI flag overrides)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "kind": self.kind,
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "extractors": [e.to_dict() for e in self.extractors],
            "pipeline": self.pipeline.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        _require_keys(
            data,
            ("version", "kind", "name", "scenario", "extractors", "pipeline"),
            "run spec",
        )
        kwargs: dict[str, Any] = {}
        if "version" in data:
            kwargs["version"] = _require_type(data["version"], (int,), "run spec.version")
        if "kind" in data:
            kwargs["kind"] = _require_type(data["kind"], (str,), "run spec.kind")
        if "name" in data:
            kwargs["name"] = _require_type(data["name"], (str,), "run spec.name")
        if "scenario" in data:
            kwargs["scenario"] = ScenarioSpec.from_dict(data["scenario"])
        if "extractors" in data:
            raw = _require_type(data["extractors"], (list, tuple), "run spec.extractors")
            kwargs["extractors"] = tuple(ExtractorSpec.from_dict(e) for e in raw)
        if "pipeline" in data:
            kwargs["pipeline"] = PipelineSpec.from_dict(data["pipeline"])
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"run spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def load_run_spec(path: str | Path) -> RunSpec:
    """Read a :class:`RunSpec` from a JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SpecError(f"cannot read run spec {path}: {exc}") from exc
    return RunSpec.from_json(text)


def save_run_spec(spec: RunSpec, path: str | Path) -> None:
    """Write a :class:`RunSpec` to a JSON file."""
    Path(path).write_text(spec.to_json() + "\n")

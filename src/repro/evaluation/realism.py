"""Realism statistics for extracted flex-offers (the paper's missing §).

Paper §3.1: "There exist no real flex-offers in the world, thus, the
statistics (e.g., correlation, sparseness, autocorrelation) of the output of
flexibility extraction cannot be evaluated."  With simulator ground truth
they *can*; this module computes exactly those statistics plus the load-shape
indicators the paper's argument relies on (peak alignment, temporal
dispersion — "macro flex-offers are more or less uniformly dispatched within
the day" is the failure it attributes to the random baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.groundtruth import EnergyOverlap, energy_overlap
from repro.extraction.base import ExtractionResult
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.schedule import default_schedule, schedules_to_series
from repro.timeseries.axis import TimeAxis
from repro.timeseries.resample import downsample_sum
from repro.timeseries.series import TimeSeries
from repro.timeseries.stats import (
    autocorrelation,
    correlation,
    sparseness,
    temporal_dispersion,
)


def offers_to_expected_series(offers: list[FlexOffer], axis: TimeAxis) -> TimeSeries:
    """Render offers at their earliest start with midpoint energies.

    This is the "expected consumption" view of a set of flex-offers — the
    natural series to compare against the consumption they were extracted
    from.  Offers whose profile would overrun the axis are clipped out.
    """
    schedules = []
    for offer in offers:
        if not axis.contains(offer.earliest_start):
            continue
        if axis.index_of(offer.earliest_start) + offer.profile_intervals > axis.length:
            continue
        schedules.append(default_schedule(offer))
    return schedules_to_series(schedules, axis, name="offers-expected")


@dataclass(frozen=True, slots=True)
class RealismReport:
    """The §3.1 statistics for one extraction run."""

    extractor: str
    offers: int
    extracted_share: float
    conservation_error_kwh: float
    correlation_with_consumption: float
    sparseness: float
    day_autocorrelation: float
    temporal_dispersion_intervals: float
    peak_energy_fraction: float
    mean_time_flexibility_hours: float
    overlap: EnergyOverlap | None = None

    def row(self) -> dict[str, float | str]:
        """Flat dict for tabular reports."""
        out: dict[str, float | str] = {
            "extractor": self.extractor,
            "offers": self.offers,
            "share": round(self.extracted_share, 4),
            "conservation_err": round(self.conservation_error_kwh, 6),
            "corr_consumption": round(self.correlation_with_consumption, 3),
            "sparseness": round(self.sparseness, 3),
            "day_autocorr": round(self.day_autocorrelation, 3),
            "dispersion": round(self.temporal_dispersion_intervals, 2),
            "peak_fraction": round(self.peak_energy_fraction, 3),
            "mean_flex_h": round(self.mean_time_flexibility_hours, 2),
        }
        if self.overlap is not None:
            out["gt_precision"] = round(self.overlap.precision, 3)
            out["gt_recall"] = round(self.overlap.recall, 3)
            out["gt_f1"] = round(self.overlap.f1, 3)
        return out


def peak_energy_fraction(extracted: TimeSeries, consumption: TimeSeries, quantile: float = 0.75) -> float:
    """Fraction of extracted energy lying in the consumption's peak intervals.

    Peak intervals are those above the given consumption quantile.  The
    peak-based approach should score high here by construction; the random
    baseline should score near the share of time that is peak (≈0.25).
    """
    extracted.axis.require_aligned(consumption.axis)
    threshold = float(np.quantile(consumption.values, quantile))
    mask = consumption.values >= threshold
    total = float(np.abs(extracted.values).sum())
    if total == 0.0:
        return 0.0
    return float(np.abs(extracted.values[mask]).sum() / total)


def realism_report(
    result: ExtractionResult,
    consumption_15min: TimeSeries | None = None,
    true_flexible_15min: TimeSeries | None = None,
) -> RealismReport:
    """Compute the realism statistics for one extraction result.

    ``consumption_15min`` defaults to the result's own original series; pass
    it explicitly for appliance-level extractors whose original series is on
    the 1-minute grid (it will be compared on the metering grid).
    ``true_flexible_15min`` enables the ground-truth overlap columns.
    """
    from repro.timeseries.axis import FIFTEEN_MINUTES

    consumption = consumption_15min
    if consumption is None:
        consumption = result.original
        if consumption.axis.resolution != FIFTEEN_MINUTES:
            consumption = downsample_sum(consumption, FIFTEEN_MINUTES)
    axis = consumption.axis

    expected = offers_to_expected_series(result.offers, axis)
    per_day = axis.intervals_per_day
    day_lag_ok = axis.length > per_day
    flex_hours = [
        offer.time_flexibility.total_seconds() / 3600.0 for offer in result.offers
    ]
    overlap = (
        energy_overlap(expected, true_flexible_15min)
        if true_flexible_15min is not None
        else None
    )
    return RealismReport(
        extractor=result.extractor,
        offers=len(result.offers),
        extracted_share=result.extracted_share,
        conservation_error_kwh=result.energy_conservation_error(),
        correlation_with_consumption=(
            correlation(expected, consumption) if len(axis) >= 2 else 0.0
        ),
        sparseness=sparseness(expected) if len(axis) >= 2 else 0.0,
        day_autocorrelation=(
            autocorrelation(expected, per_day) if day_lag_ok else 0.0
        ),
        temporal_dispersion_intervals=temporal_dispersion(expected),
        peak_energy_fraction=peak_energy_fraction(expected, consumption),
        mean_time_flexibility_hours=float(np.mean(flex_hours)) if flex_hours else 0.0,
        overlap=overlap,
    )


def format_table(rows: list[dict[str, float | str]]) -> str:
    """Render dict rows as an aligned text table (benchmark output)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    divider = "  ".join("-" * widths[c] for c in columns)
    lines = [header, divider]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)

"""Scoring detections and extractions against simulator ground truth.

The paper could not evaluate extraction quality ("there exist no real
flex-offers in the world, thus the statistics ... cannot be evaluated",
§3.1).  Our simulator retains ground truth, so this module provides the
missing yardsticks: event-level precision/recall for disaggregation, and
energy-level overlap scores for extracted flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.simulation.activations import Activation
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class MatchReport:
    """Event-level detection quality: matched pairs and P/R/F1."""

    true_positives: int
    false_positives: int
    false_negatives: int
    start_error_minutes: float
    energy_error_kwh: float

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was detected."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was there to detect."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def match_activations(
    detected: list[Activation],
    truth: list[Activation],
    start_tolerance: timedelta = timedelta(minutes=20),
    same_appliance: bool = True,
) -> MatchReport:
    """Greedy one-to-one matching of detections to ground-truth events.

    A detection matches a truth event when (optionally) the appliance name
    agrees and the start times differ by at most ``start_tolerance``.  Each
    truth event is consumed by at most one detection (closest-first), so
    duplicate detections count as false positives.
    """
    remaining = list(range(len(truth)))
    tp = 0
    start_errors: list[float] = []
    energy_errors: list[float] = []
    for det in sorted(detected, key=lambda a: a.start):
        best_idx = None
        best_gap = None
        for idx in remaining:
            t = truth[idx]
            if same_appliance and t.appliance != det.appliance:
                continue
            gap = abs((t.start - det.start).total_seconds())
            if gap <= start_tolerance.total_seconds() and (
                best_gap is None or gap < best_gap
            ):
                best_idx, best_gap = idx, gap
        if best_idx is not None:
            remaining.remove(best_idx)
            tp += 1
            start_errors.append(best_gap / 60.0)
            energy_errors.append(abs(truth[best_idx].energy_kwh - det.energy_kwh))
    return MatchReport(
        true_positives=tp,
        false_positives=len(detected) - tp,
        false_negatives=len(remaining),
        start_error_minutes=float(np.mean(start_errors)) if start_errors else 0.0,
        energy_error_kwh=float(np.mean(energy_errors)) if energy_errors else 0.0,
    )


@dataclass(frozen=True, slots=True)
class EnergyOverlap:
    """Energy-level agreement between an extracted and a true flexible series."""

    overlap_kwh: float
    extracted_kwh: float
    true_kwh: float

    @property
    def precision(self) -> float:
        """Fraction of extracted energy that is truly flexible."""
        return self.overlap_kwh / self.extracted_kwh if self.extracted_kwh else 1.0

    @property
    def recall(self) -> float:
        """Fraction of truly flexible energy that was extracted."""
        return self.overlap_kwh / self.true_kwh if self.true_kwh else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of energy precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def energy_overlap(extracted: TimeSeries, truth: TimeSeries) -> EnergyOverlap:
    """Interval-wise overlap: sum of min(extracted, truth) per interval."""
    extracted.axis.require_aligned(truth.axis)
    overlap = float(np.minimum(extracted.values, truth.values).clip(min=0.0).sum())
    return EnergyOverlap(
        overlap_kwh=overlap,
        extracted_kwh=float(extracted.values.clip(min=0.0).sum()),
        true_kwh=float(truth.values.clip(min=0.0).sum()),
    )

"""Head-to-head comparison of all extraction approaches on one dataset.

Operationalises the paper's qualitative ranking (§6: appliance-level >
household-level > random, with the multi-tariff approach "very realistic"
but data-hungry) into a reproducible table: run every approach on the same
simulated households and collect the §3.1 realism statistics against ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import create_extractor
from repro.api.registry import input_series_for as _registry_input_series_for
from repro.evaluation.realism import RealismReport, realism_report
from repro.extraction.base import FlexibilityExtractor
from repro.flexoffer.model import FlexOffer
from repro.simulation.household import HouseholdTrace

#: Seed stride between households; shared with repro.pipeline so batched
#: runs reproduce this harness's per-household rng streams exactly.
SEED_STRIDE = 7919

#: Registry names of the default comparison suite, in report order.
DEFAULT_SUITE: tuple[str, ...] = (
    "random-baseline",
    "basic",
    "peak-based",
    "frequency-based",
    "schedule-based",
)


def default_suite(flexible_share: float = 0.05) -> list[FlexibilityExtractor]:
    """The comparison suite: both household approaches, both appliance
    approaches, and the random baseline, resolved via the registry.  (The
    multi-tariff approach needs paired tariff data and is evaluated
    separately — see the multitariff bench.)"""
    extractors: list[FlexibilityExtractor] = [create_extractor("random-baseline")]
    extractors.extend(
        create_extractor(name, flexible_share=flexible_share)
        for name in DEFAULT_SUITE[1:]
    )
    return extractors


@dataclass(frozen=True)
class ComparisonResult:
    """Per-extractor reports (one per household) plus averaged rows."""

    reports: dict[str, list[RealismReport]]

    def mean_rows(self) -> list[dict[str, float | str]]:
        """One averaged row per extractor, in suite order."""
        rows = []
        for name, reports in self.reports.items():
            if not reports:
                continue
            keys = [k for k in reports[0].row() if k != "extractor"]
            row: dict[str, float | str] = {"extractor": name}
            for key in keys:
                values = [float(r.row()[key]) for r in reports if key in r.row()]
                row[key] = round(float(np.mean(values)), 4) if values else float("nan")
            rows.append(row)
        return rows

    def get(self, extractor: str) -> list[RealismReport]:
        """All household reports of one extractor."""
        return self.reports[extractor]


def input_series_for(extractor: FlexibilityExtractor, trace: HouseholdTrace):
    """Pick the right input granularity for an extractor.

    Appliance-level approaches consume the 1-minute series (the paper's §4
    granularity requirement); household-level approaches and the random
    baseline consume the 15-minute metering series.  The decision comes
    from each approach's registry entry (its declared ``input`` kind).
    """
    return _registry_input_series_for(extractor, trace)


def compare_on_traces(
    traces: list[HouseholdTrace],
    extractors: list[FlexibilityExtractor] | None = None,
    seed: int = 0,
) -> ComparisonResult:
    """Run every extractor on every trace and score against ground truth."""
    extractors = extractors if extractors is not None else default_suite()
    reports: dict[str, list[RealismReport]] = {e.name: [] for e in extractors}
    for trace_index, trace in enumerate(traces):
        consumption = trace.metered()
        truth = trace.true_flexible()
        for extractor in extractors:
            rng = np.random.default_rng(seed + SEED_STRIDE * trace_index)
            series = input_series_for(extractor, trace)
            result = extractor.extract(series, rng)
            reports[extractor.name].append(
                realism_report(result, consumption, truth)
            )
    return ComparisonResult(reports=reports)


def collect_offers(
    traces: list[HouseholdTrace],
    extractor: FlexibilityExtractor,
    seed: int = 0,
) -> list[FlexOffer]:
    """All offers an extractor produces over a fleet (for MIRABEL benches)."""
    offers: list[FlexOffer] = []
    for trace_index, trace in enumerate(traces):
        rng = np.random.default_rng(seed + SEED_STRIDE * trace_index)
        series = input_series_for(extractor, trace)
        offers.extend(extractor.extract(series, rng).offers)
    return offers

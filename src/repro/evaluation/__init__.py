"""Evaluation: ground-truth scoring, realism statistics, approach comparison.

Scores extraction output against the simulator's per-appliance ground
truth (the measurement the paper could not make) and compares approaches
across fleets.

Subsystem contract:

* **Determinism** — household ``i`` always draws from
  ``default_rng(seed + SEED_STRIDE·i)``; the fleet pipeline reuses the
  same scheme, so evaluation and pipeline runs see identical extractions.
* **Registry-driven** — extractors are resolved by registry name and
  their input grid via :func:`input_series_for`; adding an approach to
  the registry automatically admits it to the comparison suite.
"""

from repro.evaluation.comparison import (
    ComparisonResult,
    collect_offers,
    compare_on_traces,
    default_suite,
    input_series_for,
)
from repro.evaluation.groundtruth import (
    EnergyOverlap,
    MatchReport,
    energy_overlap,
    match_activations,
)
from repro.evaluation.realism import (
    RealismReport,
    format_table,
    offers_to_expected_series,
    peak_energy_fraction,
    realism_report,
)

__all__ = [
    "ComparisonResult",
    "collect_offers",
    "compare_on_traces",
    "default_suite",
    "input_series_for",
    "EnergyOverlap",
    "MatchReport",
    "energy_overlap",
    "match_activations",
    "RealismReport",
    "format_table",
    "offers_to_expected_series",
    "peak_energy_fraction",
    "realism_report",
]

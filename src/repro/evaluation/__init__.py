"""Evaluation: ground-truth scoring, realism statistics, approach comparison."""

from repro.evaluation.comparison import (
    ComparisonResult,
    collect_offers,
    compare_on_traces,
    default_suite,
    input_series_for,
)
from repro.evaluation.groundtruth import (
    EnergyOverlap,
    MatchReport,
    energy_overlap,
    match_activations,
)
from repro.evaluation.realism import (
    RealismReport,
    format_table,
    offers_to_expected_series,
    peak_energy_fraction,
    realism_report,
)

__all__ = [
    "ComparisonResult",
    "collect_offers",
    "compare_on_traces",
    "default_suite",
    "input_series_for",
    "EnergyOverlap",
    "MatchReport",
    "energy_overlap",
    "match_activations",
    "RealismReport",
    "format_table",
    "offers_to_expected_series",
    "peak_energy_fraction",
    "realism_report",
]

"""repro — automated extraction of flexibilities from electricity time series.

A production-quality reproduction of Kaulakienė, Šikšnys & Pitarch,
"Towards the Automated Extraction of Flexibilities from Electricity Time
Series" (EDBT/ICDT Workshops 2013), including the MIRABEL substrates the
paper builds on: the flex-offer model, aggregation, scheduling, forecasting,
and a ground-truth household simulator standing in for the project's
unavailable trial data.

Quickstart::

    import numpy as np
    from repro import PeakBasedExtractor, FlexOfferParams
    from repro.workloads import figure5_day

    day = figure5_day()
    extractor = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05))
    result = extractor.extract(day.series, np.random.default_rng(0))
    print(result.offers)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.errors import (
    AggregationError,
    AxisMismatchError,
    DataError,
    ExtractionError,
    ReproError,
    ResolutionError,
    SchedulingError,
    ValidationError,
)
from repro.extraction import (
    BasicExtractor,
    ExtractionResult,
    FlexibilityExtractor,
    FlexOfferParams,
    FrequencyBasedExtractor,
    MultiTariffExtractor,
    PeakBasedExtractor,
    RandomBaselineExtractor,
    ScheduleBasedExtractor,
)
from repro.flexoffer import FlexOffer, ProfileSlice, ScheduledFlexOffer, figure1_flexoffer
from repro.pipeline import FleetPipeline, FleetResult, run_sequential
from repro.timeseries import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis, TimeSeries

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "AxisMismatchError",
    "DataError",
    "ExtractionError",
    "ReproError",
    "ResolutionError",
    "SchedulingError",
    "ValidationError",
    "BasicExtractor",
    "ExtractionResult",
    "FlexibilityExtractor",
    "FlexOfferParams",
    "FrequencyBasedExtractor",
    "MultiTariffExtractor",
    "PeakBasedExtractor",
    "RandomBaselineExtractor",
    "ScheduleBasedExtractor",
    "FlexOffer",
    "ProfileSlice",
    "ScheduledFlexOffer",
    "figure1_flexoffer",
    "FleetPipeline",
    "FleetResult",
    "run_sequential",
    "FIFTEEN_MINUTES",
    "ONE_MINUTE",
    "TimeAxis",
    "TimeSeries",
    "__version__",
]

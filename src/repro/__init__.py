"""repro — automated extraction of flexibilities from electricity time series.

A production-quality reproduction of Kaulakienė, Šikšnys & Pitarch,
"Towards the Automated Extraction of Flexibilities from Electricity Time
Series" (EDBT/ICDT Workshops 2013), including the MIRABEL substrates the
paper builds on: the flex-offer model, aggregation, scheduling, forecasting,
and a ground-truth household simulator standing in for the project's
unavailable trial data.

Quickstart (declarative, via the unified API)::

    from repro import FlexibilityService, RunSpec, ExtractorSpec

    spec = RunSpec(extractors=(ExtractorSpec("peak-based"),))
    report = FlexibilityService().run(spec)
    print(report.table_rows())

or imperative, one approach on one series::

    import numpy as np
    from repro import create_extractor
    from repro.workloads import figure5_day

    extractor = create_extractor("peak-based", flexible_share=0.05)
    result = extractor.extract(figure5_day().series, np.random.default_rng(0))
    print(result.offers)

See README.md for the approach registry table and the spec-file grammar,
docs/ARCHITECTURE.md for the package map and the registry/spec/report
flow, docs/PAPER_MAPPING.md for the paper-section → module table,
TESTING.md for the conformance matrix, and PERFORMANCE.md for the
measured hot paths (fleet pipeline, scheduling engines, zoned markets).
"""

from repro.errors import (
    AggregationError,
    AxisMismatchError,
    DataError,
    ExtractionError,
    ReproError,
    ResolutionError,
    SchedulingError,
    ValidationError,
)
from repro.extraction import (
    BasicExtractor,
    ExtractionResult,
    FlexibilityExtractor,
    FlexOfferParams,
    FrequencyBasedExtractor,
    MultiTariffExtractor,
    PeakBasedExtractor,
    RandomBaselineExtractor,
    ScheduleBasedExtractor,
)
from repro.api import (
    ExtractorSpec,
    FlexibilityService,
    PipelineSpec,
    RunReport,
    RunSpec,
    ScenarioSpec,
    available_extractors,
    create_extractor,
)
from repro.flexoffer import FlexOffer, ProfileSlice, ScheduledFlexOffer, figure1_flexoffer
from repro.pipeline import FleetPipeline, FleetResult, run_sequential
from repro.timeseries import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis, TimeSeries

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "AxisMismatchError",
    "DataError",
    "ExtractionError",
    "ReproError",
    "ResolutionError",
    "SchedulingError",
    "ValidationError",
    "BasicExtractor",
    "ExtractionResult",
    "FlexibilityExtractor",
    "FlexOfferParams",
    "FrequencyBasedExtractor",
    "MultiTariffExtractor",
    "PeakBasedExtractor",
    "RandomBaselineExtractor",
    "ScheduleBasedExtractor",
    "FlexOffer",
    "ProfileSlice",
    "ScheduledFlexOffer",
    "figure1_flexoffer",
    "ExtractorSpec",
    "FlexibilityService",
    "PipelineSpec",
    "RunReport",
    "RunSpec",
    "ScenarioSpec",
    "available_extractors",
    "create_extractor",
    "FleetPipeline",
    "FleetResult",
    "run_sequential",
    "FIFTEEN_MINUTES",
    "ONE_MINUTE",
    "TimeAxis",
    "TimeSeries",
    "__version__",
]

"""Deterministic test harnesses for the :mod:`repro` package.

Currently one member: :mod:`repro.testing.faults`, the fault-injection
harness behind the crash-recovery and worker-retry test suites.  Nothing
in here is imported by production code paths beyond cheap, env-gated
``fire()`` probes.
"""

from repro.testing.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    inject_faults,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "inject_faults",
]

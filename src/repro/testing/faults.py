"""Deterministic fault injection for crash-recovery and retry tests.

Fault-tolerance code is only trustworthy if its failure paths run on every
CI pass, so production code carries cheap, env-gated probes at the places
that can die in the wild::

    point               fired from                          typical mode
    ------------------- ----------------------------------- -------------
    fleet-chunk         extraction worker, per chunk         crash
    zone-worker         zone-scheduling worker, per zone     crash
    conformance-cell    conformance worker, per cell         crash
    shm-create          SharedFleetBuffer.create (owner)     oserror
    wal-append          SessionJournal record append         torn
    session-event       replay_session, per event            crash / kill

A probe is a no-op unless :data:`FAULTS_ENV_VAR` holds an encoded
:class:`FaultPlan` — the environment variable is the transport, so plans
armed in the coordinator reach forked pool workers and spawned CLI
subprocesses alike.  Every trigger is deterministic: a fault fires at an
exact ``(point, index)`` coordinate, and ``once=True`` faults fire exactly
one time across *all* processes via an ``O_CREAT | O_EXCL`` latch file —
which is what lets a retry re-dispatch the very chunk whose first worker
was killed and see it succeed.

Modes:

* ``crash`` — ``os._exit(CRASH_EXIT_CODE)``: a hard worker death (the
  executor sees :class:`~concurrent.futures.process.BrokenProcessPool`).
* ``kill`` — SIGKILL to the current process: the CI crash-recovery smoke
  uses this to murder ``repro session`` mid-stream.
* ``oserror`` — raises ``OSError(ENOSPC)``: a full ``/dev/shm``.
* ``error`` — raises :class:`InjectedFault`, an ordinary exception.
* ``hang`` — sleeps ``seconds``: a wedged worker, for timeout tests.
* ``torn`` — cooperative: :func:`torn_cut` tells the WAL writer to stop
  mid-record and raise :class:`InjectedCrash` (a ``BaseException``, so a
  stray ``except Exception`` cannot swallow the simulated death).
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

#: Environment variable carrying the encoded :class:`FaultPlan`.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit status of ``crash``-mode faults (distinctive, assertable).
CRASH_EXIT_CODE = 23

_MODES = ("crash", "kill", "oserror", "error", "hang", "torn")


class InjectedFault(RuntimeError):
    """An ordinary injected exception (``error`` mode)."""


class InjectedCrash(BaseException):
    """A simulated process death for in-process tests (``torn`` mode).

    Derives from ``BaseException`` so code under test that catches
    ``Exception`` cannot accidentally survive its own simulated crash.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire ``mode`` when ``point`` reaches ``index``."""

    point: str
    mode: str = "crash"
    index: int | None = None
    once: bool = True
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} (use {'/'.join(_MODES)})")

    def matches(self, point: str, index: int | None) -> bool:
        return self.point == point and (self.index is None or self.index == index)

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "mode": self.mode,
            "index": self.index,
            "once": self.once,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        return cls(
            point=data["point"],
            mode=data.get("mode", "crash"),
            index=data.get("index"),
            once=bool(data.get("once", True)),
            seconds=float(data.get("seconds", 3600.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A set of armed faults plus the latch directory for ``once`` faults."""

    specs: tuple[FaultSpec, ...]
    latch_dir: str | None = None

    def encode(self) -> str:
        return json.dumps(
            {"latch_dir": self.latch_dir, "specs": [s.to_dict() for s in self.specs]}
        )

    @classmethod
    def decode(cls, encoded: str) -> "FaultPlan":
        data = json.loads(encoded)
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
            latch_dir=data.get("latch_dir"),
        )


def _acquire(plan: FaultPlan, spec: FaultSpec) -> bool:
    """Claim a once-fault's latch; False when it already fired somewhere."""
    if not spec.once:
        return True
    if plan.latch_dir is None:
        # No latch directory: 'once' cannot be coordinated across
        # processes, so the fault fires every time it is reached.
        return True
    latch = os.path.join(
        plan.latch_dir, f"fired-{spec.point}-{spec.index}-{spec.mode}"
    )
    try:
        os.close(os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _armed(point: str, index: int | None) -> tuple[FaultPlan, FaultSpec] | None:
    encoded = os.environ.get(FAULTS_ENV_VAR)
    if not encoded:
        return None
    try:
        plan = FaultPlan.decode(encoded)
    except (ValueError, KeyError):  # pragma: no cover - malformed env
        return None
    for spec in plan.specs:
        if spec.matches(point, index):
            return plan, spec
    return None


def fire(point: str, index: int | None = None) -> None:
    """Probe: trigger any fault armed at ``(point, index)``.  Cheap no-op
    (one env lookup) when nothing is armed; ``torn`` faults are ignored —
    they only act through :func:`torn_cut`."""
    armed = _armed(point, index)
    if armed is None:
        return
    plan, spec = armed
    if spec.mode == "torn" or not _acquire(plan, spec):
        return
    if spec.mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.mode == "oserror":
        raise OSError(
            errno.ENOSPC, f"injected fault at {point}[{index}]: no space left on device"
        )
    if spec.mode == "error":
        raise InjectedFault(f"injected fault at {point}[{index}]")
    if spec.mode == "hang":
        time.sleep(spec.seconds)


def torn_cut(point: str, index: int | None, size: int) -> int | None:
    """Cooperative torn-write probe for WAL appends.

    When a ``torn`` fault is armed at ``(point, index)``, returns how many
    of the record's ``size`` bytes the writer should persist before
    simulating death (half, but at least one and never all); otherwise
    ``None``.  The writer persists the prefix and raises
    :class:`InjectedCrash`.
    """
    armed = _armed(point, index)
    if armed is None:
        return None
    plan, spec = armed
    if spec.mode != "torn" or not _acquire(plan, spec):
        return None
    return max(1, min(size - 1, size // 2))


@contextmanager
def inject_faults(
    *specs: FaultSpec, latch_dir: str | None = None
) -> Iterator[FaultPlan]:
    """Arm ``specs`` for the duration of the block (environment-scoped).

    The plan rides :data:`FAULTS_ENV_VAR`, so worker processes forked (or
    spawned) inside the block inherit it.  Pass ``latch_dir`` whenever a
    ``once=True`` fault must fire exactly once across processes.
    """
    plan = FaultPlan(specs=tuple(specs), latch_dir=latch_dir)
    previous = os.environ.get(FAULTS_ENV_VAR)
    os.environ[FAULTS_ENV_VAR] = plan.encode()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV_VAR, None)
        else:
            os.environ[FAULTS_ENV_VAR] = previous

"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class AxisMismatchError(ReproError):
    """Two time series were combined but their time axes are incompatible."""


class ResolutionError(ReproError):
    """A resampling operation was requested between incompatible resolutions."""


class ValidationError(ReproError):
    """A domain object (flex-offer, appliance spec, ...) violates an invariant."""


class ExtractionError(ReproError):
    """A flexibility-extraction algorithm could not produce a valid result."""


class SchedulingError(ReproError):
    """The scheduler could not produce a feasible assignment."""


class AggregationError(ReproError):
    """Flex-offer aggregation or disaggregation failed."""


class MarketError(ReproError):
    """Merit-order market clearing was misconfigured or failed
    (see :mod:`repro.market`)."""


class SessionError(ReproError):
    """A rolling-horizon flexibility session was driven out of contract
    (bad ingest bounds, unsupported target kind, malformed replay events;
    see :mod:`repro.session`)."""


class SessionReplayError(SessionError):
    """A recorded event stream failed mid-replay.

    Carries the partial replay report (with its ``failed_event`` marker)
    in :attr:`report` so the CLI can still write the diagnostic artifact
    before exiting non-zero.
    """

    def __init__(self, message: str, report: dict | None = None) -> None:
        super().__init__(message)
        self.report = report


class PersistenceError(ReproError):
    """A session journal (write-ahead log or snapshot) is unreadable,
    corrupt beyond the torn-tail tolerance, or was driven out of contract
    (see :mod:`repro.session.persistence`)."""


class WorkerRetryError(ReproError):
    """Fault-tolerant worker dispatch exhausted its retry budget and the
    sequential fallback was disabled (see :mod:`repro.pipeline.dispatch`)."""


class SharedMemorySegmentError(ReproError):
    """A shared-memory fleet segment could not be attached — typically the
    owning coordinator unlinked it before (or while) a worker attached
    (see :mod:`repro.pipeline.sharedmem`)."""


class DataError(ReproError):
    """Input data is malformed (wrong shape, NaNs, negative energy, ...)."""


class RegistryError(ReproError):
    """An extractor was requested from the registry with an unknown name or
    unknown/missing parameters (see :mod:`repro.api.registry`)."""


class SpecError(ReproError):
    """A declarative run spec is malformed: unknown keys, wrong types, or an
    unsupported version (see :mod:`repro.api.spec`)."""


class DegradedExecutionWarning(RuntimeWarning):
    """Execution completed, but on a degraded path: a shared-memory segment
    could not be created (pickled dispatch took over) or worker retries ran
    out (chunks finished in-process).  Results are bitwise identical on the
    degraded path; the warning exists so operators notice the slowdown."""

"""The built-in appliance database, including all six Table 1 rows.

Paper §4 assumes "the specification of the electricity usage of all
appliances ever manufactured in the world".  We curate the Table 1 rows plus
the common household appliances the simulator needs, with energy ranges taken
from the table and cycle shapes modelled after typical duty cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import time, timedelta

import numpy as np

from repro.appliances.model import (
    ApplianceCategory,
    ApplianceSpec,
    flat_shape,
    phased_shape,
    ramped_shape,
)
from repro.appliances.usage import (
    UsageFrequency,
    UsageSchedule,
    daytime_schedule,
    evening_schedule,
    night_schedule,
)
from repro.errors import DataError
from repro.timeseries.calendar import DailyWindow, DayType

#: Names of the six appliances printed in Table 1 of the paper.
TABLE1_NAMES: tuple[str, ...] = (
    "vacuum-robot-x",
    "washing-machine-y",
    "dishwasher-z",
    "ev-small",
    "ev-medium",
    "ev-large",
)


def _table1_specs() -> list[ApplianceSpec]:
    """The exact Table 1 rows: name, manufacturer, energy range, profile."""
    weekend_skew = {DayType.WORKDAY: 0.7, DayType.SATURDAY: 1.8, DayType.SUNDAY: 1.8}
    return [
        ApplianceSpec(
            name="vacuum-robot-x",
            manufacturer="Manufacturer X",
            category=ApplianceCategory.CLEANING,
            energy_min_kwh=0.5,
            energy_max_kwh=1.0,
            # Recharge after the daily clean: tapering charge over ~3 hours.
            shape=ramped_shape(180, start_power=1.0, end_power=0.2),
            flexible=True,
            # The paper's example: cleans daily, must recharge before the
            # next run => 22 hours of flexibility.
            time_flexibility=timedelta(hours=22),
            frequency=UsageFrequency(7.0),
            schedule=daytime_schedule(),
        ),
        ApplianceSpec(
            name="washing-machine-y",
            manufacturer="Manufacturer Y",
            category=ApplianceCategory.WET,
            energy_min_kwh=1.2,
            energy_max_kwh=3.0,
            # Heat, tumble, spin.
            shape=phased_shape([(25, 2.0), (60, 0.35), (15, 1.0)]),
            flexible=True,
            time_flexibility=timedelta(hours=8),
            frequency=UsageFrequency(3.0),
            schedule=evening_schedule(),
        ),
        ApplianceSpec(
            name="dishwasher-z",
            manufacturer="Manufacturer Z",
            category=ApplianceCategory.WET,
            energy_min_kwh=1.2,
            energy_max_kwh=2.0,
            # Two heating phases (wash + dry) separated by circulation.
            shape=phased_shape([(20, 2.0), (40, 0.3), (25, 1.6)]),
            flexible=True,
            time_flexibility=timedelta(hours=10),
            frequency=UsageFrequency(4.0, day_type_weights=weekend_skew),
            schedule=UsageSchedule(
                windows=(
                    (DailyWindow(time(19, 0), time(23, 0)), 3.0),
                    (DailyWindow(time(12, 0), time(14, 0)), 1.0),
                )
            ),
        ),
        ApplianceSpec(
            name="ev-small",
            manufacturer="Generic EV",
            category=ApplianceCategory.EV,
            energy_min_kwh=30.0,
            energy_max_kwh=50.0,
            # 11 kW charger, tapering at the end; sized so the midpoint
            # (40 kWh) charges in ~4 h.
            shape=ramped_shape(240, start_power=1.0, end_power=0.55),
            flexible=True,
            time_flexibility=timedelta(hours=7),
            frequency=UsageFrequency(3.5),
            schedule=night_schedule(),
        ),
        ApplianceSpec(
            name="ev-medium",
            manufacturer="Generic EV",
            category=ApplianceCategory.EV,
            energy_min_kwh=50.0,
            energy_max_kwh=60.0,
            shape=ramped_shape(300, start_power=1.0, end_power=0.55),
            flexible=True,
            time_flexibility=timedelta(hours=6),
            frequency=UsageFrequency(3.5),
            schedule=night_schedule(),
        ),
        ApplianceSpec(
            name="ev-large",
            manufacturer="Generic EV",
            category=ApplianceCategory.EV,
            energy_min_kwh=60.0,
            energy_max_kwh=70.0,
            shape=ramped_shape(330, start_power=1.0, end_power=0.55),
            flexible=True,
            time_flexibility=timedelta(hours=5),
            frequency=UsageFrequency(3.5),
            schedule=night_schedule(),
        ),
    ]


def _household_extras() -> list[ApplianceSpec]:
    """Common appliances beyond Table 1 that realistic households contain."""
    return [
        ApplianceSpec(
            name="tumble-dryer",
            manufacturer="Manufacturer Y",
            category=ApplianceCategory.WET,
            energy_min_kwh=1.5,
            energy_max_kwh=2.5,
            shape=phased_shape([(10, 1.0), (50, 2.0), (15, 0.5)]),
            flexible=True,
            time_flexibility=timedelta(hours=6),
            frequency=UsageFrequency(2.0),
            schedule=evening_schedule(),
        ),
        ApplianceSpec(
            name="water-heater",
            manufacturer="Generic",
            category=ApplianceCategory.HEATING,
            energy_min_kwh=2.0,
            energy_max_kwh=4.0,
            shape=flat_shape(90),
            flexible=True,
            time_flexibility=timedelta(hours=4),
            frequency=UsageFrequency(7.0),
            schedule=UsageSchedule(
                windows=(
                    (DailyWindow(time(5, 0), time(7, 0)), 2.0),
                    (DailyWindow(time(20, 0), time(22, 0)), 1.0),
                )
            ),
        ),
        ApplianceSpec(
            name="oven",
            manufacturer="Generic",
            category=ApplianceCategory.COOKING,
            energy_min_kwh=0.8,
            energy_max_kwh=2.0,
            shape=phased_shape([(15, 2.5), (45, 1.0)]),
            flexible=False,  # dinner cannot be shifted to 3 AM
            frequency=UsageFrequency(
                5.0,
                day_type_weights={
                    DayType.WORKDAY: 0.9,
                    DayType.SATURDAY: 1.3,
                    DayType.SUNDAY: 1.3,
                },
            ),
            schedule=UsageSchedule(
                windows=((DailyWindow(time(17, 30), time(19, 30)), 1.0),)
            ),
        ),
        ApplianceSpec(
            name="television",
            manufacturer="Generic",
            category=ApplianceCategory.ENTERTAINMENT,
            energy_min_kwh=0.2,
            energy_max_kwh=0.6,
            shape=flat_shape(180),
            flexible=False,
            frequency=UsageFrequency(7.0),
            schedule=UsageSchedule(
                windows=((DailyWindow(time(19, 0), time(23, 0)), 1.0),)
            ),
        ),
    ]


@dataclass(frozen=True)
class ApplianceTemplate:
    """Cached derived arrays of one appliance's unit-energy cycle shape.

    The disaggregators correlate every appliance template against long
    residual series thousands of times per fleet; the self-dot denominator
    and the template's frequency-domain image depend only on the shape, so
    they are computed once per database and shared across every household
    and iteration (the fleet-level template-correlation cache).
    """

    name: str
    # compare=False: ndarray equality is elementwise and would make the
    # generated __eq__ raise; templates compare by (name, denom, peak).
    shape: np.ndarray = field(compare=False)  # unit-energy per-minute profile
    denom: float             # <shape, shape>, the least-squares denominator
    peak: float              # max(shape), for residual clipping floors
    _rfft_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def length(self) -> int:
        """Cycle duration in minutes."""
        return int(self.shape.shape[0])

    def rfft_reversed(self, nfft: int) -> np.ndarray:
        """``rfft(shape[::-1], nfft)``, cached per transform size.

        Multiplying this against ``rfft(residual, nfft)`` and inverting
        yields the full cross-correlation of residual and template — the
        per-offset least-squares numerators — without re-transforming the
        template for every household/iteration.
        """
        cached = self._rfft_cache.get(nfft)
        if cached is None:
            cached = np.fft.rfft(self.shape[::-1], nfft)
            self._rfft_cache[nfft] = cached
        return cached


@dataclass(frozen=True)
class ApplianceDatabase:
    """A queryable catalogue of appliance specifications."""

    specs: tuple[ApplianceSpec, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        if len(names) != len(set(names)):
            raise DataError("duplicate appliance names in database")
        # Non-field lookup caches (excluded from equality/pickling concerns:
        # they are derived purely from ``specs`` and rebuilt lazily).
        object.__setattr__(self, "_by_name", {s.name: s for s in self.specs})
        object.__setattr__(self, "_templates", {})

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def get(self, name: str) -> ApplianceSpec:
        """Look up a spec by name; raises :class:`KeyError` when absent."""
        spec = self._by_name.get(name)
        if spec is None:
            raise KeyError(f"unknown appliance: {name!r}")
        return spec

    def template(self, name: str) -> ApplianceTemplate:
        """The cached correlation template of one appliance.

        Built on first lookup and reused for the lifetime of the database,
        so a fleet run computes each shape's denominator and FFT exactly
        once instead of once per household per matching iteration.
        """
        template = self._templates.get(name)
        if template is None:
            spec = self.get(name)
            shape = spec.shape
            template = ApplianceTemplate(
                name=name,
                shape=shape,
                denom=float(np.dot(shape, shape)),
                peak=float(shape.max()),
            )
            self._templates[name] = template
        return template

    def templates(self) -> list[ApplianceTemplate]:
        """Cached templates of every appliance, in catalogue order."""
        return [self.template(s.name) for s in self.specs]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        """All appliance names in catalogue order."""
        return [s.name for s in self.specs]

    def by_category(self, category: ApplianceCategory) -> list[ApplianceSpec]:
        """All specs in one category."""
        return [s for s in self.specs if s.category is category]

    def flexible(self) -> list[ApplianceSpec]:
        """All shiftable appliances."""
        return [s for s in self.specs if s.flexible]

    def candidates_for_energy(self, energy_kwh: float, slack: float = 0.25) -> list[ApplianceSpec]:
        """Specs whose energy range plausibly covers ``energy_kwh``."""
        return [s for s in self.specs if s.matches_energy(energy_kwh, slack)]

    def restricted(self, names: list[str]) -> "ApplianceDatabase":
        """Sub-database containing only the named appliances (order kept)."""
        missing = [n for n in names if n not in self]
        if missing:
            raise KeyError(f"unknown appliances: {missing}")
        return ApplianceDatabase(tuple(s for s in self.specs if s.name in set(names)))

    def table_rows(self) -> list[tuple[str, str, float, float, int]]:
        """Rows shaped like paper Table 1: name, manufacturer, range, cycle."""
        return [
            (s.name, s.manufacturer, s.energy_min_kwh, s.energy_max_kwh, s.cycle_minutes)
            for s in self.specs
        ]


def table1_database() -> ApplianceDatabase:
    """Exactly the six appliances of paper Table 1."""
    return ApplianceDatabase(tuple(_table1_specs()))


def default_database() -> ApplianceDatabase:
    """Table 1 plus common household appliances (the simulator's catalogue)."""
    return ApplianceDatabase(tuple(_table1_specs() + _household_extras()))


def heat_pump_spec() -> ApplianceSpec:
    """An air-source heat pump running long thermostat-driven cycles.

    Kept out of :func:`default_database` on purpose: adding a spec changes
    the disaggregators' candidate sets (and with them the pinned detection
    results of the default scenarios), so the heat pump lives in
    :func:`extended_database` and is opted into by the scenarios that own
    it — e.g. the conformance matrix's heat-pump-heavy winter fleet.
    """
    return ApplianceSpec(
        name="heat-pump",
        manufacturer="Generic",
        category=ApplianceCategory.HEATING,
        energy_min_kwh=3.0,
        energy_max_kwh=6.0,
        # Compressor boost, long steady plateau, defrost tail.
        shape=phased_shape([(20, 1.6), (130, 1.0), (30, 0.6)]),
        flexible=True,
        # Thermal inertia of the building buys a few hours of shiftability.
        time_flexibility=timedelta(hours=3),
        frequency=UsageFrequency(10.0),
        schedule=UsageSchedule(
            windows=(
                (DailyWindow(time(4, 0), time(8, 0)), 2.0),
                (DailyWindow(time(15, 0), time(21, 0)), 1.5),
            )
        ),
    )


def extended_database() -> ApplianceDatabase:
    """The default catalogue plus the heat pump (scenario opt-in)."""
    return ApplianceDatabase(tuple(_table1_specs() + _household_extras() + [heat_pump_spec()]))

"""Appliance usage models: how often and when appliances run.

The frequency-based extractor (paper §4.1) needs "usage frequency" per
appliance ("some appliances may be used daily while some may be used weekly or
monthly"); the schedule-based extractor (§4.2) needs richer habits ("the
dishwasher is more used during the weekends").  These two notions are
modelled here as :class:`UsageFrequency` and :class:`UsageSchedule` and shared
by the simulator (to generate ground truth) and the extractors (as the mined
representation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import time, timedelta

import numpy as np

from repro.errors import ValidationError
from repro.timeseries.calendar import DailyWindow, DayType

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True, slots=True)
class UsageFrequency:
    """Mean number of uses per week, with optional day-type skew.

    ``day_type_weights`` redistributes the weekly uses across day types; the
    weights are relative (they are normalised against the 5/1/1 composition of
    a week).  A dishwasher used mostly on weekends would carry
    ``{WORKDAY: 0.5, SATURDAY: 2.0, SUNDAY: 2.0}``.
    """

    uses_per_week: float
    day_type_weights: dict[DayType, float] = field(
        default_factory=lambda: {t: 1.0 for t in DayType}
    )

    def __post_init__(self) -> None:
        if self.uses_per_week < 0:
            raise ValidationError("uses_per_week must be >= 0")
        for day_type, weight in self.day_type_weights.items():
            if weight < 0:
                raise ValidationError(f"negative weight for {day_type}")

    @property
    def uses_per_day(self) -> float:
        """Mean daily usage ignoring day-type skew."""
        return self.uses_per_week / 7.0

    def expected_uses(self, day_type: DayType) -> float:
        """Expected number of uses on a day of the given type.

        The weekly total is preserved: summing this over a standard week
        (5 workdays, 1 Saturday, 1 Sunday) returns ``uses_per_week``.
        """
        counts = {DayType.WORKDAY: 5.0, DayType.SATURDAY: 1.0, DayType.SUNDAY: 1.0}
        weighted_week = sum(
            counts[t] * self.day_type_weights.get(t, 1.0) for t in DayType
        )
        if weighted_week == 0.0:
            return 0.0
        return self.uses_per_week * self.day_type_weights.get(day_type, 1.0) / weighted_week

    def sample_uses(self, day_type: DayType, rng: np.random.Generator) -> int:
        """Draw the number of uses for one day (Poisson around the mean)."""
        lam = self.expected_uses(day_type)
        if lam <= 0.0:
            return 0
        return int(rng.poisson(lam))

    def describe(self) -> str:
        """Human-readable frequency, e.g. 'daily', '2.0x/week'."""
        if self.uses_per_week >= 6.5:
            return "daily"
        if self.uses_per_week >= 0.9:
            return f"{self.uses_per_week:.1f}x/week"
        per_month = self.uses_per_week * 4.345
        return f"{per_month:.1f}x/month"


@dataclass(frozen=True, slots=True)
class UsageSchedule:
    """Preferred start-time windows with relative weights.

    ``windows`` is a sequence of ``(window, weight)`` pairs; sampling picks a
    window proportionally to weight, then a uniform start minute within it.
    An empty sequence means "any time of day".
    """

    windows: tuple[tuple[DailyWindow, float], ...] = ()

    def __post_init__(self) -> None:
        for _, weight in self.windows:
            if weight < 0:
                raise ValidationError("schedule window weight must be >= 0")

    def sample_start_minute(self, rng: np.random.Generator) -> int:
        """Draw a start minute-of-day according to the window weights."""
        if not self.windows:
            return int(rng.integers(0, MINUTES_PER_DAY))
        weights = np.array([w for _, w in self.windows], dtype=float)
        total = weights.sum()
        if total == 0.0:
            return int(rng.integers(0, MINUTES_PER_DAY))
        idx = int(rng.choice(len(self.windows), p=weights / total))
        window, _ = self.windows[idx]
        start_min = window.start.hour * 60 + window.start.minute
        width = int(window.duration().total_seconds() // 60)
        if width <= 0:
            return start_min
        return (start_min + int(rng.integers(0, width))) % MINUTES_PER_DAY

    def probability_in_window(self, window: DailyWindow) -> float:
        """Probability mass a start falls inside ``window`` (by overlap).

        Evaluates the per-minute start density implied by the schedule and
        integrates it over ``window``; used by tests and the schedule miner.
        """
        density = self.start_density_per_minute()
        minutes = np.arange(MINUTES_PER_DAY)
        mask = np.array(
            [window.contains(time(m // 60, m % 60)) for m in minutes]
        )
        return float(density[mask].sum())

    def start_density_per_minute(self) -> np.ndarray:
        """Start-time probability density over the 1440 minutes of a day."""
        density = np.zeros(MINUTES_PER_DAY)
        if not self.windows:
            density[:] = 1.0 / MINUTES_PER_DAY
            return density
        weights = np.array([w for _, w in self.windows], dtype=float)
        total = weights.sum()
        if total == 0.0:
            density[:] = 1.0 / MINUTES_PER_DAY
            return density
        for (window, weight) in self.windows:
            width = int(window.duration().total_seconds() // 60)
            if width <= 0:
                continue
            start = window.start.hour * 60 + window.start.minute
            share = weight / total / width
            for offset in range(width):
                density[(start + offset) % MINUTES_PER_DAY] += share
        return density


def evening_schedule() -> UsageSchedule:
    """A typical 'after work' schedule: mostly 17:00–22:00, some mornings."""
    return UsageSchedule(
        windows=(
            (DailyWindow(time(17, 0), time(22, 0)), 3.0),
            (DailyWindow(time(7, 0), time(9, 0)), 1.0),
        )
    )


def night_schedule() -> UsageSchedule:
    """An overnight schedule (EV charging): 21:00–01:00 starts."""
    return UsageSchedule(windows=((DailyWindow(time(21, 0), time(1, 0)), 1.0),))


def daytime_schedule() -> UsageSchedule:
    """A daytime schedule (vacuum robot): 09:00–12:00 starts."""
    return UsageSchedule(windows=((DailyWindow(time(9, 0), time(12, 0)), 1.0),))

"""Appliance knowledge: specs (Table 1), usage frequencies and schedules."""

from repro.appliances.database import (
    TABLE1_NAMES,
    ApplianceDatabase,
    default_database,
    extended_database,
    heat_pump_spec,
    table1_database,
)
from repro.appliances.model import (
    ApplianceCategory,
    ApplianceSpec,
    flat_shape,
    phased_shape,
    ramped_shape,
)
from repro.appliances.usage import (
    UsageFrequency,
    UsageSchedule,
    daytime_schedule,
    evening_schedule,
    night_schedule,
)

__all__ = [
    "TABLE1_NAMES",
    "ApplianceDatabase",
    "default_database",
    "extended_database",
    "heat_pump_spec",
    "table1_database",
    "ApplianceCategory",
    "ApplianceSpec",
    "flat_shape",
    "phased_shape",
    "ramped_shape",
    "UsageFrequency",
    "UsageSchedule",
    "daytime_schedule",
    "evening_schedule",
    "night_schedule",
]

"""Appliance knowledge: specs (Table 1), usage frequencies and schedules.

Subsystem contract:

* **The default catalogue is pinned** — :func:`default_database` is part
  of the disaggregation determinism contract: adding an appliance changes
  every matching shortlist downstream, so new devices (heat pumps, …) go
  into the opt-in :func:`extended_database` instead.
* **Cached derived data** — per-shape template FFTs and denominators are
  computed once per database and shared across households and matching
  iterations (the fleet pipeline's hot path relies on this).
"""

from repro.appliances.database import (
    TABLE1_NAMES,
    ApplianceDatabase,
    default_database,
    extended_database,
    heat_pump_spec,
    table1_database,
)
from repro.appliances.model import (
    ApplianceCategory,
    ApplianceSpec,
    flat_shape,
    phased_shape,
    ramped_shape,
)
from repro.appliances.usage import (
    UsageFrequency,
    UsageSchedule,
    daytime_schedule,
    evening_schedule,
    night_schedule,
)

__all__ = [
    "TABLE1_NAMES",
    "ApplianceDatabase",
    "default_database",
    "extended_database",
    "heat_pump_spec",
    "table1_database",
    "ApplianceCategory",
    "ApplianceSpec",
    "flat_shape",
    "phased_shape",
    "ramped_shape",
    "UsageFrequency",
    "UsageSchedule",
    "daytime_schedule",
    "evening_schedule",
    "night_schedule",
]

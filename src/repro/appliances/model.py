"""Appliance specifications: energy ranges and fine-grained profiles.

Paper Table 1 defines, per manufactured appliance, an energy-consumption
range (kWh) and an energy profile "with min and max ranges for every time
stamp (granularity must be even smaller than 15min)".  We model the profile
as a per-minute unit-energy shape: a non-negative vector summing to 1 whose
entry ``m`` is the fraction of the cycle's total energy consumed in minute
``m``.  A concrete activation scales the shape by a total energy drawn from
the appliance's range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta
from enum import Enum

import numpy as np

from repro.appliances.usage import UsageFrequency, UsageSchedule
from repro.errors import ValidationError


class ApplianceCategory(Enum):
    """Coarse appliance families used for grouping and reporting."""

    WET = "wet"              # washing machine, dishwasher, dryer
    COLD = "cold"            # fridge, freezer (cycling, non-shiftable)
    HEATING = "heating"      # water heater, space heating
    COOKING = "cooking"      # oven, stove
    EV = "ev"                # electric vehicles
    CLEANING = "cleaning"    # vacuum robots
    ENTERTAINMENT = "entertainment"
    LIGHTING = "lighting"
    OTHER = "other"


@dataclass(frozen=True, slots=True)
class ApplianceSpec:
    """Static description of one appliance model (a Table 1 row, enriched).

    Parameters
    ----------
    name:
        Unique appliance identifier, e.g. ``"washing-machine-y"``.
    manufacturer:
        Free-text manufacturer label (Table 1 uses "Manufacturer X/Y/Z").
    category:
        Appliance family.
    energy_min_kwh / energy_max_kwh:
        Table 1's "Energy Consumption Range": total energy of one cycle.
    shape:
        Unit-energy per-minute profile (sums to 1); its length is the cycle
        duration in minutes.
    flexible:
        Whether usage of this appliance is shiftable in time (a washing
        machine is; a TV is not).
    time_flexibility:
        Typical shiftability of one activation — the paper's example gives a
        vacuum robot 22 hours (must recharge before the next daily run).
    frequency:
        Typical usage frequency (the §4.1 "frequency usage table" entry).
    schedule:
        Preferred start windows (the §4.2 usage schedule).
    """

    name: str
    manufacturer: str
    category: ApplianceCategory
    energy_min_kwh: float
    energy_max_kwh: float
    shape: np.ndarray
    flexible: bool
    time_flexibility: timedelta = timedelta(0)
    frequency: UsageFrequency = field(default_factory=lambda: UsageFrequency(7.0))
    schedule: UsageSchedule = field(default_factory=UsageSchedule)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("appliance name must be non-empty")
        if not 0 < self.energy_min_kwh <= self.energy_max_kwh:
            raise ValidationError(
                f"{self.name}: need 0 < energy_min <= energy_max, got "
                f"[{self.energy_min_kwh}, {self.energy_max_kwh}]"
            )
        shape = np.asarray(self.shape, dtype=np.float64)
        if shape.ndim != 1 or shape.shape[0] < 1:
            raise ValidationError(f"{self.name}: shape must be a non-empty 1-D vector")
        if (shape < 0).any():
            raise ValidationError(f"{self.name}: shape must be non-negative")
        total = float(shape.sum())
        if total <= 0:
            raise ValidationError(f"{self.name}: shape must have positive mass")
        # Normalise defensively so callers may pass unnormalised shapes.
        object.__setattr__(self, "shape", shape / total)
        if self.time_flexibility < timedelta(0):
            raise ValidationError(f"{self.name}: time_flexibility must be >= 0")

    # ------------------------------------------------------------------ #
    # Derived attributes
    # ------------------------------------------------------------------ #

    @property
    def cycle_minutes(self) -> int:
        """Duration of one activation cycle in minutes."""
        return int(self.shape.shape[0])

    @property
    def cycle_duration(self) -> timedelta:
        """Duration of one activation cycle."""
        return timedelta(minutes=self.cycle_minutes)

    @property
    def typical_energy_kwh(self) -> float:
        """Midpoint of the energy range."""
        return 0.5 * (self.energy_min_kwh + self.energy_max_kwh)

    @property
    def peak_power_kw(self) -> float:
        """Peak power of a typical cycle (kW)."""
        # shape is kWh-fraction per minute; power = fraction * E * 60 kW.
        return float(self.shape.max() * self.typical_energy_kwh * 60.0)

    # ------------------------------------------------------------------ #
    # Profile realisation
    # ------------------------------------------------------------------ #

    def energy_profile_minutes(self, total_energy_kwh: float) -> np.ndarray:
        """Per-minute energy (kWh) of a cycle consuming ``total_energy_kwh``."""
        if not (
            self.energy_min_kwh - 1e-9 <= total_energy_kwh <= self.energy_max_kwh + 1e-9
        ):
            raise ValidationError(
                f"{self.name}: total energy {total_energy_kwh} outside "
                f"[{self.energy_min_kwh}, {self.energy_max_kwh}]"
            )
        return self.shape * total_energy_kwh

    def profile_bounds_minutes(self) -> tuple[np.ndarray, np.ndarray]:
        """Table 1's per-timestamp (min, max) profile ranges."""
        return self.shape * self.energy_min_kwh, self.shape * self.energy_max_kwh

    def sample_energy(self, rng: np.random.Generator) -> float:
        """Draw a cycle's total energy uniformly from the appliance range."""
        return float(rng.uniform(self.energy_min_kwh, self.energy_max_kwh))

    def matches_energy(self, energy_kwh: float, slack: float = 0.25) -> bool:
        """True when ``energy_kwh`` plausibly came from this appliance.

        ``slack`` widens the range proportionally to absorb measurement and
        overlap noise (used by the appliance-detection step).
        """
        width = self.energy_max_kwh - self.energy_min_kwh
        margin = slack * max(width, self.energy_min_kwh)
        return (
            self.energy_min_kwh - margin <= energy_kwh <= self.energy_max_kwh + margin
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApplianceSpec({self.name!r}, {self.category.value}, "
            f"[{self.energy_min_kwh}, {self.energy_max_kwh}] kWh, "
            f"{self.cycle_minutes} min, flexible={self.flexible})"
        )


# ---------------------------------------------------------------------- #
# Shape builders — simple, distinctive per-minute templates
# ---------------------------------------------------------------------- #


def flat_shape(minutes: int) -> np.ndarray:
    """Constant-power cycle of ``minutes`` length."""
    if minutes < 1:
        raise ValidationError("shape needs >= 1 minute")
    return np.full(minutes, 1.0 / minutes)


def phased_shape(phases: list[tuple[int, float]]) -> np.ndarray:
    """Piecewise-constant cycle from ``(minutes, relative_power)`` phases.

    Example: a washing machine = 20 min heating at high power, 60 min
    tumbling at low power, 10 min spinning at medium power.
    """
    if not phases:
        raise ValidationError("need at least one phase")
    parts = []
    for minutes, power in phases:
        if minutes < 1 or power < 0:
            raise ValidationError(f"bad phase ({minutes} min, {power})")
        parts.append(np.full(minutes, float(power)))
    shape = np.concatenate(parts)
    return shape / shape.sum()


def ramped_shape(minutes: int, start_power: float, end_power: float) -> np.ndarray:
    """Linearly ramping cycle (e.g. battery charging that tapers off)."""
    if minutes < 1:
        raise ValidationError("shape needs >= 1 minute")
    shape = np.linspace(start_power, end_power, minutes)
    if (shape < 0).any():
        raise ValidationError("ramp must stay non-negative")
    return shape / shape.sum()

"""Rolling-horizon flexibility sessions (the ROADMAP's online service).

A :class:`FlexibilitySession` keeps a fleet's extraction + scheduling
state alive between meter-reading arrivals: ingest dirties households,
replan re-extracts only those, and commit freezes the placements a real
dispatcher would already have sent out.  ``state`` holds the appendable
:class:`FleetState` / immutable :class:`SessionSnapshot` split; ``replay``
drives a session from a recorded JSON event stream (``repro session
--replay``).
"""

from repro.session.replay import (
    SESSION_EVENTS_VERSION,
    load_session_events,
    replay_session,
    session_for_spec,
)
from repro.session.state import (
    COMMIT_ID_PREFIX,
    SNAPSHOT_VERSION,
    FleetState,
    FlexibilitySession,
    SessionSnapshot,
)

__all__ = [
    "COMMIT_ID_PREFIX",
    "SESSION_EVENTS_VERSION",
    "SNAPSHOT_VERSION",
    "FleetState",
    "FlexibilitySession",
    "SessionSnapshot",
    "load_session_events",
    "replay_session",
    "session_for_spec",
]

"""Rolling-horizon flexibility sessions (the ROADMAP's online service).

A :class:`FlexibilitySession` keeps a fleet's extraction + scheduling
state alive between meter-reading arrivals: ingest dirties households,
replan re-extracts only those, and commit freezes the placements a real
dispatcher would already have sent out.  ``state`` holds the appendable
:class:`FleetState` / immutable :class:`SessionSnapshot` split; ``replay``
drives a session from a recorded JSON event stream (``repro session
--replay``); ``persistence`` makes sessions durable — a checksummed JSONL
write-ahead log with snapshot compaction and crash recovery
(``repro session --journal DIR`` / ``--resume``).
"""

from repro.session.persistence import (
    DEFAULT_SNAPSHOT_EVERY,
    JOURNAL_VERSION,
    SessionJournal,
    decode_state,
    encode_state,
    restore_session,
)
from repro.session.replay import (
    SESSION_EVENTS_VERSION,
    load_session_events,
    replay_session,
    session_for_spec,
)
from repro.session.state import (
    COMMIT_ID_PREFIX,
    SNAPSHOT_VERSION,
    FleetState,
    FlexibilitySession,
    SessionSnapshot,
)

__all__ = [
    "COMMIT_ID_PREFIX",
    "DEFAULT_SNAPSHOT_EVERY",
    "JOURNAL_VERSION",
    "SESSION_EVENTS_VERSION",
    "SNAPSHOT_VERSION",
    "FleetState",
    "FlexibilitySession",
    "SessionJournal",
    "SessionSnapshot",
    "decode_state",
    "encode_state",
    "load_session_events",
    "replay_session",
    "restore_session",
    "session_for_spec",
]

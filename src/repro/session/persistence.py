"""Durable sessions: a write-ahead log plus snapshot compaction.

A :class:`~repro.session.state.FlexibilitySession` lives in memory; a
process crash used to lose every commitment the session had published.
This module makes the session durable with the classic WAL recipe:

* **Write-ahead log** — ``wal.jsonl`` in the journal directory holds one
  JSON record per session event (``ingest`` / ``replan`` / ``retarget`` /
  ``commit``), in
  order, each carrying a monotonically increasing ``seq`` and a CRC-32
  checksum over its canonical encoding.  Events are logged *before* they
  are applied (redo semantics): replaying the log through a fresh session
  reproduces the exact state, because every session mutation is
  deterministic given the event stream.  Appends are flushed always and
  fsynced on ``commit`` records (the events that promise durability to the
  market side) and on snapshots.
* **Snapshot compaction** — every :attr:`SessionJournal.snapshot_every`
  replans the session's full state is encoded into ``snapshot-<seq>.json``
  (checksummed, written via temp-file + rename).  Compaction then prunes
  older snapshots and drops the WAL prefix the snapshot covers, so the
  journal's size tracks the live state, not the session's lifetime.
* **Recovery** — :func:`restore_session` (and
  :meth:`FlexibilitySession.resume`) loads the newest *intact* snapshot,
  replays the WAL tail on top of it, and re-attaches the journal so new
  events continue the same ``seq`` line.  A torn final WAL record — the
  signature of dying mid-append — is truncated away; torn *snapshots* are
  skipped in favour of an older one (or a full-log replay).  Corruption
  anywhere else raises :class:`~repro.errors.PersistenceError`: silently
  skipping a mid-log record would resurrect a different session.

The recovery contract, enforced by the ``crash-recovery-equivalence``
conformance invariant and the boundary property tests: killing the
process at *any* event boundary and resuming yields a session whose final
snapshot is bitwise identical to the uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import zlib
from datetime import datetime, timedelta
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.errors import PersistenceError
from repro.flexoffer.io import (
    aggregated_from_dict,
    aggregated_to_dict,
    any_schedule_from_dict,
    any_schedule_to_dict,
    flexoffer_from_dict,
    flexoffer_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.testing import faults
from repro.timeseries.axis import TimeAxis

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.session.state import FlexibilitySession

#: Wire-format version of journal records and snapshot files.
JOURNAL_VERSION = 1

#: WAL file name inside a journal directory.
WAL_NAME = "wal.jsonl"

#: Replans between automatic snapshot compactions (journal default).
DEFAULT_SNAPSHOT_EVERY = 4

#: Event types a journal records — the session's public event surface.
JOURNAL_EVENT_TYPES = ("ingest", "replan", "retarget", "commit")


# ---------------------------------------------------------------------- #
# Record encoding
# ---------------------------------------------------------------------- #


def _checksum(seq: int, kind: str, data: dict[str, Any]) -> int:
    canonical = json.dumps([seq, kind, data], sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def _encode_record(seq: int, kind: str, data: dict[str, Any]) -> bytes:
    record = {"seq": seq, "type": kind, "data": data, "crc": _checksum(seq, kind, data)}
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def _decode_record(line: bytes) -> dict[str, Any]:
    """Parse and checksum one WAL line; raises ``ValueError`` when torn."""
    record = json.loads(line.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    for key in ("seq", "type", "data", "crc"):
        if key not in record:
            raise ValueError(f"record missing {key!r}")
    if record["crc"] != _checksum(record["seq"], record["type"], record["data"]):
        raise ValueError("checksum mismatch")
    return record


# ---------------------------------------------------------------------- #
# Durable state encoding (superset of the published SessionSnapshot: the
# input buffers and commit bookkeeping recovery needs ride along)
# ---------------------------------------------------------------------- #


def _axis_to_dict(axis: TimeAxis) -> dict[str, Any]:
    return {
        "start": axis.start.isoformat(),
        "resolution_seconds": axis.resolution.total_seconds(),
        "length": axis.length,
    }


def _axis_from_dict(data: dict[str, Any]) -> TimeAxis:
    return TimeAxis(
        start=datetime.fromisoformat(data["start"]),
        resolution=timedelta(seconds=data["resolution_seconds"]),
        length=int(data["length"]),
    )


def _mask_runs(mask: np.ndarray) -> list[list[int]]:
    """A boolean mask as ``[first, stop)`` runs of True (compact, exact)."""
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return [[int(first), int(stop)] for first, stop in zip(edges[::2], edges[1::2])]


def _runs_to_mask(runs: list[list[int]], length: int) -> np.ndarray:
    mask = np.zeros(length, dtype=bool)
    for first, stop in runs:
        mask[first:stop] = True
    return mask


def encode_state(session: "FlexibilitySession") -> dict[str, Any]:
    """The session's full durable state (everything recovery must restore)."""
    state = session.state
    return {
        "state_version": state.version,
        "commit_boundary": (
            None if state.commit_boundary is None else state.commit_boundary.isoformat()
        ),
        "households": [
            {
                "index": h.index,
                "household_id": h.household_id,
                "series_name": h.series_name,
                "axis": _axis_to_dict(h.axis),
                "values": [float(v) for v in h.values],
                "covered": _mask_runs(h.covered),
                "dirty": bool(h.dirty),
                "offers": [flexoffer_to_dict(o) for o in h.offers],
                "summary": {k: float(v) for k, v in h.summary.items()},
            }
            for h in state.households
        ],
        "aggregates": [aggregated_to_dict(a) for a in state.aggregates],
        "open_schedules": [schedule_to_dict(s) for s in state.open_schedules],
        "schedule": (
            None if state.schedule is None else any_schedule_to_dict(state.schedule)
        ),
        "committed": [schedule_to_dict(s) for s in state.committed],
        "committed_members": sorted(state.committed_members),
        # The target is constructor configuration *except* after a
        # retarget; storing it keeps compaction safe when the retarget
        # record has been pruned from the WAL.
        "target": (
            None
            if session.target is None
            else {
                "name": session.target.name,
                "values": [float(v) for v in session.target.values],
            }
        ),
    }


def decode_state(session: "FlexibilitySession", payload: dict[str, Any]) -> None:
    """Restore a durable state payload into a freshly constructed session.

    The session must have been built with the same constructor inputs as
    the journaled one (same fleet axes, extractor, seed, target…) — the
    payload carries state, not configuration.  ``committed_demand`` is not
    stored: it is rebuilt by re-accumulating the committed placements in
    commit order, which reproduces the original float sums bitwise.
    """
    state = session.state
    households = payload["households"]
    if len(households) != len(state.households):
        raise PersistenceError(
            f"snapshot has {len(households)} household(s), session has "
            f"{len(state.households)}; resume with the session the journal "
            "was recorded from"
        )
    for live, stored in zip(state.households, households):
        axis = _axis_from_dict(stored["axis"])
        if (
            live.index != stored["index"]
            or live.household_id != stored["household_id"]
            or live.axis != axis
        ):
            raise PersistenceError(
                f"household {stored['index']} ({stored['household_id']!r}) does "
                "not match the session being restored; resume with the session "
                "the journal was recorded from"
            )
        live.series_name = stored["series_name"]
        live.values = np.asarray(stored["values"], dtype=np.float64)
        live.covered = _runs_to_mask(stored["covered"], axis.length)
        live.dirty = bool(stored["dirty"])
        live.offers = tuple(flexoffer_from_dict(o) for o in stored["offers"])
        live.summary = dict(stored["summary"])
    state.version = int(payload["state_version"])
    state.aggregates = tuple(aggregated_from_dict(a) for a in payload["aggregates"])
    state.open_schedules = [schedule_from_dict(s) for s in payload["open_schedules"]]
    state.schedule = (
        None
        if payload["schedule"] is None
        else any_schedule_from_dict(payload["schedule"])
    )
    state.committed = [schedule_from_dict(s) for s in payload["committed"]]
    state.committed_members = set(payload["committed_members"])
    state.commit_boundary = (
        None
        if payload["commit_boundary"] is None
        else datetime.fromisoformat(payload["commit_boundary"])
    )
    stored_target = payload.get("target")
    if stored_target is not None and session.target is not None:
        # A pre-snapshot retarget replaced the constructor target; restore
        # the replacement (axis is fixed, only values/name can change).
        from repro.timeseries.series import TimeSeries

        session.target = TimeSeries(
            session.target.axis,
            np.asarray(stored_target["values"], dtype=np.float64),
            stored_target["name"],
        )
    if session.target is not None:
        axis = session.target.axis
        demand = np.zeros(axis.length)
        for placement in state.committed:
            first = axis.index_of(placement.start)
            energies = placement.interval_energies()
            demand[first : first + energies.size] += energies
        state.committed_demand = demand


# ---------------------------------------------------------------------- #
# The journal
# ---------------------------------------------------------------------- #


class SessionJournal:
    """One session's durable journal: the WAL plus its snapshots.

    Construct via :meth:`create` (fresh directory) or :meth:`open`
    (existing journal; truncates a torn final record).  The journal is a
    plain directory, inspectable with ``cat`` — ``wal.jsonl`` plus zero or
    more ``snapshot-<seq>.json`` files — and safe to copy while cold.
    """

    def __init__(
        self,
        directory: Path,
        spec: dict[str, Any] | None,
        snapshot_every: int,
        last_seq: int,
    ) -> None:
        self.directory = directory
        self.spec = spec
        self.snapshot_every = snapshot_every
        self._last_seq = last_seq
        self._wal = directory / WAL_NAME
        self._fh = open(self._wal, "ab")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        directory: str | Path,
        spec: dict[str, Any] | None = None,
        snapshot_every: int | None = None,
    ) -> "SessionJournal":
        """Start a fresh journal in ``directory`` (created if missing).

        ``spec`` — a :class:`~repro.api.spec.RunSpec` dict — is stored in
        the WAL header so :meth:`FlexibilitySession.resume` can rebuild
        the session without outside help.  Refuses a directory that
        already journals a session: recovery must be an explicit choice
        (:meth:`open` / ``--resume``), never an accidental overwrite.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        wal = directory / WAL_NAME
        if wal.exists() and wal.stat().st_size > 0:
            raise PersistenceError(
                f"journal directory {directory} already holds a session "
                "journal; resume it (or point --journal somewhere fresh)"
            )
        every = DEFAULT_SNAPSHOT_EVERY if snapshot_every is None else snapshot_every
        if every < 1:
            raise PersistenceError(f"snapshot_every must be >= 1, got {every}")
        header = _encode_record(
            0,
            "open",
            {"version": JOURNAL_VERSION, "spec": spec, "snapshot_every": every},
        )
        with open(wal, "wb") as fh:
            fh.write(header)
            fh.flush()
            os.fsync(fh.fileno())
        return cls(directory, spec, every, last_seq=0)

    @classmethod
    def open(cls, directory: str | Path) -> "SessionJournal":
        """Open an existing journal, truncating a torn final WAL record."""
        directory = Path(directory)
        wal = directory / WAL_NAME
        if not wal.exists():
            raise PersistenceError(f"no session journal at {directory} (no {WAL_NAME})")
        records, keep_bytes, total_bytes = cls._scan(wal)
        if not records:
            raise PersistenceError(f"{wal} holds no intact records (header lost)")
        header = records[0]
        if header["seq"] != 0 or header["type"] != "open":
            raise PersistenceError(f"{wal} does not start with an 'open' header")
        meta = header["data"]
        if meta.get("version") != JOURNAL_VERSION:
            raise PersistenceError(
                f"unsupported journal version {meta.get('version')} in {wal}"
            )
        if keep_bytes < total_bytes:
            # Torn final record: the signature of dying mid-append.  The
            # event was never applied durably, so dropping it is exactly
            # the at-boundary semantics recovery promises.
            os.truncate(wal, keep_bytes)
        last_seq = records[-1]["seq"]
        journal = cls(
            directory,
            meta.get("spec"),
            meta.get("snapshot_every", DEFAULT_SNAPSHOT_EVERY),
            last_seq=last_seq,
        )
        # Snapshots may outrun the (compacted) WAL records.
        newest = journal.latest_snapshot()
        if newest is not None:
            journal._last_seq = max(journal._last_seq, newest[0])
        return journal

    @staticmethod
    def _scan(wal: Path) -> tuple[list[dict[str, Any]], int, int]:
        """All intact records plus the byte length of the intact prefix."""
        raw = wal.read_bytes()
        records: list[dict[str, Any]] = []
        offset = 0
        previous_seq: int | None = None
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # no terminator: torn tail
            line = raw[offset : newline + 1]
            try:
                record = _decode_record(line[:-1])
            except (ValueError, UnicodeDecodeError) as exc:
                if newline + 1 >= len(raw):
                    break  # corrupt *final* record: torn tail
                raise PersistenceError(
                    f"{wal}: corrupt record mid-log at byte {offset} ({exc}); "
                    "refusing to recover past unreadable history"
                ) from exc
            if previous_seq is not None and record["seq"] <= previous_seq:
                raise PersistenceError(
                    f"{wal}: record sequence went backwards at byte {offset} "
                    f"({previous_seq} -> {record['seq']})"
                )
            previous_seq = record["seq"]
            records.append(record)
            offset = newline + 1
        return records, offset, len(raw)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable event (0 = header only)."""
        return self._last_seq

    def append(self, kind: str, data: dict[str, Any], durable: bool = False) -> int:
        """Log one event record; returns its ``seq``.

        ``durable=True`` (commit events) fsyncs; everything else flushes.
        The ``wal-append`` fault point simulates dying mid-write: a prefix
        of the record is persisted, then
        :class:`~repro.testing.faults.InjectedCrash` flies.
        """
        if kind not in JOURNAL_EVENT_TYPES:
            raise PersistenceError(f"cannot journal event type {kind!r}")
        seq = self._last_seq + 1
        payload = _encode_record(seq, kind, data)
        cut = faults.torn_cut("wal-append", seq, len(payload))
        if cut is not None:
            self._fh.write(payload[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise faults.InjectedCrash(f"torn WAL append at seq {seq}")
        self._fh.write(payload)
        self._fh.flush()
        if durable:
            os.fsync(self._fh.fileno())
        self._last_seq = seq
        return seq

    # ------------------------------------------------------------------ #
    # Snapshots + compaction
    # ------------------------------------------------------------------ #

    def _snapshot_path(self, seq: int) -> Path:
        return self.directory / f"snapshot-{seq:08d}.json"

    def write_snapshot(self, state_payload: dict[str, Any]) -> Path:
        """Persist the state as of :attr:`last_seq`, then compact.

        The snapshot is checksummed and written via temp-file + rename, so
        a crash mid-write leaves either no snapshot or an ignorable torn
        one — never a plausible-looking wrong one.  Compaction then prunes
        older snapshots and drops the WAL records the snapshot covers.
        """
        seq = self._last_seq
        body = {
            "version": JOURNAL_VERSION,
            "seq": seq,
            "state": state_payload,
            "crc": _checksum(seq, "snapshot", state_payload),
        }
        path = self._snapshot_path(seq)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(body, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._compact(seq)
        return path

    def _compact(self, through_seq: int) -> None:
        """Prune snapshots and WAL records made redundant by ``through_seq``."""
        for stale in self.directory.glob("snapshot-*.json"):
            if stale != self._snapshot_path(through_seq):
                stale.unlink()
        records, _, _ = self._scan(self._wal)
        keep = [records[0]] + [r for r in records[1:] if r["seq"] > through_seq]
        tmp = self._wal.with_suffix(".jsonl.tmp")
        with open(tmp, "wb") as fh:
            for record in keep:
                fh.write(_encode_record(record["seq"], record["type"], record["data"]))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self._wal)
        self._fh = open(self._wal, "ab")

    def latest_snapshot(self) -> tuple[int, dict[str, Any]] | None:
        """The newest intact snapshot as ``(seq, state payload)``, if any.

        Torn or checksum-failing snapshots are skipped (an older one, or a
        full-log replay, still recovers the session).
        """
        for path in sorted(self.directory.glob("snapshot-*.json"), reverse=True):
            try:
                body = json.loads(path.read_text())
                if body["crc"] != _checksum(body["seq"], "snapshot", body["state"]):
                    continue
                if body.get("version") != JOURNAL_VERSION:
                    continue
            except (ValueError, KeyError, OSError):
                continue
            return int(body["seq"]), body["state"]
        return None

    def tail(self, after_seq: int) -> Iterator[dict[str, Any]]:
        """Event records with ``seq > after_seq``, in log order."""
        records, _, _ = self._scan(self._wal)
        for record in records[1:]:
            if record["seq"] > after_seq:
                yield record

    def close(self) -> None:
        self._fh.close()


# ---------------------------------------------------------------------- #
# Recovery
# ---------------------------------------------------------------------- #


def restore_session(
    session: "FlexibilitySession", journal: "SessionJournal | str | Path"
) -> "FlexibilitySession":
    """Recover ``session`` from its journal and re-attach it.

    ``session`` must be a *fresh* session constructed exactly like the
    journaled one (:meth:`FlexibilitySession.resume` builds it from the
    stored spec; programmatic callers rebuild it themselves).  Recovery
    ordering: newest intact snapshot first, then the WAL tail replayed
    through the ordinary event methods — which re-runs the deterministic
    extraction/aggregation/placement code, so the recovered state is
    bitwise the state the events originally produced.
    """
    if not isinstance(journal, SessionJournal):
        journal = SessionJournal.open(journal)
    if session.journal is not None:
        raise PersistenceError("session already has a journal attached")
    state = session.state
    if state.version > 0 or any(h.covered.any() for h in state.households):
        raise PersistenceError(
            "restore_session needs a freshly constructed session; this one "
            "has already ingested or replanned"
        )
    after = 0
    snapshot = journal.latest_snapshot()
    session._replaying = True
    try:
        if snapshot is not None:
            seq, payload = snapshot
            decode_state(session, payload)
            after = seq
        for record in journal.tail(after):
            kind, data = record["type"], record["data"]
            if kind == "ingest":
                session.ingest(data["household"], data["first"], data["values"])
            elif kind == "replan":
                session.replan()
            elif kind == "retarget":
                from repro.timeseries.series import TimeSeries

                session.retarget(
                    TimeSeries(
                        session.target.axis,
                        np.asarray(data["values"], dtype=np.float64),
                        data["name"],
                    )
                )
            elif kind == "commit":
                session.commit(datetime.fromisoformat(data["through"]))
            else:  # pragma: no cover - _scan admits only encodable records
                raise PersistenceError(f"unknown journal record type {kind!r}")
    finally:
        session._replaying = False
    session.attach_journal(journal, _resuming=True)
    return session

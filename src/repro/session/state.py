"""Appendable fleet state and its immutable snapshot views.

The batch pipeline's :class:`~repro.pipeline.fleet.FleetResult` is a
terminal value: one run, one result.  A live service cannot work that way —
meter readings keep arriving, households get re-extracted, and the plan
rolls forward — so this module splits the result shape in two:

* :class:`FleetState` — the *appendable* core.  Per-household input
  buffers with coverage tracking, cached extraction outputs, the current
  aggregates, the current plan, and the committed (frozen) placements.
  Every mutation bumps ``version``.
* :class:`SessionSnapshot` — the *immutable view* a replan publishes.
  Frozen, comparable, wire-encodable (``to_dict``), and convertible back
  to a :class:`~repro.pipeline.fleet.FleetResult` so the one-shot
  equivalence oracle can compare like with like.

:class:`FlexibilitySession` drives the state through the rolling-horizon
loop: ``ingest`` meter chunks (dirtying their households), ``replan``
re-extracts *only* the dirtied households and re-plans the open window,
``commit`` freezes placements behind the commit boundary so later replans
cannot move them (the ``committed-placement-stability`` conformance
invariant).

Equivalence contract (pinned by ``tests/test_session.py``): with no
commitments, any chunked arrival order that eventually delivers the full
input reproduces the one-shot pipeline bitwise — extraction re-runs are
freshly seeded per household, aggregation folds through
:func:`~repro.aggregation.streaming.aggregate_stream` with the batch
epoch, and scheduling routes through the same
:func:`~repro.pipeline.fleet.schedule_aggregates` stage.  Commitments
deliberately break that equivalence (that is their job); what replaces it
is stability: a committed placement appears bitwise unchanged in every
later snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta
from typing import Any, Iterable

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer
from repro.aggregation.grouping import GroupingParams
from repro.aggregation.streaming import aggregate_stream
from repro.api.registry import create_extractor
from repro.errors import SessionError
from repro.evaluation.comparison import SEED_STRIDE, input_series_for
from repro.extraction.base import FlexibilityExtractor
from repro.flexoffer.io import (
    aggregated_to_dict,
    any_schedule_to_dict,
    flexoffer_to_dict,
    schedule_to_dict,
)
from repro.flexoffer.model import offer_id_scope
from repro.flexoffer.schedule import ScheduledFlexOffer, schedules_to_series
from repro.pipeline.fleet import (
    FleetResult,
    HouseholdOutput,
    StageTimings,
    schedule_aggregates,
    stamp_household,
)
from repro.scheduling.autotune import resolve_engine
from repro.scheduling.greedy import ScheduleConfig, ScheduleResult, greedy_schedule
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

#: Wire-format version of session snapshots (and the deltas built on them).
SNAPSHOT_VERSION = 1

#: Prefix of the stable ids committed placements are re-minted under.  The
#: ``agg-fleet-N`` ids a replan mints restart per replan and would collide
#: with a *different* aggregate next time; a committed placement outlives
#: replans, so it gets an id from this separate, append-only namespace.
COMMIT_ID_PREFIX = "commit"


class _HouseholdState:
    """One household's live input buffer plus its cached extraction."""

    __slots__ = (
        "index",
        "household_id",
        "axis",
        "series_name",
        "values",
        "covered",
        "dirty",
        "offers",
        "summary",
    )

    def __init__(
        self, index: int, household_id: str, axis: TimeAxis, series_name: str
    ) -> None:
        self.index = index
        self.household_id = household_id
        self.axis = axis
        self.series_name = series_name
        self.values = np.zeros(axis.length)
        self.covered = np.zeros(axis.length, dtype=bool)
        self.dirty = False
        self.offers: tuple = ()
        self.summary: dict[str, float] = {}

    @property
    def coverage_end(self) -> datetime:
        """End of the contiguous covered prefix (the household's watermark)."""
        if self.covered.all():
            prefix = self.covered.size
        else:
            prefix = int(np.argmin(self.covered))
        return self.axis.start + self.axis.resolution * prefix

    def output(self) -> HouseholdOutput:
        return HouseholdOutput(
            index=self.index,
            household_id=self.household_id,
            offers=self.offers,
            summary=self.summary,
        )


@dataclass
class FleetState:
    """The appendable core of a rolling-horizon session.

    Everything here mutates in place as events arrive; ``version`` counts
    published states (replans and commits), so two snapshots with the same
    version are the same state.  The committed side is append-only:
    placements enter ``committed`` and member ids enter
    ``committed_members`` exactly once, and neither ever shrinks.
    """

    households: list[_HouseholdState]
    version: int = 0
    aggregates: tuple[AggregatedFlexOffer, ...] = ()
    open_schedules: list[ScheduledFlexOffer] = field(default_factory=list)
    schedule: ScheduleResult | None = None
    committed: list[ScheduledFlexOffer] = field(default_factory=list)
    committed_members: set[str] = field(default_factory=set)
    committed_demand: np.ndarray | None = None
    commit_boundary: datetime | None = None

    @property
    def watermark(self) -> datetime:
        """The fleet's data watermark: the slowest household's coverage end."""
        return min(h.coverage_end for h in self.households)

    def planned_offers(self) -> list:
        """Offers eligible for (re-)planning, in household order.

        Excludes offers already bound into a committed placement: their
        energy is dispatched, so re-planning them would double-count it.
        Re-extraction mints deterministic per-household ids, so a committed
        member's id keeps matching its slot across replans.
        """
        return [
            offer
            for household in self.households
            for offer in household.offers
            if offer.offer_id not in self.committed_members
        ]


@dataclass(frozen=True)
class SessionSnapshot:
    """An immutable view of one published fleet state.

    What a replan (or commit) hands out: households/aggregates/schedule in
    the exact shapes the batch pipeline produces, plus the session-only
    committed side.  ``fleet_result`` adapts it for result-level oracles;
    ``to_dict`` is the wire encoding successive
    :func:`~repro.flexoffer.io.report_delta` calls diff.
    """

    version: int
    watermark: datetime
    households: tuple[HouseholdOutput, ...]
    aggregates: tuple[AggregatedFlexOffer, ...]
    schedule: ScheduleResult | None
    committed: tuple[ScheduledFlexOffer, ...]
    committed_members: frozenset[str]

    def fleet_result(self) -> FleetResult:
        """This state as a batch-pipeline result (timings empty)."""
        return FleetResult(
            households=self.households,
            aggregates=self.aggregates,
            timings=StageTimings(),
            schedule=self.schedule,
        )

    def to_dict(self) -> dict[str, Any]:
        """The snapshot's wire encoding (see ``flexoffer.io.report_delta``)."""
        return {
            "version": SNAPSHOT_VERSION,
            "state_version": self.version,
            "watermark": self.watermark.isoformat(),
            "households": [
                {
                    "index": h.index,
                    "household_id": h.household_id,
                    "summary": dict(h.summary),
                    "offers": [flexoffer_to_dict(o) for o in h.offers],
                }
                for h in self.households
            ],
            "aggregates": [aggregated_to_dict(a) for a in self.aggregates],
            "schedule": (
                None if self.schedule is None else any_schedule_to_dict(self.schedule)
            ),
            "committed": [schedule_to_dict(s) for s in self.committed],
        }


class FlexibilitySession:
    """A long-lived rolling-horizon extraction + scheduling session.

    The online counterpart of :class:`~repro.pipeline.fleet.FleetPipeline`:
    construct it once per fleet (``for_fleet``), then drive it with events —

    * :meth:`ingest` writes a chunk of meter readings into one household's
      input buffer and marks the household dirty;
    * :meth:`replan` re-extracts *only* the dirty households, folds the
      surviving offers through the streaming aggregator, re-plans the open
      window (committed placements are baked into the residual target and
      the commit boundary is passed to the scheduler as
      ``earliest_allowed``), and publishes a :class:`SessionSnapshot`;
    * :meth:`commit` freezes every open placement starting before the
      given instant: its members leave the planning pool, its demand moves
      into the residual baseline, and the placement itself — re-minted
      under a stable ``commit-N`` id — reappears bitwise unchanged in
      every later snapshot;
    * :meth:`retarget` swaps in an updated target (same axis, new values —
      a fresher forecast or the realized series), so the next replan
      re-plans the open window against it while commitments stay frozen.

    With ``commit_horizon`` set, every replan auto-commits through
    ``watermark + commit_horizon`` — the standing "lock the next H hours"
    policy of a dispatch loop.  ``commit_horizon=None`` (default) never
    commits on its own, which is what makes the session bit-reproduce the
    one-shot pipeline once all data has arrived.

    Only plain series targets are supported; zoned/priced markets keep
    their one-shot path (docs/PAPER_MAPPING.md records the divergence).
    """

    def __init__(
        self,
        households: Iterable[tuple[str, TimeAxis, str]],
        extractor: FlexibilityExtractor | None = None,
        grouping: GroupingParams | None = None,
        seed: int = 0,
        target: TimeSeries | None = None,
        schedule: ScheduleConfig | None = None,
        commit_horizon: timedelta | None = None,
    ) -> None:
        states = [
            _HouseholdState(index, household_id, axis, name)
            for index, (household_id, axis, name) in enumerate(households)
        ]
        if not states:
            raise SessionError("a session needs at least one household")
        if target is not None and not isinstance(target, TimeSeries):
            raise SessionError(
                "sessions schedule against plain series targets only; "
                "zoned markets keep the one-shot pipeline"
            )
        self.extractor = (
            extractor if extractor is not None else create_extractor("frequency-based")
        )
        self.grouping = grouping
        self.seed = seed
        self.target = target
        self.schedule_config = schedule
        self.commit_horizon = commit_horizon
        self._state = FleetState(households=states)
        if target is not None:
            self._state.committed_demand = np.zeros(target.axis.length)
        #: Attached :class:`~repro.session.persistence.SessionJournal`
        #: (None = in-memory session).  While ``_replaying`` is set the
        #: event methods are being driven by recovery and must not journal.
        self.journal = None
        self._replaying = False
        self._replans_since_snapshot = 0

    @classmethod
    def for_fleet(cls, fleet, **kwargs: Any) -> "FlexibilitySession":
        """A session over a simulated fleet's households.

        Each household's buffer takes the axis and name of the series the
        extractor would consume in a batch run
        (:func:`~repro.evaluation.comparison.input_series_for`), so a fully
        ingested buffer is bitwise the batch input.
        """
        extractor = kwargs.get("extractor") or create_extractor("frequency-based")
        kwargs["extractor"] = extractor
        households = []
        for trace in fleet:
            series = input_series_for(extractor, trace)
            households.append((trace.config.household_id, series.axis, series.name))
        return cls(households, **kwargs)

    @classmethod
    def resume(cls, journal_dir, fleet=None) -> "FlexibilitySession":
        """Recover a session from its journal directory.

        Rebuilds the session from the :class:`~repro.api.spec.RunSpec`
        stored in the WAL header (simulating the fleet unless ``fleet`` is
        given), restores the newest intact snapshot, replays the WAL tail,
        and re-attaches the journal — so the caller gets back exactly the
        session the crashed process would have had, ready for new events.
        """
        from repro.api.spec import RunSpec
        from repro.errors import PersistenceError
        from repro.session.persistence import SessionJournal, restore_session
        from repro.session.replay import session_for_spec

        journal = SessionJournal.open(journal_dir)
        if journal.spec is None:
            raise PersistenceError(
                f"journal at {journal_dir} stores no run spec; rebuild the "
                "session yourself and call "
                "repro.session.persistence.restore_session"
            )
        session = session_for_spec(RunSpec.from_dict(journal.spec), fleet=fleet)
        return restore_session(session, journal)

    def attach_journal(self, journal, _resuming: bool = False) -> None:
        """Journal every future event of this session into ``journal``.

        Outside recovery the journal must be fresh (header only) and the
        session pristine — otherwise the WAL would open mid-history and
        replaying it could never reproduce the state.
        """
        from repro.errors import PersistenceError

        if self.journal is not None:
            raise PersistenceError("session already has a journal attached")
        if not _resuming:
            state = self._state
            if state.version > 0 or any(h.covered.any() for h in state.households):
                raise PersistenceError(
                    "cannot attach a journal mid-session: the WAL would "
                    "miss the events that built the current state"
                )
            if journal.last_seq != 0:
                raise PersistenceError(
                    "journal already holds events; use FlexibilitySession."
                    "resume (or restore_session) instead of attach_journal"
                )
        self.journal = journal
        self._replans_since_snapshot = 0

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> FleetState:
        return self._state

    def ingest(self, household: int, first: int, values: Iterable[float]) -> None:
        """Write a chunk of meter readings into one household's buffer."""
        state = self._state
        if not 0 <= household < len(state.households):
            raise SessionError(
                f"household {household} out of range (fleet has "
                f"{len(state.households)})"
            )
        chunk = np.asarray(values, dtype=np.float64)
        if chunk.ndim != 1:
            raise SessionError(f"ingest values must be 1-D, got shape {chunk.shape}")
        target = state.households[household]
        if first < 0 or first + chunk.size > target.axis.length:
            raise SessionError(
                f"ingest [{first}, {first + chunk.size}) overruns household "
                f"{household}'s axis (length {target.axis.length})"
            )
        # WAL-first: the record hits the log before the buffer mutates, so
        # recovery replays exactly the events whose effects may exist.
        self._journal_event(
            "ingest",
            {"household": household, "first": first, "values": chunk.tolist()},
        )
        target.values[first : first + chunk.size] = chunk
        target.covered[first : first + chunk.size] = True
        target.dirty = True

    def replan(self) -> SessionSnapshot:
        """Re-extract dirty households, re-aggregate, re-plan, publish."""
        self._journal_event("replan", {})
        state = self._state
        for household in state.households:
            if not household.dirty:
                continue
            rng = np.random.default_rng(self.seed + SEED_STRIDE * household.index)
            series = TimeSeries(
                household.axis, household.values.copy(), household.series_name
            )
            with offer_id_scope(f"h{household.index}"):
                result = self.extractor.extract(series, rng)
            household.offers = stamp_household(result.offers, household.household_id)
            household.summary = result.summary()
            household.dirty = False

        offers = state.planned_offers()
        if offers:
            epoch = min(offer.earliest_start for offer in offers)
            with offer_id_scope("fleet"):
                state.aggregates = tuple(
                    aggregate_stream(iter(offers), self.grouping, epoch=epoch)
                )
        else:
            state.aggregates = ()

        self._reschedule()
        if (
            self.commit_horizon is not None
            and self.target is not None
            and state.open_schedules
        ):
            self._commit_through(state.watermark + self.commit_horizon)
        state.version += 1
        self._maybe_snapshot()
        return self.snapshot()

    def commit(self, through: datetime) -> int:
        """Freeze every open placement starting before ``through``.

        Returns the number of placements newly committed; publishes a new
        state version when that number is non-zero.
        """
        if self.target is None:
            raise SessionError("cannot commit placements: session has no target")
        # Commits are the events the market side relies on, so their WAL
        # records are fsynced before the state moves.
        self._journal_event("commit", {"through": through.isoformat()}, durable=True)
        newly = self._commit_through(through)
        if newly:
            self._state.version += 1
        return newly

    def retarget(self, new_target: TimeSeries) -> None:
        """Swap in an updated target for the open window.

        The replacement must live on the current target's axis — a
        retarget updates the *values* the open window is planned against
        (a fresher forecast, or the realized series itself), never the
        horizon.  Nothing is re-planned here: committed placements stay
        frozen with their demand baked into the residual baseline, and the
        next :meth:`replan` re-plans the open window against the new
        values.  Journaled like every other event, so recovery replays it
        (the ``replan-no-worse-realized`` conformance invariant drives
        this path on every compatible matrix cell).
        """
        if self.target is None:
            raise SessionError(
                "cannot retarget: the session was built without a target"
            )
        if not isinstance(new_target, TimeSeries):
            raise SessionError(
                "sessions schedule against plain series targets only; "
                "zoned markets keep the one-shot pipeline"
            )
        if new_target.axis != self.target.axis:
            raise SessionError(
                "retarget must keep the current target axis; got a series "
                f"on {new_target.axis!r}"
            )
        self._journal_event(
            "retarget",
            {
                "name": new_target.name,
                "values": [float(v) for v in new_target.values],
            },
        )
        self.target = new_target.copy()

    def snapshot(self) -> SessionSnapshot:
        """The current published state as an immutable view."""
        state = self._state
        return SessionSnapshot(
            version=state.version,
            watermark=state.watermark,
            households=tuple(h.output() for h in state.households),
            aggregates=state.aggregates,
            schedule=state.schedule,
            committed=tuple(state.committed),
            committed_members=frozenset(state.committed_members),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _journal_event(
        self, kind: str, data: dict[str, Any], durable: bool = False
    ) -> None:
        if self.journal is None or self._replaying:
            return
        self.journal.append(kind, data, durable=durable)

    def _maybe_snapshot(self) -> None:
        """Compact the journal every ``snapshot_every`` replans."""
        if self.journal is None or self._replaying:
            return
        self._replans_since_snapshot += 1
        if self._replans_since_snapshot < self.journal.snapshot_every:
            return
        from repro.session.persistence import encode_state

        self.journal.write_snapshot(encode_state(self))
        self._replans_since_snapshot = 0

    def _reschedule(self) -> None:
        """Re-plan the open window against the residual target."""
        state = self._state
        if self.target is None:
            state.schedule = None
            return
        if not state.committed:
            # No frozen window: the schedule stage is exactly the batch
            # pipeline's (engine resolution, improver and all) — this arm
            # is what the one-shot equivalence oracle exercises.
            result = schedule_aggregates(
                state.aggregates, self.target, self.schedule_config
            )
            state.open_schedules = list(result.schedules)
            state.schedule = result
            return
        axis = self.target.axis
        residual = TimeSeries(
            axis,
            self.target.values - state.committed_demand,
            self.target.name,
        )
        offers = [aggregate.offer for aggregate in state.aggregates]
        config = resolve_engine(
            self.schedule_config if self.schedule_config is not None else ScheduleConfig(),
            offers,
            axis,
        )
        # The stochastic improver is not commit-aware (it may move a
        # placement across the boundary), so it only runs on the
        # no-commitment arm above.
        open_result = greedy_schedule(
            offers,
            residual,
            config=config,
            earliest_allowed=state.commit_boundary,
        )
        open_result = self._better_open_plan(open_result, residual, offers)
        state.open_schedules = list(open_result.schedules)
        combined = list(state.committed) + state.open_schedules
        state.schedule = ScheduleResult(
            schedules=combined,
            demand=schedules_to_series(combined, axis),
            target=self.target,
            unplaced=list(open_result.unplaced),
        )
        return

    def _better_open_plan(
        self,
        open_result: ScheduleResult,
        residual: TimeSeries,
        offers: list,
    ) -> ScheduleResult:
        """Keep the previous open plan when it still fits and scores better.

        Greedy placement is a heuristic: against updated target values (a
        :meth:`retarget`, or simply fresher data) the fresh plan can land
        marginally *worse* than the plan already in hand.  When the
        previous open placements reference exactly the same live aggregate
        offers (bitwise) as the fresh plan and every one respects the
        commit boundary, the cheaper of the two plans — measured on the
        current residual target — wins.  Re-planning therefore never
        worsens the session's imbalance, which is the contract the
        ``replan-no-worse-realized`` conformance invariant pins on every
        compatible matrix cell.  Ties keep the fresh plan, so behaviour
        is unchanged whenever greedy does its job.
        """
        state = self._state
        previous = state.open_schedules
        if not previous:
            return open_result
        if {p.offer.offer_id for p in previous} != {
            p.offer.offer_id for p in open_result.schedules
        }:
            # The placeable offer set changed (new aggregates, dropped
            # ones): the previous plan no longer covers the obligation to
            # run every offer's minimum energy.
            return open_result
        by_id = {offer.offer_id: offer for offer in offers}
        boundary = state.commit_boundary
        for placement in previous:
            offer = by_id.get(placement.offer.offer_id)
            if offer is None or offer != placement.offer:
                return open_result
            if boundary is not None and placement.start < boundary:
                return open_result
        candidate = ScheduleResult(
            schedules=list(previous),
            demand=schedules_to_series(previous, residual.axis),
            target=residual,
            unplaced=list(open_result.unplaced),
        )
        if candidate.cost < open_result.cost:
            return candidate
        return open_result

    def _commit_through(self, through: datetime) -> int:
        state = self._state
        aggregates_by_id = {a.offer.offer_id: a for a in state.aggregates}
        keep: list[ScheduledFlexOffer] = []
        newly = 0
        axis = self.target.axis
        for placement in state.open_schedules:
            if placement.start >= through:
                keep.append(placement)
                continue
            aggregate = aggregates_by_id.get(placement.offer.offer_id)
            members = aggregate.members if aggregate is not None else (placement.offer,)
            for member in members:
                state.committed_members.add(member.offer_id)
            frozen_offer = replace(
                placement.offer,
                offer_id=f"{COMMIT_ID_PREFIX}-{len(state.committed) + 1}",
            )
            frozen = ScheduledFlexOffer(
                frozen_offer, placement.start, placement.slice_energies
            )
            first = axis.index_of(frozen.start)
            energies = frozen.interval_energies()
            state.committed_demand[first : first + energies.size] += energies
            state.committed.append(frozen)
            newly += 1
        if newly == 0:
            if state.commit_boundary is None or through > state.commit_boundary:
                state.commit_boundary = through
            return 0
        state.open_schedules = keep
        if state.commit_boundary is None or through > state.commit_boundary:
            state.commit_boundary = through
        combined = list(state.committed) + keep
        previous_unplaced = state.schedule.unplaced if state.schedule else []
        state.schedule = ScheduleResult(
            schedules=combined,
            demand=schedules_to_series(combined, axis),
            target=self.target,
            unplaced=list(previous_unplaced),
        )
        return newly

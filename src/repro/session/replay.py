"""Replay a recorded event stream through a flexibility session.

The session's correctness story needs a deterministic driver: a JSON file
pins a run spec plus an ordered event list (`ingest` / `replan` /
`commit`), and :func:`replay_session` feeds them to a fresh
:class:`~repro.session.state.FlexibilitySession` over the spec's simulated
fleet.  The same file therefore reproduces the same snapshots anywhere —
CI replays ``examples/specs/session_events.json`` as a smoke test and
archives the report.

Event file format (``version`` 1)::

    {
      "version": 1,
      "spec": { ...a RunSpec dict with pipeline.schedule/.session... },
      "events": [
        {"type": "ingest", "household": 0, "first": 0, "count": 96},
        {"type": "replan"},
        {"type": "commit", "through": "2012-03-06T00:00:00"}
      ]
    }

``ingest`` events carry *positions*, not values: the replayed values are
sliced from the household's batch input series
(:func:`~repro.evaluation.comparison.input_series_for`), so a replay that
ingests every interval reconstructs bitwise the series a one-shot run
reads — which is what makes the final-state-vs-one-shot equivalence
oracle meaningful.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path
from typing import Any

from repro.api.service import build_schedule_target
from repro.api.spec import RunSpec
from repro.errors import SessionError, SessionReplayError
from repro.evaluation.comparison import input_series_for
from repro.flexoffer.io import report_delta
from repro.session.state import FlexibilitySession, SessionSnapshot
from repro.testing import faults

#: Wire-format version of session event files and replay reports.
SESSION_EVENTS_VERSION = 1

_EVENT_TYPES = ("ingest", "replan", "commit")


def load_session_events(path: str | Path) -> tuple[RunSpec, list[dict[str, Any]]]:
    """Read and validate a session event file: ``(spec, events)``."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise SessionError(f"cannot read session events {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SessionError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SessionError(f"{path}: expected a JSON object")
    version = data.get("version", SESSION_EVENTS_VERSION)
    if version != SESSION_EVENTS_VERSION:
        raise SessionError(f"unsupported session-events version {version}")
    if "spec" not in data or "events" not in data:
        raise SessionError(f"{path}: needs 'spec' and 'events' keys")
    spec = RunSpec.from_dict(data["spec"])
    events = data["events"]
    if not isinstance(events, list):
        raise SessionError(f"{path}: 'events' must be a list")
    for position, event in enumerate(events):
        if not isinstance(event, dict) or event.get("type") not in _EVENT_TYPES:
            raise SessionError(
                f"events[{position}]: expected a dict with type in "
                f"{'/'.join(_EVENT_TYPES)}"
            )
    return spec, events


def session_for_spec(spec: RunSpec, fleet=None) -> FlexibilitySession:
    """Build the session a spec describes (fleet simulated unless given)."""
    if fleet is None:
        from repro.simulation.dataset import generate_fleet

        scenario = spec.scenario
        fleet = generate_fleet(
            scenario.households, scenario.start, scenario.days, seed=scenario.seed
        )
    schedule_spec = spec.pipeline.schedule
    if schedule_spec is not None and schedule_spec.zones:
        raise SessionError(
            "session replay supports plain targets only; zoned markets "
            "keep the one-shot pipeline"
        )
    session_spec = spec.pipeline.session
    return FlexibilitySession.for_fleet(
        fleet,
        extractor=spec.extractors[0].create(),
        grouping=spec.pipeline.grouping_params(),
        seed=spec.scenario.seed,
        target=build_schedule_target(spec),
        schedule=None if schedule_spec is None else schedule_spec.config(),
        commit_horizon=(
            None if session_spec is None else session_spec.commit_horizon()
        ),
    )


def _replan_row(snapshot: SessionSnapshot) -> dict[str, Any]:
    offers = sum(len(h.offers) for h in snapshot.households)
    row: dict[str, Any] = {
        "state_version": snapshot.version,
        "watermark": snapshot.watermark.isoformat(),
        "offers": offers,
        "aggregates": len(snapshot.aggregates),
        "committed": len(snapshot.committed),
    }
    if snapshot.schedule is not None:
        row["placed"] = len(snapshot.schedule.schedules)
        row["unplaced"] = len(snapshot.schedule.unplaced)
        row["cost"] = snapshot.schedule.cost
    return row


def _committed_stable(snapshots: list[SessionSnapshot]) -> bool:
    """True when every committed placement reappears bitwise in every later
    snapshot — the replay-level form of ``committed-placement-stability``."""
    for earlier, later in zip(snapshots, snapshots[1:]):
        later_by_id = {s.offer.offer_id: s for s in later.committed}
        for placement in earlier.committed:
            if later_by_id.get(placement.offer.offer_id) != placement:
                return False
        if later.schedule is not None:
            planned = {s.offer.offer_id: s for s in later.schedule.schedules}
            for placement in later.committed:
                if planned.get(placement.offer.offer_id) != placement:
                    return False
    return True


def _apply_event(session, inputs, position, event) -> SessionSnapshot | None:
    """Apply one replay event; returns the snapshot for replan events."""
    kind = event["type"]
    if kind == "ingest":
        try:
            household = int(event["household"])
            first = int(event["first"])
            count = int(event["count"])
        except KeyError as exc:
            raise SessionError(
                f"events[{position}]: ingest needs household/first/count "
                f"(missing {exc})"
            ) from exc
        if not 0 <= household < len(inputs):
            raise SessionError(
                f"events[{position}]: household {household} out of range"
            )
        values = inputs[household].values[first : first + count]
        if values.size != count:
            raise SessionError(
                f"events[{position}]: ingest [{first}, {first + count}) "
                f"overruns the input series"
            )
        session.ingest(household, first, values)
        return None
    if kind == "replan":
        return session.replan()
    try:
        through = datetime.fromisoformat(event["through"])
    except KeyError as exc:
        raise SessionError(f"events[{position}]: commit needs 'through'") from exc
    except ValueError as exc:
        raise SessionError(f"events[{position}]: {exc}") from exc
    session.commit(through)
    return None


def _build_report(
    spec: RunSpec,
    events: list[dict[str, Any]],
    snapshots: list[SessionSnapshot],
    failed_event: dict[str, Any] | None = None,
) -> dict[str, Any]:
    dicts = [snapshot.to_dict() for snapshot in snapshots]
    report = {
        "version": SESSION_EVENTS_VERSION,
        "spec_name": spec.name,
        "events": len(events),
        "replans": [_replan_row(snapshot) for snapshot in snapshots],
        "committed": len(snapshots[-1].committed) if snapshots else 0,
        "committed_stable": _committed_stable(snapshots),
        "deltas": [report_delta(old, new) for old, new in zip(dicts, dicts[1:])],
        "final": dicts[-1] if dicts else None,
    }
    if failed_event is not None:
        report["failed_event"] = failed_event
    return report


def replay_session(
    path: str | Path,
    journal_dir: str | Path | None = None,
    resume: bool = False,
) -> dict[str, Any]:
    """Drive a session through a recorded event file; return the report.

    The report carries one row per replan, the
    :func:`~repro.flexoffer.io.report_delta` between successive snapshots,
    the final snapshot's full encoding, and ``committed_stable`` — whether
    every committed placement survived every later snapshot bitwise.

    With ``journal_dir`` the session journals every event into a durable
    WAL there (``repro session --journal DIR``); ``resume=True`` recovers
    the session from that journal first and replays only the events the
    crashed run never applied (``--resume``) — the recovered final state
    is bitwise the uninterrupted run's.

    A mid-stream failure does not discard the partial progress: the report
    built so far — tagged with a ``failed_event`` marker — rides on the
    raised :class:`~repro.errors.SessionReplayError`.
    """
    spec, events = load_session_events(path)
    from repro.simulation.dataset import generate_fleet

    scenario = spec.scenario
    fleet = generate_fleet(
        scenario.households, scenario.start, scenario.days, seed=scenario.seed
    )
    session = session_for_spec(spec, fleet=fleet)
    inputs = [input_series_for(session.extractor, trace) for trace in fleet]

    applied = 0
    snapshots: list[SessionSnapshot] = []
    if journal_dir is not None:
        from repro.session.persistence import SessionJournal, restore_session

        if resume:
            journal = SessionJournal.open(journal_dir)
            if journal.spec is not None and journal.spec != spec.to_dict():
                raise SessionError(
                    f"journal at {journal_dir} was recorded under a different "
                    f"run spec than {path}; refusing to resume"
                )
            restore_session(session, journal)
            # WAL seq N is events[N-1]: skip what recovery already applied.
            applied = journal.last_seq
            if session.state.version > 0:
                # Seed the delta chain with the recovered state so the
                # remaining replans diff against it, and so a tail with no
                # replan still reports the recovered final snapshot.
                snapshots.append(session.snapshot())
        else:
            session_spec = spec.pipeline.session
            journal = SessionJournal.create(
                journal_dir,
                spec=spec.to_dict(),
                snapshot_every=(
                    None
                    if session_spec is None
                    else session_spec.journal_snapshot_every
                ),
            )
            session.attach_journal(journal)

    for position, event in enumerate(events):
        if position < applied:
            continue
        try:
            faults.fire("session-event", position)
            snapshot = _apply_event(session, inputs, position, event)
        except Exception as exc:
            report = _build_report(
                spec,
                events,
                snapshots,
                failed_event={
                    "position": position,
                    "type": event.get("type"),
                    "error": str(exc),
                },
            )
            raise SessionReplayError(
                f"events[{position}] ({event.get('type')}) failed: {exc}",
                report=report,
            ) from exc
        if snapshot is not None:
            snapshots.append(snapshot)

    if not snapshots:
        raise SessionError("event stream never replanned; nothing to report")
    if session.state.version > snapshots[-1].version:
        # A trailing commit published a newer state than the last replan.
        snapshots.append(session.snapshot())
    return _build_report(spec, events, snapshots)

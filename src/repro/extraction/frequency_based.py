"""The Frequency-based appliance-level extraction approach (paper §4.1).

Step 1 "applies various data mining and machine learning algorithms to
derive which appliance and how frequently was used", producing "a shortlist
of the possibly used appliances, their usage frequency, and the time
flexibility".  Step 2 "takes the original historical time series and the
shortlist, and it distributes possible 'activations' of the appliances
respecting the usage frequencies", emitting one flex-offer per appliance use
and subtracting the flexible energy from the series.

The paper left the implementation as future work because its data was
15-minute; the simulator provides the sub-15-minute granularity §4 requires,
so the approach is implemented end to end here: baseline removal → matching-
pursuit disaggregation → frequency table → per-activation flex-offers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.disaggregation.baseline import remove_baseline
from repro.disaggregation.frequency import FrequencyTable, estimate_frequencies
from repro.api.registry import register_extractor
from repro.disaggregation.matching import DetectionResult, MatchingConfig, match_pursuit
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.params import FlexOfferParams
from repro.flexoffer.model import FlexOffer
from repro.simulation.activations import Activation
from repro.timeseries.axis import ONE_MINUTE, TimeAxis
from repro.timeseries.series import TimeSeries


def slice_energies_on_grid(
    removal_minutes: np.ndarray, start_minute_index: int, minutes_per_slice: int = 15
) -> tuple[int, np.ndarray]:
    """Bucket a per-minute removal vector onto the metering grid.

    Returns ``(grid_index, slice_energies)`` where ``grid_index`` is the
    index of the first 15-minute interval the profile touches and
    ``slice_energies[k]`` the energy in grid interval ``grid_index + k``.
    """
    grid_index = start_minute_index // minutes_per_slice
    lead = start_minute_index % minutes_per_slice
    padded = np.concatenate([np.zeros(lead), removal_minutes])
    n_slices = int(np.ceil(len(padded) / minutes_per_slice))
    padded = np.concatenate([padded, np.zeros(n_slices * minutes_per_slice - len(padded))])
    return grid_index, padded.reshape(n_slices, minutes_per_slice).sum(axis=1)


@dataclass(frozen=True)
class FrequencyDetection:
    """Step-1 output: the disaggregation context step 2 formulates from.

    Splitting detection from offer formulation lets the fleet pipeline time
    (and fan out) the expensive disaggregation stage separately.
    """

    detection: DetectionResult
    table: FrequencyTable


@register_extractor(
    "frequency-based",
    input="total",
    strict_grid=True,
    level="appliance",
    summary="Disaggregate, estimate usage frequencies, emit per-run offers (§4.1)",
)
@dataclass(frozen=True)
class FrequencyBasedExtractor(FlexibilityExtractor):
    """Two-step appliance-level extraction: detect appliances, emit offers.

    Parameters
    ----------
    database:
        Appliance specifications (the "context information" of §4.1: the
        manufacturer catalogue).
    params:
        Flex-offer attribute limits (deadline draws; energy bands come from
        the appliance's own Table 1 range).
    matching:
        Disaggregation configuration.
    min_detections:
        Appliances detected fewer times are dropped from the shortlist.
    baseline_window_minutes / baseline_quantile:
        Base-load removal knobs (see :mod:`repro.disaggregation.baseline`).
    """

    database: ApplianceDatabase = field(default_factory=default_database)
    params: FlexOfferParams = field(default_factory=FlexOfferParams)
    matching: MatchingConfig = field(default_factory=MatchingConfig)
    min_detections: int = 2
    baseline_window_minutes: int = 150
    baseline_quantile: float = 0.15

    name: str = "frequency-based"

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract appliance-level offers from a 1-minute series."""
        return self.formulate(series, self.detect(series), rng)

    def detect(self, series: TimeSeries) -> FrequencyDetection:
        """Step 1: derive the appliance shortlist by disaggregation."""
        if series.axis.resolution != ONE_MINUTE:
            raise ExtractionError(
                "appliance-level extraction requires 1-minute data "
                "(the paper's §4 granularity requirement)"
            )
        appliance_series, _base = remove_baseline(
            series, self.baseline_window_minutes, self.baseline_quantile
        )
        detection = match_pursuit(appliance_series, self.database, self.matching)
        observation_days = max(
            1, series.axis.length // series.axis.intervals_per_day
        )
        table = estimate_frequencies(
            detection.detections, self.database, observation_days, self.min_detections
        )
        return FrequencyDetection(detection=detection, table=table)

    def formulate(
        self,
        series: TimeSeries,
        detected: FrequencyDetection,
        rng: np.random.Generator,
    ) -> ExtractionResult:
        """Step 2: turn detected activations into flex-offers."""
        offers, modified = self._step2(series, detected.detection, detected.table, rng)
        return ExtractionResult(
            offers=offers,
            modified=modified,
            original=series,
            extractor=self.name,
            extras={"shortlist": detected.table, "detection": detected.detection},
        )

    # ------------------------------------------------------------------ #
    # Step 2: flex-offer formulation per detected activation
    # ------------------------------------------------------------------ #

    def _step2(
        self,
        series: TimeSeries,
        detection: DetectionResult,
        table: FrequencyTable,
        rng: np.random.Generator,
    ) -> tuple[list[FlexOffer], TimeSeries]:
        modified = series.values.copy()
        offers: list[FlexOffer] = []
        for act in detection.detections:
            if act.appliance not in table:
                continue
            entry = table.get(act.appliance)
            if not entry.flexible:
                continue
            offer = self._formulate(series.axis, modified, act, rng)
            if offer is not None:
                offers.append(offer)
        return offers, series.with_values(modified).with_name(f"{series.name}.modified")

    def _formulate(
        self,
        axis: TimeAxis,
        modified: np.ndarray,
        act: Activation,
        rng: np.random.Generator,
    ) -> FlexOffer | None:
        """One offer for one detected appliance run; subtracts its energy.

        The removal is capped at the energy actually present per minute, and
        the offer's profile is built from the *removed* energy bucketed onto
        the 15-minute grid — so extraction is exactly conservative even when
        the detector slightly over-estimated the run.
        """
        spec = self.database.get(act.appliance)
        start_minute = axis.index_of(act.start)
        template = spec.energy_profile_minutes(
            float(np.clip(act.energy_kwh, spec.energy_min_kwh, spec.energy_max_kwh))
        )
        n = min(len(template), axis.length - start_minute)
        window = modified[start_minute : start_minute + n]
        removal = np.minimum(template[:n], np.clip(window, 0.0, None))
        removed_energy = float(removal.sum())
        if removed_energy <= 1e-9:
            return None
        grid_index, energies = slice_energies_on_grid(removal, start_minute)
        energies = np.trim_zeros(energies, trim="b")
        if energies.size == 0:
            return None
        window -= removal
        # Earliest start: the grid interval containing the observed start;
        # latest start: earliest + the appliance's known time flexibility
        # (the §4.1 example: the vacuum robot's 22 hours).
        earliest = axis.start + self.params.resolution * grid_index
        flexibility = _snap(spec.time_flexibility, self.params.resolution)
        band = (
            spec.energy_min_kwh / removed_energy,
            spec.energy_max_kwh / removed_energy,
        )
        band = (min(band[0], 1.0), max(band[1], 1.0))
        return self.params.build_offer(
            earliest_start=earliest,
            slice_energies=energies,
            rng=rng,
            source=self.name,
            consumer_id=act.household_id,
            appliance=act.appliance,
            time_flexibility=flexibility,
            energy_band=band,
        )


def _snap(delta: timedelta, resolution: timedelta) -> timedelta:
    """Round a duration down to the metering grid."""
    return resolution * int(delta // resolution)

"""The Peak-based extraction approach (paper §3.2, Figure 5).

"The peak-based approach starts by detecting peaks in the 24-hour period of
the household consumption.  The peak detection process firstly calculates
the average daily consumption and considers only those peaks which have
energy amount greater than average during the whole period. ... Then the
peak filtering phase discards some peaks, which have the total energy amount
smaller than the flexible part of the day. ... The remaining candidate peaks
... are given probabilities of being selected depending on their size ...
and the single peak is randomly chosen depending on these probabilities.
Finally, the flex-offer is generated using the same methodology as in the
basic approach."

Context assumptions: more appliances run during consumption peaks, so peaks
are where flexibility lives; one flex-offer per consumer per day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_extractor
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.params import FlexOfferParams
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class Peak:
    """A contiguous above-threshold run in a daily consumption series.

    ``size`` is the paper's "peak size": the total energy of the run's
    intervals.  Indices are relative to the day window the peak came from.
    """

    first: int
    length: int
    size: float
    highest: float

    @property
    def last(self) -> int:
        """Index of the final interval of the run (inclusive)."""
        return self.first + self.length - 1

    def indices(self) -> range:
        """Interval indices covered by the peak."""
        return range(self.first, self.first + self.length)


def detect_peaks(day_values: np.ndarray, threshold: float | None = None) -> list[Peak]:
    """Find contiguous runs strictly above ``threshold``.

    ``threshold`` defaults to the day's mean interval energy — the paper's
    "average daily consumption" line (drawn at ≈0.46 kWh in Figure 5).
    """
    values = np.asarray(day_values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ExtractionError("day_values must be a non-empty vector")
    if threshold is None:
        threshold = float(values.mean())
    # Strictly above, with a relative epsilon so a constant series (whose
    # float mean can land a few ulps below the value) yields no peaks.
    epsilon = 1e-9 * max(1.0, abs(threshold))
    above = values > threshold + epsilon
    peaks: list[Peak] = []
    i = 0
    n = values.size
    while i < n:
        if not above[i]:
            i += 1
            continue
        j = i
        while j < n and above[j]:
            j += 1
        run = values[i:j]
        peaks.append(
            Peak(first=i, length=j - i, size=float(run.sum()), highest=float(run.max()))
        )
        i = j
    return peaks


def filter_peaks(peaks: list[Peak], flexible_energy: float) -> list[Peak]:
    """Discard peaks whose total energy is smaller than the flexible part.

    Figure 5: with a 5 % flexible share the day's flexible energy is
    ``39.02 × 0.05 = 1.951`` kWh and peaks 1–5 and 8 are discarded because
    their sizes fall below it.
    """
    return [p for p in peaks if p.size >= flexible_energy]


def selection_probabilities(peaks: list[Peak]) -> np.ndarray:
    """Size-proportional selection probabilities (Figure 5: 29 % / 71 %)."""
    if not peaks:
        return np.zeros(0)
    sizes = np.array([p.size for p in peaks], dtype=np.float64)
    total = sizes.sum()
    if total <= 0.0:
        return np.full(len(peaks), 1.0 / len(peaks))
    return sizes / total


def select_peak(peaks: list[Peak], rng: np.random.Generator) -> Peak:
    """Randomly choose one peak with size-proportional probability."""
    if not peaks:
        raise ExtractionError("cannot select from an empty peak list")
    probs = selection_probabilities(peaks)
    return peaks[int(rng.choice(len(peaks), p=probs))]


@register_extractor(
    "peak-based",
    input="metered",
    level="household",
    summary="One flex-offer per day on a size-sampled consumption peak (§3.2)",
)
@dataclass(frozen=True)
class PeakBasedExtractor(FlexibilityExtractor):
    """One flex-offer per day, positioned on a size-sampled consumption peak.

    Parameters
    ----------
    params:
        Attribute variation limits; ``params.flexible_share`` drives both the
        peak filter threshold and the extracted energy.
    fallback_to_largest:
        When no peak survives filtering (tiny consumption days), fall back to
        the largest detected peak instead of skipping the day.
    """

    params: FlexOfferParams = field(default_factory=FlexOfferParams)
    fallback_to_largest: bool = False
    consumer_id: str = ""

    name: str = "peak-based"

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract one offer per 24-hour window of the input series."""
        axis = series.axis
        modified = series.values.copy()
        offers = []
        day_reports = []
        for first, length in axis.day_slices():
            window = modified[first : first + length]
            day_energy = float(window.sum())
            flexible_energy = self.params.flexible_share * day_energy
            peaks = detect_peaks(window)
            candidates = filter_peaks(peaks, flexible_energy)
            report = {
                "day_start": axis.time_at(first),
                "day_energy": day_energy,
                "flexible_energy": flexible_energy,
                "peaks": peaks,
                "candidates": candidates,
                "probabilities": selection_probabilities(candidates),
            }
            day_reports.append(report)
            if not candidates:
                if not self.fallback_to_largest or not peaks:
                    continue
                candidates = [max(peaks, key=lambda p: p.size)]
                report["candidates"] = candidates
                report["probabilities"] = selection_probabilities(candidates)
            chosen = select_peak(candidates, rng)
            report["chosen"] = chosen
            offer, removal = self._formulate(
                axis, first, window, chosen, flexible_energy, rng
            )
            if offer is None:
                continue
            window[chosen.first : chosen.first + chosen.length] -= removal
            offers.append(offer)
        return ExtractionResult(
            offers=offers,
            modified=series.with_values(modified).with_name(f"{series.name}.modified"),
            original=series,
            extractor=self.name,
            extras={"days": day_reports},
        )

    def _formulate(
        self,
        axis,
        day_first: int,
        window: np.ndarray,
        peak: Peak,
        flexible_energy: float,
        rng: np.random.Generator,
    ):
        """Formulate the day's offer on the chosen peak (basic methodology).

        The profile covers the peak's intervals (bounded by the params'
        slice budget, centred on the peak's heaviest stretch); slice energies
        follow the consumption shape over the peak scaled to the flexible
        energy, capped at available consumption.
        """
        max_slices = min(self.params.slices_max, peak.length)
        n_slices = max(min(self.params.draw_slice_count(rng), max_slices), 1)
        # Choose the heaviest contiguous n_slices stretch within the peak.
        peak_values = window[peak.first : peak.first + peak.length]
        if peak.length == n_slices:
            offset = 0
        else:
            sums = np.convolve(peak_values, np.ones(n_slices), mode="valid")
            offset = int(np.argmax(sums))
        block = peak_values[offset : offset + n_slices]
        block_energy = float(block.sum())
        if block_energy <= 0.0:
            return None, None
        shape = block / block_energy
        energies = np.minimum(shape * flexible_energy, block)
        if float(energies.sum()) <= 0.0:
            return None, None
        earliest = axis.time_at(day_first + peak.first + offset)
        offer = self.params.build_offer(
            earliest_start=earliest,
            slice_energies=energies,
            rng=rng,
            source=self.name,
            consumer_id=self.consumer_id,
        )
        removal = np.zeros(peak.length)
        removal[offset : offset + n_slices] = energies
        return offer, removal

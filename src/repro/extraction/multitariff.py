"""The Multi-tariff extraction approach (paper §3.3).

"The multi-tariff approach firstly analyzes one tariff time series to
estimate the usual consumption of a consumer.  It can calculate the typical
behavior during the work days, weekends, holidays, different seasons of the
year, etc.  Then, the extraction approach takes multi-tariff time series and
detects the flexible consumption in it by comparing with the typical
consumption in one tariff."

The paper could not run this approach ("we do not have the required time
series"); here the paired series come from
:func:`repro.simulation.tariff.simulate_tariff_pair`, so the approach is
implemented and evaluated end to end.

Outputs follow the paper's contract: the one-tariff series is passed through
unchanged (``extras["reference"]``), flex-offers are extracted from the
multi-tariff series, and the modified multi-tariff series has the flexible
energy subtracted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_extractor
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.params import FlexOfferParams
from repro.simulation.tariff import TariffScheme, night_tariff
from repro.timeseries.calendar import DayType, day_type
from repro.timeseries.series import TimeSeries


def typical_daily_profiles_by_day_type(
    reference: TimeSeries,
) -> dict[DayType, np.ndarray]:
    """Mean daily profile of the reference series per day type.

    Days are grouped by :func:`repro.timeseries.calendar.day_type`; each
    group's profile is the per-interval *mean*.  The mean (not the median)
    matters here: sparse appliance runs (a washing machine three times a
    week) appear in the mean profile as their average energy mass, so a
    behavioural shift away from the usual hours shows up as a *deficit*
    against the typical profile.  A median would hide sparse usage entirely
    and the deficit side of the comparison would vanish.
    Day types never observed fall back to the overall mean profile.
    """
    per_day = reference.axis.intervals_per_day
    whole = reference.axis.length // per_day
    if whole < 1:
        raise ExtractionError("reference series must cover at least one full day")
    matrix = reference.values[: whole * per_day].reshape(whole, per_day)
    groups: dict[DayType, list[int]] = {t: [] for t in DayType}
    for day_no in range(whole):
        date = (reference.axis.start + reference.axis.resolution * (day_no * per_day)).date()
        groups[day_type(date)].append(day_no)
    overall = matrix.mean(axis=0)
    profiles = {}
    for dtype, rows in groups.items():
        profiles[dtype] = matrix[rows].mean(axis=0) if rows else overall.copy()
    return profiles


@register_extractor(
    "multi-tariff",
    input="metered",
    level="household",
    summary="Detect tariff-induced load shifting vs a one-tariff reference (§3.3)",
)
@dataclass(frozen=True)
class MultiTariffExtractor(FlexibilityExtractor):
    """Detect tariff-induced load shifting by comparison with typical days.

    Parameters
    ----------
    reference:
        One-tariff historical series of the *same* consumer (used only as
        the behavioural reference, exactly as the paper specifies).
    scheme:
        The multi-tariff scheme in force during the observed series.
    params:
        Flex-offer attribute variation limits.
    min_shift_kwh:
        Days with less detected shifted energy than this produce no offer
        (avoids formulating offers out of noise).
    """

    reference: TimeSeries
    scheme: TariffScheme = field(default_factory=night_tariff)
    params: FlexOfferParams = field(default_factory=FlexOfferParams)
    min_shift_kwh: float = 0.25
    max_offers_per_day: int = 3

    name: str = "multi-tariff"

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract offers from a multi-tariff series day by day."""
        if series.axis.resolution != self.reference.axis.resolution:
            raise ExtractionError(
                "observed and reference series must share a resolution"
            )
        profiles = typical_daily_profiles_by_day_type(self.reference)
        axis = series.axis
        per_day = axis.intervals_per_day
        low_mask = self._low_tariff_mask(axis)

        modified = series.values.copy()
        offers = []
        day_reports = []
        for first, length in axis.day_slices():
            if length < per_day:
                continue  # partial trailing day: not comparable to a profile
            date = axis.time_at(first).date()
            typical = profiles[day_type(date)]
            window = modified[first : first + length]
            day_low = low_mask[first : first + length]
            delta = window - typical
            excess_low = np.where(day_low, np.clip(delta, 0.0, None), 0.0)
            deficit_high = np.where(~day_low, np.clip(-delta, 0.0, None), 0.0)
            shifted = float(min(excess_low.sum(), deficit_high.sum()))
            day_reports.append(
                {
                    "day_start": axis.time_at(first),
                    "excess_low_kwh": float(excess_low.sum()),
                    "deficit_high_kwh": float(deficit_high.sum()),
                    "shifted_kwh": shifted,
                }
            )
            if shifted < self.min_shift_kwh:
                continue
            budget = shifted
            for _ in range(self.max_offers_per_day):
                if budget < self.min_shift_kwh:
                    break
                offer, removal = self._formulate(
                    axis, first, excess_low, deficit_high, budget, rng
                )
                if offer is None:
                    break
                window -= removal
                excess_low -= removal
                budget -= float(removal.sum())
                offers.append(offer)
        return ExtractionResult(
            offers=offers,
            modified=series.with_values(modified).with_name(f"{series.name}.modified"),
            original=series,
            extractor=self.name,
            extras={
                "reference": self.reference,
                "typical_profiles": profiles,
                "days": day_reports,
            },
        )

    def _low_tariff_mask(self, axis) -> np.ndarray:
        """Boolean mask of intervals whose start lies in a low-price window."""
        return np.array([self.scheme.is_low(t) for t in axis.times()])

    def _formulate(
        self,
        axis,
        day_first: int,
        excess_low: np.ndarray,
        deficit_high: np.ndarray,
        shifted: float,
        rng: np.random.Generator,
    ):
        """Formulate the day's offer on the dominant low-tariff excess run.

        The offer's profile sits where the shifted consumption was observed
        (the excess run); its start-time flexibility spans from where the
        consumption *would* have been under flat pricing (the dominant
        high-tariff deficit run) to the observed position — that is the
        behaviourally demonstrated shiftability.
        """
        run_first, run_length = _dominant_run(excess_low)
        if run_length == 0:
            return None, None
        run_length = min(run_length, self.params.slices_max)
        run = excess_low[run_first : run_first + run_length]
        run_energy = float(run.sum())
        if run_energy <= 0.0:
            return None, None
        energy = min(run_energy, shifted)
        energies = run * (energy / run_energy)

        deficit_first, deficit_length = _dominant_run(deficit_high)
        observed_index = day_first + run_first
        if deficit_length == 0:
            flexibility = self.params.draw_time_flexibility(rng)
            earliest = axis.time_at(observed_index)
        else:
            deficit_index = day_first + deficit_first
            lo = min(deficit_index, observed_index)
            hi = max(deficit_index, observed_index)
            earliest = axis.time_at(lo)
            flexibility = axis.resolution * (hi - lo)
        offer = self.params.build_offer(
            earliest_start=earliest,
            slice_energies=energies,
            rng=rng,
            source=self.name,
            time_flexibility=flexibility,
        )
        removal = np.zeros_like(excess_low)
        removal[run_first : run_first + run_length] = energies
        return offer, removal


def _dominant_run(values: np.ndarray) -> tuple[int, int]:
    """(first, length) of the contiguous positive run with the most energy."""
    best_first, best_length, best_energy = 0, 0, 0.0
    i = 0
    n = len(values)
    while i < n:
        if values[i] <= 0.0:
            i += 1
            continue
        j = i
        while j < n and values[j] > 0.0:
            j += 1
        energy = float(values[i:j].sum())
        if energy > best_energy:
            best_first, best_length, best_energy = i, j - i, energy
        i = j
    return best_first, best_length

"""Flex-offer formulation parameters (paper §3.1 "context information").

The basic extraction "expects some parameters.  The most important is the
percentage of the flexible demand part in the input time series.  Other
parameters are directly related to the flex-offer attribute information ...
the number of intervals in a single flex-offer, interval duration, minimum
and maximum percentage of required energy, creation time, acceptance time,
assignment time, earliest start time, and latest start time.  All these
parameters are randomized in controlled variation limits in order to
generate non-uniform flex-offers."

:class:`FlexOfferParams` holds those controlled variation limits and knows
how to turn a vector of per-interval extracted energies into a fully
attributed :class:`~repro.flexoffer.model.FlexOffer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.errors import ValidationError
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.timeseries.axis import FIFTEEN_MINUTES


@dataclass(frozen=True, slots=True)
class FlexOfferParams:
    """Controlled variation limits for flex-offer attributes.

    Parameters
    ----------
    flexible_share:
        Fraction of consumption considered flexible (paper: "Generally, the
        electricity consumption time series exhibit 0.1–6.5 % of flexible
        demand"; the Figure 5 walkthrough uses 5 %).
    slices_min / slices_max:
        Range for the number of profile slices per offer.
    resolution:
        Slice duration (the paper's 15-minute metering interval).
    energy_min_pct / energy_max_pct:
        Ranges for the minimum/maximum energy band around the extracted
        per-slice energy: each offer draws ``low ∈ energy_min_pct`` and
        ``high ∈ energy_max_pct`` and sets slice bounds
        ``[low × e, high × e]``.
    time_flexibility_min / time_flexibility_max:
        Range for ``latest_start − earliest_start``.
    creation_lead_min / creation_lead_max:
        How long before the earliest start the offer was created.
    assignment_lead_min / assignment_lead_max:
        How long before the earliest start the assignment deadline falls.
    """

    flexible_share: float = 0.05
    slices_min: int = 2
    slices_max: int = 8
    resolution: timedelta = FIFTEEN_MINUTES
    energy_min_pct: tuple[float, float] = (0.75, 0.95)
    energy_max_pct: tuple[float, float] = (1.05, 1.3)
    time_flexibility_min: timedelta = timedelta(hours=1)
    time_flexibility_max: timedelta = timedelta(hours=12)
    creation_lead_min: timedelta = timedelta(hours=12)
    creation_lead_max: timedelta = timedelta(hours=36)
    assignment_lead_min: timedelta = timedelta(minutes=15)
    assignment_lead_max: timedelta = timedelta(hours=2)

    def __post_init__(self) -> None:
        if not 0.0 < self.flexible_share <= 1.0:
            raise ValidationError(
                f"flexible_share must be in (0, 1], got {self.flexible_share}"
            )
        if not 1 <= self.slices_min <= self.slices_max:
            raise ValidationError("need 1 <= slices_min <= slices_max")
        lo_lo, lo_hi = self.energy_min_pct
        hi_lo, hi_hi = self.energy_max_pct
        if not 0.0 <= lo_lo <= lo_hi <= 1.0:
            raise ValidationError("energy_min_pct must be within [0, 1], ordered")
        if not 1.0 <= hi_lo <= hi_hi:
            raise ValidationError("energy_max_pct must be >= 1, ordered")
        if self.time_flexibility_min > self.time_flexibility_max:
            raise ValidationError("time flexibility range is inverted")
        if self.creation_lead_min > self.creation_lead_max:
            raise ValidationError("creation lead range is inverted")
        if self.assignment_lead_min > self.assignment_lead_max:
            raise ValidationError("assignment lead range is inverted")

    # ------------------------------------------------------------------ #
    # Randomised draws (the "controlled variation")
    # ------------------------------------------------------------------ #

    def draw_slice_count(self, rng: np.random.Generator) -> int:
        """Number of profile slices for one offer."""
        return int(rng.integers(self.slices_min, self.slices_max + 1))

    def draw_energy_band(self, rng: np.random.Generator) -> tuple[float, float]:
        """(low, high) multipliers around the extracted energy."""
        low = float(rng.uniform(*self.energy_min_pct))
        high = float(rng.uniform(*self.energy_max_pct))
        return low, high

    def draw_time_flexibility(self, rng: np.random.Generator) -> timedelta:
        """Start-time flexibility, grid-aligned to the resolution."""
        lo = self.time_flexibility_min / self.resolution
        hi = self.time_flexibility_max / self.resolution
        intervals = int(rng.integers(int(lo), int(hi) + 1))
        return self.resolution * intervals

    def draw_deadlines(
        self, earliest_start: datetime, rng: np.random.Generator
    ) -> tuple[datetime, datetime, datetime]:
        """(creation, acceptance, assignment) honouring the lifecycle order.

        creation <= acceptance <= assignment <= earliest_start.
        """
        creation_lead_s = rng.uniform(
            self.creation_lead_min.total_seconds(), self.creation_lead_max.total_seconds()
        )
        creation = earliest_start - timedelta(seconds=float(creation_lead_s))
        assignment_lead_s = rng.uniform(
            self.assignment_lead_min.total_seconds(),
            self.assignment_lead_max.total_seconds(),
        )
        assignment = earliest_start - timedelta(seconds=float(assignment_lead_s))
        if assignment < creation:
            assignment = creation
        # Acceptance falls a uniform fraction of the way creation→assignment.
        span = (assignment - creation).total_seconds()
        acceptance = creation + timedelta(seconds=float(rng.uniform(0.0, span)))
        return creation, acceptance, assignment

    # ------------------------------------------------------------------ #
    # Flex-offer formulation
    # ------------------------------------------------------------------ #

    def build_offer(
        self,
        earliest_start: datetime,
        slice_energies: np.ndarray,
        rng: np.random.Generator,
        source: str,
        consumer_id: str = "",
        appliance: str = "",
        time_flexibility: timedelta | None = None,
        energy_band: tuple[float, float] | None = None,
    ) -> FlexOffer:
        """Formulate one flex-offer around extracted per-slice energies.

        ``slice_energies[i]`` is the expected energy of slice ``i`` (kWh);
        the energy band draw turns each into a ``[low·e, high·e]`` range so
        the *midpoint-sum* of the profile equals ``mean(band)·sum(energies)``.
        The band is centred post-hoc so the midpoint sum stays exactly equal
        to the extracted energy (the paper's conservation property).
        """
        energies = np.asarray(slice_energies, dtype=np.float64)
        if energies.ndim != 1 or energies.size < 1:
            raise ValidationError("slice_energies must be a non-empty vector")
        if (energies < 0).any():
            raise ValidationError("slice energies must be non-negative")
        low, high = energy_band if energy_band is not None else self.draw_energy_band(rng)
        # Recentre the band so (low + high) / 2 == 1: conservation of the
        # expected energy regardless of the asymmetric draw.
        centre = 0.5 * (low + high)
        low, high = low / centre, high / centre
        flexibility = (
            time_flexibility if time_flexibility is not None
            else self.draw_time_flexibility(rng)
        )
        creation, acceptance, assignment = self.draw_deadlines(earliest_start, rng)
        slices = tuple(
            ProfileSlice(energy_min=float(low * e), energy_max=float(high * e))
            for e in energies
        )
        return FlexOffer(
            earliest_start=earliest_start,
            latest_start=earliest_start + flexibility,
            slices=slices,
            resolution=self.resolution,
            offer_id=next_offer_id(source),
            consumer_id=consumer_id,
            appliance=appliance,
            source=source,
            creation_time=creation,
            acceptance_deadline=acceptance,
            assignment_deadline=assignment,
        )

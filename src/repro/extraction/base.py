"""The general flexibility-extraction contract (paper §2, Figure 2).

"The input of flexibility extraction is historical time series and the
context information ... then the potential flexibilities are extracted,
formulated as flex-offers and outputted together with the modified time
series (the flexible energy extracted from the original ones)."

Every approach in Figure 3 implements :class:`FlexibilityExtractor`:
``extract(series, rng) -> ExtractionResult``.  The result carries the
flex-offers, the modified series, and approach-specific extras (detected
peaks, appliance shortlists, ...), plus the invariants every approach must
honour — most importantly energy conservation: the expected energy of the
extracted offers equals the energy removed from the input series.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.flexoffer.model import FlexOffer
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class ExtractionResult:
    """Output of one extraction run (paper Figure 2's right-hand side)."""

    offers: list[FlexOffer]
    modified: TimeSeries
    original: TimeSeries
    extractor: str
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def extracted_energy(self) -> float:
        """Expected (profile-midpoint) energy across all offers (kWh).

        Matches the paper's accounting: "the total energy amount (the sum of
        the average required energy in the profile intervals) is equal to the
        flexible part extracted from the input time series".
        """
        return float(
            sum(sum(s.midpoint for s in offer.slices) for offer in self.offers)
        )

    @property
    def removed_energy(self) -> float:
        """Energy actually removed from the input series (kWh)."""
        return self.original.total() - self.modified.total()

    def energy_conservation_error(self) -> float:
        """|extracted − removed|; ~0 for conservative extractors."""
        return abs(self.extracted_energy - self.removed_energy)

    @property
    def extracted_share(self) -> float:
        """Extracted energy as a fraction of the original total."""
        total = self.original.total()
        return self.extracted_energy / total if total else 0.0

    def extracted_series(self) -> TimeSeries:
        """Per-interval expected extracted energy (original − modified)."""
        return (self.original - self.modified).with_name(f"{self.extractor}-extracted")

    def offers_per_day(self) -> float:
        """Average number of offers per day of input."""
        days = self.original.axis.length / self.original.axis.intervals_per_day
        return len(self.offers) / days if days else 0.0

    def summary(self) -> dict[str, float]:
        """Key numbers for reports and benchmark output."""
        return {
            "offers": float(len(self.offers)),
            "offers_per_day": self.offers_per_day(),
            "extracted_kwh": self.extracted_energy,
            "extracted_share": self.extracted_share,
            "conservation_error_kwh": self.energy_conservation_error(),
        }


class FlexibilityExtractor(ABC):
    """Abstract base of the five extraction approaches (+ random baseline)."""

    #: Human-readable approach name (used in reports and offer ``source``).
    name: str = "abstract"

    @abstractmethod
    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract flex-offers from a historical consumption series.

        Parameters
        ----------
        series:
            Historical consumption, energy per interval (kWh).  Household-
            level approaches expect the 15-minute metering grid; appliance-
            level approaches expect the 1-minute grid (see each class).
        rng:
            Source of randomness for the controlled attribute variation the
            paper prescribes.  Extraction is deterministic given the rng
            state.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

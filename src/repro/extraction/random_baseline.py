"""The random flex-offer generator as an extractor (the paper's baseline).

Paper §1: before this work, "the flex-offers are being randomly generated
for the testing purposes.  Specifically, the random approach assumes that
consumption at every moment of a day is potentially flexible."  The paper
criticises exactly this: random offers ignore the consumption shape, so
aggregated flex-offers are "more or less uniformly dispatched within the
day" and peak-hour scalability cannot be tested.

Wrapped in the :class:`FlexibilityExtractor` interface so the evaluation can
run it head-to-head against the five real approaches.  Note it is *not*
energy-conservative: it invents offers without removing energy from the
series — one more way in which it is unrealistic, and visible in the
``conservation_error`` column of the comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_extractor
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.flexoffer.generators import RandomGeneratorConfig, random_flexoffers
from repro.timeseries.series import TimeSeries


@register_extractor(
    "random-baseline",
    input="metered",
    level="baseline",
    summary="Uniformly random offers, blind to consumption (the pre-paper baseline)",
)
@dataclass(frozen=True)
class RandomBaselineExtractor(FlexibilityExtractor):
    """Uniformly random flex-offers, blind to the input series shape."""

    config: RandomGeneratorConfig = field(default_factory=RandomGeneratorConfig)
    consumer_id: str = ""

    name: str = "random-baseline"

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Generate offers over the series horizon; the series is untouched."""
        offers = random_flexoffers(
            series.axis, rng, self.config, consumer_id=self.consumer_id
        )
        return ExtractionResult(
            offers=offers,
            modified=series.copy(),
            original=series,
            extractor=self.name,
            extras={"conservative": False},
        )

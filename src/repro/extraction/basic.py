"""The Basic extraction approach (paper §3.1, Figure 4).

"The process of the flexibility extraction starts with the division of input
time series into periods, and then one flex-offer is extracted for each of
the periods spanning few hours, then the fraction of flexibility within each
period is calculated (based on the configuration parameter).  Lastly, a
flex-offer for each period is extracted.  Afterwards, time and energy amount
flexibilities are built by applying some randomization to the constructed
flex-offers."

Context assumption: at any given time of the day, some of the household
consumption is flexible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_extractor
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.params import FlexOfferParams
from repro.timeseries.series import TimeSeries


@register_extractor(
    "basic",
    input="metered",
    level="household",
    summary="One flex-offer per fixed-length period, share-based split (§3.1)",
)
@dataclass(frozen=True)
class BasicExtractor(FlexibilityExtractor):
    """One flex-offer per fixed-length period, share-based energy split.

    Parameters
    ----------
    params:
        Attribute variation limits; ``params.flexible_share`` is the paper's
        "percentage of the flexible demand part".
    period_hours:
        Period length; the default 6 hours yields the four offers per day
        shown in Figure 4.
    consumer_id:
        Stamped on the produced offers.
    """

    params: FlexOfferParams = field(default_factory=FlexOfferParams)
    period_hours: int = 6
    consumer_id: str = ""

    name: str = "basic"

    def __post_init__(self) -> None:
        if self.period_hours < 1:
            raise ExtractionError("period_hours must be >= 1")

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract one flex-offer per period of the input series."""
        axis = series.axis
        per_period = int(self.period_hours * axis.intervals_per_hour)
        if per_period < 1:
            raise ExtractionError(
                f"period of {self.period_hours} h is below the grid resolution"
            )
        modified = series.values.copy()
        offers = []
        for first in range(0, axis.length, per_period):
            length = min(per_period, axis.length - first)
            window = modified[first : first + length]
            period_energy = float(window.sum())
            flexible_energy = self.params.flexible_share * period_energy
            if flexible_energy <= 0.0:
                continue
            offer, removed = self._formulate(axis, first, length, window, flexible_energy, rng)
            if offer is None:
                continue
            window -= removed
            offers.append(offer)
        return ExtractionResult(
            offers=offers,
            modified=series.with_values(modified).with_name(f"{series.name}.modified"),
            original=series,
            extractor=self.name,
        )

    def _formulate(
        self,
        axis,
        first: int,
        length: int,
        window: np.ndarray,
        flexible_energy: float,
        rng: np.random.Generator,
    ):
        """Place one offer inside a period window.

        The profile occupies a random sub-block of the period; its per-slice
        energies follow the consumption shape within that sub-block (so the
        offer looks like the demand it came from), scaled to the flexible
        energy.  The removal vector is returned so the caller can subtract it
        from the series — capped at the available consumption per interval.
        """
        n_slices = min(self.params.draw_slice_count(rng), length)
        start_offset = int(rng.integers(0, length - n_slices + 1))
        block = window[start_offset : start_offset + n_slices]
        block_energy = float(block.sum())
        if block_energy <= 0.0:
            return None, None
        shape = block / block_energy
        energies = shape * flexible_energy
        # Cap removal at what is actually there, interval by interval; any
        # shortfall is dropped (cannot extract energy that was not consumed).
        removal = np.minimum(energies, block)
        if float(removal.sum()) <= 0.0:
            return None, None
        energies = removal
        earliest = axis.time_at(first + start_offset)
        # Time flexibility: drawn from params but kept inside the same day
        # horizon spirit of Figure 4 (each offer occupies "its own period").
        offer = self.params.build_offer(
            earliest_start=earliest,
            slice_energies=energies,
            rng=rng,
            source=self.name,
            consumer_id=self.consumer_id,
        )
        removed = np.zeros_like(window)
        removed[start_offset : start_offset + n_slices] = removal
        return offer, removed

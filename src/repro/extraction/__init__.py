"""CORE: the paper's flexibility-extraction approaches (Figure 3).

Two household-level approaches (:class:`BasicExtractor`,
:class:`PeakBasedExtractor`), the comparison-driven
:class:`MultiTariffExtractor`, two appliance-level approaches
(:class:`FrequencyBasedExtractor`, :class:`ScheduleBasedExtractor`) and the
pre-paper :class:`RandomBaselineExtractor`, all behind the
:class:`FlexibilityExtractor` contract of Figure 2.

Subsystem contract:

* **Figure 2 semantics** — an extractor consumes a series and an explicit
  ``numpy.random.Generator`` and returns offers plus the modified
  (flexibility-removed) series; conservative approaches keep
  ``|extracted − removed| ≤ 1e-6 kWh`` per household (the conformance
  matrix's ``energy-conservation`` invariant).
* **Determinism** — identical series, parameters and generator state give
  identical offers; no extractor touches global randomness.
* **Registry construction** — string-driven callers construct extractors
  only through :func:`repro.api.registry.create_extractor`; each class
  declares its input grid there (appliance-level approaches hard-require
  the 1-minute grid, §4).
"""

from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.basic import BasicExtractor
from repro.extraction.frequency_based import FrequencyBasedExtractor
from repro.extraction.multitariff import (
    MultiTariffExtractor,
    typical_daily_profiles_by_day_type,
)
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import (
    Peak,
    PeakBasedExtractor,
    detect_peaks,
    filter_peaks,
    select_peak,
    selection_probabilities,
)
from repro.extraction.online import OnlineConfig, OnlineFlexOfferGenerator
from repro.extraction.production import (
    DispatchableProductionExtractor,
    WindProductionExtractor,
)
from repro.extraction.random_baseline import RandomBaselineExtractor
from repro.extraction.schedule_based import ScheduleBasedExtractor

__all__ = [
    "ExtractionResult",
    "FlexibilityExtractor",
    "BasicExtractor",
    "FrequencyBasedExtractor",
    "MultiTariffExtractor",
    "typical_daily_profiles_by_day_type",
    "FlexOfferParams",
    "Peak",
    "PeakBasedExtractor",
    "detect_peaks",
    "filter_peaks",
    "select_peak",
    "selection_probabilities",
    "OnlineConfig",
    "OnlineFlexOfferGenerator",
    "DispatchableProductionExtractor",
    "WindProductionExtractor",
    "RandomBaselineExtractor",
    "ScheduleBasedExtractor",
]

"""CORE: the paper's flexibility-extraction approaches (Figure 3).

Two household-level approaches (:class:`BasicExtractor`,
:class:`PeakBasedExtractor`), the comparison-driven
:class:`MultiTariffExtractor`, two appliance-level approaches
(:class:`FrequencyBasedExtractor`, :class:`ScheduleBasedExtractor`) and the
pre-paper :class:`RandomBaselineExtractor`, all behind the
:class:`FlexibilityExtractor` contract of Figure 2.
"""

from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.basic import BasicExtractor
from repro.extraction.frequency_based import FrequencyBasedExtractor
from repro.extraction.multitariff import (
    MultiTariffExtractor,
    typical_daily_profiles_by_day_type,
)
from repro.extraction.params import FlexOfferParams
from repro.extraction.peaks import (
    Peak,
    PeakBasedExtractor,
    detect_peaks,
    filter_peaks,
    select_peak,
    selection_probabilities,
)
from repro.extraction.online import OnlineConfig, OnlineFlexOfferGenerator
from repro.extraction.production import (
    DispatchableProductionExtractor,
    WindProductionExtractor,
)
from repro.extraction.random_baseline import RandomBaselineExtractor
from repro.extraction.schedule_based import ScheduleBasedExtractor

__all__ = [
    "ExtractionResult",
    "FlexibilityExtractor",
    "BasicExtractor",
    "FrequencyBasedExtractor",
    "MultiTariffExtractor",
    "typical_daily_profiles_by_day_type",
    "FlexOfferParams",
    "Peak",
    "PeakBasedExtractor",
    "detect_peaks",
    "filter_peaks",
    "select_peak",
    "selection_probabilities",
    "OnlineConfig",
    "OnlineFlexOfferGenerator",
    "DispatchableProductionExtractor",
    "WindProductionExtractor",
    "RandomBaselineExtractor",
    "ScheduleBasedExtractor",
]

"""Production flex-offers (paper §6, future work — implemented).

"The RES producer could issue a production flex-offer specifying that the
start of electricity production can be either in 2 hours or 3 hours ahead,
depending on the flex-offer schedule. Traditional electricity producers are
even more flexible, thus, they can issue production flex-offers for almost
all of their production."

Production is modelled as negative consumption (the sign convention of
:class:`~repro.flexoffer.model.FlexOffer`), so the same aggregation and
scheduling machinery applies: scheduling a mixed consumption+production pool
against zero target minimises the net imbalance directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

import numpy as np

from repro.api.registry import register_extractor
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.timeseries.series import TimeSeries


@register_extractor(
    "wind-production",
    input="metered",
    level="production",
    summary="Production offers on high-output runs of a wind forecast (§6)",
)
@dataclass(frozen=True)
class WindProductionExtractor(FlexibilityExtractor):
    """Extract production flex-offers from a (forecast) production series.

    High-production runs — contiguous intervals above a quantile threshold —
    become production offers: the energy bounds reflect forecast uncertainty
    (``uncertainty`` fraction around the forecast), the start flexibility is
    the short window within which the producer can commit to ramping
    (the paper's "either in 2 hours or 3 hours ahead").

    The input series is passed through unchanged: production extraction
    formulates offers *about* the forecast, it does not remove energy.
    """

    threshold_quantile: float = 0.6
    uncertainty: float = 0.2
    start_flexibility: timedelta = timedelta(hours=1)
    max_profile_intervals: int = 16

    name: str = "wind-production"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_quantile < 1.0:
            raise ExtractionError("threshold_quantile must be in (0, 1)")
        if not 0.0 <= self.uncertainty < 1.0:
            raise ExtractionError("uncertainty must be in [0, 1)")
        if self.max_profile_intervals < 1:
            raise ExtractionError("max_profile_intervals must be >= 1")

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Formulate production offers on high-output runs of ``series``."""
        if not series.is_nonnegative():
            raise ExtractionError("production series must be non-negative")
        values = series.values
        threshold = float(np.quantile(values, self.threshold_quantile))
        offers: list[FlexOffer] = []
        i = 0
        n = len(values)
        while i < n:
            if values[i] <= threshold or values[i] <= 0.0:
                i += 1
                continue
            j = i
            while j < n and values[j] > threshold:
                j += 1
            for first in range(i, j, self.max_profile_intervals):
                length = min(self.max_profile_intervals, j - first)
                block = values[first : first + length]
                offers.append(self._offer(series, first, block))
            i = j
        return ExtractionResult(
            offers=offers,
            modified=series.copy(),
            original=series,
            extractor=self.name,
            extras={"threshold": threshold, "conservative": False},
        )

    def _offer(self, series: TimeSeries, first: int, block: np.ndarray) -> FlexOffer:
        # Production = negative consumption; the uncertainty band widens the
        # magnitude range, with (more negative) = (more production).
        slices = tuple(
            ProfileSlice(
                energy_min=float(-(1.0 + self.uncertainty) * e),
                energy_max=float(-(1.0 - self.uncertainty) * e),
            )
            for e in block
        )
        earliest = series.axis.time_at(first)
        return FlexOffer(
            earliest_start=earliest,
            latest_start=earliest + self.start_flexibility,
            slices=slices,
            resolution=series.axis.resolution,
            offer_id=next_offer_id("prod"),
            source=self.name,
            creation_time=earliest - timedelta(hours=3),
        )


@register_extractor(
    "dispatchable-production",
    input="metered",
    level="production",
    summary="One deep-band offer per day for a dispatchable producer (§6)",
)
@dataclass(frozen=True)
class DispatchableProductionExtractor(FlexibilityExtractor):
    """Production offers for a conventional (dispatchable) producer.

    "Traditional electricity producers are even more flexible": one offer
    per day covering (almost) the full capacity, with wide start flexibility
    and a deep energy band from minimum stable generation up to capacity.
    """

    capacity_kw: float = 500.0
    min_stable_fraction: float = 0.3
    block_hours: int = 4
    start_flexibility: timedelta = timedelta(hours=12)

    name: str = "dispatchable-production"

    def __post_init__(self) -> None:
        if self.capacity_kw <= 0:
            raise ExtractionError("capacity_kw must be positive")
        if not 0.0 <= self.min_stable_fraction <= 1.0:
            raise ExtractionError("min_stable_fraction must be in [0, 1]")
        if self.block_hours < 1:
            raise ExtractionError("block_hours must be >= 1")

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """One offer per day of the horizon; ``series`` sets the horizon only."""
        axis = series.axis
        per_block = int(self.block_hours * axis.intervals_per_hour)
        energy_max = self.capacity_kw * axis.hours_per_interval
        energy_min = energy_max * self.min_stable_fraction
        offers = []
        for first, length in axis.day_slices():
            blocks = min(per_block, length)
            slices = tuple(
                ProfileSlice(energy_min=-energy_max, energy_max=-energy_min)
                for _ in range(blocks)
            )
            earliest = axis.time_at(first)
            flexibility = min(
                self.start_flexibility, axis.resolution * max(0, length - blocks)
            )
            offers.append(
                FlexOffer(
                    earliest_start=earliest,
                    latest_start=earliest + flexibility,
                    slices=slices,
                    resolution=axis.resolution,
                    offer_id=next_offer_id("disp"),
                    source=self.name,
                )
            )
        return ExtractionResult(
            offers=offers,
            modified=series.copy(),
            original=series,
            extractor=self.name,
            extras={"conservative": False},
        )

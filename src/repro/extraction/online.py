"""Real-time flex-offer generation (paper §6, future work — implemented).

"The appliance level extraction approaches can be easily extended to the
real-time flex-offer generators, which detect flexibilities and formulate
flex-offers based on the usual appliance usage or the given (mined) schedule
of the household."

Two operating modes, both built on a training pass over historical data
(disaggregation → frequency table → mined schedules):

* **anticipatory** — before a day starts, emit *predicted* flex-offers for
  the appliances the household habitually runs on such a day, positioned on
  the mined habit windows.  This is what MIRABEL's day-ahead scheduling
  needs: offers exist before the energy is consumed.
* **reactive** — consume a live stream of 1-minute readings; when the first
  minutes of an appliance's signature appear in the stream, emit a
  flex-offer for the remainder of the cycle immediately (the "detect
  flexibilities ... on the fly" of §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.appliances.model import ApplianceSpec
from repro.disaggregation.baseline import remove_baseline
from repro.disaggregation.frequency import FrequencyTable, estimate_frequencies
from repro.disaggregation.matching import MatchingConfig, match_pursuit
from repro.disaggregation.schedule_mining import MinedSchedule, count_day_types, mine_schedule
from repro.errors import ExtractionError
from repro.extraction.frequency_based import _snap
from repro.extraction.params import FlexOfferParams
from repro.flexoffer.model import FlexOffer, ProfileSlice, next_offer_id
from repro.timeseries.axis import ONE_MINUTE
from repro.timeseries.calendar import DayType, day_type
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class OnlineConfig:
    """Knobs for the online generator.

    ``onset_minutes`` is how much of a cycle's head the reactive detector
    matches against; ``onset_score`` its acceptance threshold;
    ``anticipate_min_rate`` the expected-starts/day floor below which no
    anticipatory offer is issued for a day type.
    """

    onset_minutes: int = 20
    onset_score: float = 0.5
    anticipate_min_rate: float = 0.5
    reactive_min_detections: int = 3
    params: FlexOfferParams = field(default_factory=FlexOfferParams)

    def __post_init__(self) -> None:
        if self.onset_minutes < 3:
            raise ExtractionError("onset_minutes must be >= 3")
        if not 0.0 < self.onset_score <= 1.0:
            raise ExtractionError("onset_score must be in (0, 1]")


@dataclass(frozen=True)
class _OnsetCandidate:
    """Stream-invariant matching data of one shortlisted appliance.

    ``observe`` runs once per simulated minute; the candidate's scaled
    signature head, its energy and its normalised density depend only on the
    training outcome, so they are computed once per generator instead of
    once per reading.
    """

    spec: ApplianceSpec
    energy: float
    head: np.ndarray          # expected kWh/minute of the cycle's first k minutes
    head_energy: float
    head_density: np.ndarray  # head normalised to unit mass


@dataclass
class _ReactiveState:
    """Mutable streaming state: ring buffer, cooldowns, claimed runs.

    ``active`` holds the runs already attributed (start time + expected
    per-minute template); their expected contribution is subtracted from the
    matcher's view of the stream, so one physical run cannot be claimed
    twice under different names (streaming matching pursuit).
    """

    buffer: list[float] = field(default_factory=list)
    last_emission: dict[str, datetime] = field(default_factory=dict)
    last_any_emission: datetime | None = None
    clock: datetime | None = None
    active: list[tuple[datetime, np.ndarray]] = field(default_factory=list)


class OnlineFlexOfferGenerator:
    """Trainable real-time flex-offer generator (§6 extension).

    Build with :meth:`train` on a historical 1-minute series, then use
    :meth:`anticipate` for day-ahead offers and :meth:`observe` for
    streaming detection.
    """

    def __init__(
        self,
        database: ApplianceDatabase,
        table: FrequencyTable,
        schedules: dict[str, MinedSchedule],
        mean_energy: dict[str, float],
        config: OnlineConfig | None = None,
    ) -> None:
        self.database = database
        self.table = table
        self.schedules = schedules
        self.mean_energy = mean_energy
        self.config = config or OnlineConfig()
        self._state = _ReactiveState()
        # Built eagerly: table/mean_energy/config are treated as immutable
        # after construction (retraining builds a new generator).
        self._onset_candidates = self._build_candidates()

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    @classmethod
    def train(
        cls,
        history: TimeSeries,
        database: ApplianceDatabase | None = None,
        config: OnlineConfig | None = None,
        matching: MatchingConfig | None = None,
    ) -> "OnlineFlexOfferGenerator":
        """Learn shortlist, schedules and typical energies from history."""
        if history.axis.resolution != ONE_MINUTE:
            raise ExtractionError("training requires a 1-minute history")
        database = database or default_database()
        appliance_series, _ = remove_baseline(history)
        detection = match_pursuit(appliance_series, database, matching)
        days = max(1, history.axis.length // history.axis.intervals_per_day)
        table = estimate_frequencies(detection.detections, database, days)
        day_counts = count_day_types(history.axis.start.date(), days)
        schedules = {
            entry.appliance: mine_schedule(
                detection.detections, entry.appliance, day_counts
            )
            for entry in table.flexible_entries()
        }
        mean_energy = {
            entry.appliance: entry.mean_energy_kwh for entry in table
        }
        return cls(database, table, schedules, mean_energy, config)

    # ------------------------------------------------------------------ #
    # Anticipatory mode (day-ahead, schedule-driven)
    # ------------------------------------------------------------------ #

    def anticipate(self, day: date, now: datetime | None = None) -> list[FlexOffer]:
        """Predict the day's flexible runs and emit offers ahead of time.

        For each shortlisted flexible appliance whose mined rate on this day
        type clears the floor, one offer per expected run is emitted, its
        start window being the habit window (or the whole day when no window
        was mined), and its energy band the appliance's catalogue range
        centred on the typical observed energy.
        """
        config = self.config
        midnight = datetime(day.year, day.month, day.day)
        creation = now if now is not None else midnight - timedelta(hours=12)
        dtype = day_type(day)
        offers: list[FlexOffer] = []
        for entry in self.table.flexible_entries():
            mined = self.schedules.get(entry.appliance)
            if mined is None:
                continue
            rate = mined.expected_starts(dtype)
            if rate < config.anticipate_min_rate:
                continue
            expected_runs = max(1, int(round(rate)))
            windows = mined.windows.get(dtype, [])
            spec = self.database.get(entry.appliance)
            for run in range(expected_runs):
                window = windows[run % len(windows)] if windows else None
                offers.append(
                    self._predicted_offer(spec, midnight, window, creation)
                )
        return offers

    def _predicted_offer(self, spec, midnight, window, creation) -> FlexOffer:
        grid = self.config.params.resolution
        energy = self.mean_energy.get(spec.name, spec.typical_energy_kwh)
        energy = float(np.clip(energy, spec.energy_min_kwh, spec.energy_max_kwh))
        # Bucket the typical cycle onto the metering grid.
        per_minute = spec.energy_profile_minutes(energy)
        n_slices = int(np.ceil(len(per_minute) / 15))
        padded = np.concatenate(
            [per_minute, np.zeros(n_slices * 15 - len(per_minute))]
        )
        slice_energies = padded.reshape(n_slices, 15).sum(axis=1)
        lo_f = spec.energy_min_kwh / energy
        hi_f = spec.energy_max_kwh / energy
        slices = tuple(
            ProfileSlice(float(e * lo_f), float(e * hi_f)) for e in slice_energies
        )
        if window is not None:
            earliest = midnight + timedelta(
                minutes=window.start.hour * 60 + window.start.minute
            )
            slack = window.duration() - spec.cycle_duration
            flexibility = max(timedelta(0), min(slack, spec.time_flexibility))
        else:
            earliest = midnight
            flexibility = spec.time_flexibility
        flexibility = _snap(flexibility, grid)
        return FlexOffer(
            earliest_start=earliest,
            latest_start=earliest + flexibility,
            slices=slices,
            resolution=grid,
            offer_id=next_offer_id("online-ahead"),
            appliance=spec.name,
            source="online-anticipatory",
            creation_time=creation,
            acceptance_deadline=earliest,
            assignment_deadline=earliest,
        )

    # ------------------------------------------------------------------ #
    # Reactive mode (streaming onset detection)
    # ------------------------------------------------------------------ #

    def reset_stream(self) -> None:
        """Forget all streaming state (buffer, cooldowns, clock)."""
        self._state = _ReactiveState()

    def observe(self, when: datetime, energy_kwh: float) -> list[FlexOffer]:
        """Feed one 1-minute reading; returns offers emitted at this minute.

        Readings must arrive in order on a 1-minute grid.  When the head of
        a flexible appliance's signature matches the tail of the buffer, an
        offer for the remainder of the cycle is emitted and the appliance
        enters a one-cycle cooldown.
        """
        state = self._state
        if state.clock is not None and when - state.clock != ONE_MINUTE:
            raise ExtractionError(
                f"readings must be consecutive minutes; got {state.clock} -> {when}"
            )
        state.clock = when
        state.buffer.append(float(energy_kwh))
        k = self.config.onset_minutes
        max_keep = max(2 * k, 60)
        if len(state.buffer) > max_keep:
            del state.buffer[: len(state.buffer) - max_keep]
        if len(state.buffer) < k:
            return []

        # Global refractory: one onset per claimed cycle.  While a claimed
        # run is still in progress the stream is considered explained;
        # greedy online attribution cannot reliably separate a second
        # concurrent start from the remainder of the first.
        if state.active:
            last_start, last_template = state.active[-1]
            if when < last_start + timedelta(minutes=len(last_template)):
                return []
        tail = np.asarray(state.buffer[-k:])
        onset_time = when - timedelta(minutes=k - 1)
        # Subtract the expected contribution of already-claimed runs so the
        # remainder of a claimed cycle cannot trigger a second attribution.
        state.active = [
            (start, template)
            for start, template in state.active
            if start + timedelta(minutes=len(template)) > onset_time
        ]
        for start, template in state.active:
            # The template overlaps the k-minute tail on a contiguous run of
            # minutes; subtract it with slice arithmetic instead of walking
            # every offset of the tail each reading.
            base = int((onset_time - start).total_seconds() // 60)
            first = max(0, -base)
            last = min(k, len(template) - base)
            if first < last:
                tail[first:last] -= template[base + first : base + last]
        # Remove the local floor so the onset matcher sees appliance energy.
        tail = np.clip(tail - max(0.0, float(tail.min())), 0.0, None)
        mass = float(tail.sum())
        if mass <= 0:
            return []
        tail_density = tail / mass
        # One onset, one attribution: evaluate every candidate appliance and
        # emit only the best-scoring one (emitting all super-threshold
        # matches would fire sibling appliances on every shared heat spike).
        best: tuple[float, ApplianceSpec, float] | None = None
        for candidate in self._onset_candidates:
            spec = candidate.spec
            last_time = state.last_emission.get(spec.name)
            if last_time is not None and when - last_time < spec.cycle_duration:
                continue
            coverage = float(np.minimum(tail, candidate.head).sum() / candidate.head_energy)
            similarity = 1.0 - 0.5 * float(
                np.abs(tail_density - candidate.head_density).sum()
            )
            score = coverage * max(0.0, similarity)
            if score < self.config.onset_score:
                continue
            # §6: "based on the usual appliance usage or the given (mined)
            # schedule" — weight the attribution by the habit prior: an
            # appliance that never starts at this time of day must present
            # much stronger signal evidence to claim the onset.
            score *= self._habit_prior(spec.name, onset_time)
            if best is None or score > best[0]:
                best = (score, spec, candidate.energy)
        if best is None:
            return []
        _, spec, energy = best
        state.last_emission[spec.name] = when
        state.last_any_emission = when
        state.active.append((onset_time, spec.energy_profile_minutes(energy)))
        return [self._reactive_offer(spec, onset_time, energy)]

    def _build_candidates(self) -> list[_OnsetCandidate]:
        """Stream-invariant onset candidates, built once at construction.

        Weakly-evidenced appliances (likely training-time false positives)
        may not claim live onsets and are excluded up front, as are
        degenerate signatures with an empty head.
        """
        k = self.config.onset_minutes
        candidates: list[_OnsetCandidate] = []
        for entry in self.table.flexible_entries():
            if entry.detections < self.config.reactive_min_detections:
                continue
            spec = self.database.get(entry.appliance)
            energy = self.mean_energy.get(spec.name, spec.typical_energy_kwh)
            energy = float(np.clip(energy, spec.energy_min_kwh, spec.energy_max_kwh))
            head = spec.shape[:k] * energy
            head_energy = float(head.sum())
            if head_energy <= 0:
                continue
            candidates.append(
                _OnsetCandidate(
                    spec=spec,
                    energy=energy,
                    head=head,
                    head_energy=head_energy,
                    head_density=head / head_energy,
                )
            )
        return candidates

    def _habit_prior(self, appliance: str, when: datetime) -> float:
        """Mined start-density prior in [0.25, 1.0] for attribution scoring.

        The mined per-minute density is compared to the appliance's own mean
        density; starting at a habitual time gives weight 1.0, starting at a
        never-observed time drops to the floor (0.25 — evidence can still
        override habit, just at a 4x handicap).
        """
        mined = self.schedules.get(appliance)
        if mined is None:
            return 1.0
        density = mined.density.get(day_type(when.date()))
        if density is None or density.sum() <= 0:
            return 1.0
        minute = when.hour * 60 + when.minute
        mean = float(density.mean())
        if mean <= 0:
            return 1.0
        ratio = float(density[minute]) / mean
        return float(np.clip(0.25 + 0.75 * ratio, 0.25, 1.0))

    def _reactive_offer(self, spec, onset_time: datetime, energy: float) -> FlexOffer:
        grid = self.config.params.resolution
        day_anchor = onset_time.replace(hour=0, minute=0, second=0, microsecond=0)
        earliest = day_anchor + grid * ((onset_time - day_anchor) // grid)
        per_minute = spec.energy_profile_minutes(energy)
        n_slices = int(np.ceil(len(per_minute) / 15))
        padded = np.concatenate(
            [per_minute, np.zeros(n_slices * 15 - len(per_minute))]
        )
        slice_energies = padded.reshape(n_slices, 15).sum(axis=1)
        lo_f = spec.energy_min_kwh / energy
        hi_f = spec.energy_max_kwh / energy
        slices = tuple(
            ProfileSlice(float(e * lo_f), float(e * hi_f)) for e in slice_energies
        )
        return FlexOffer(
            earliest_start=earliest,
            latest_start=earliest + _snap(spec.time_flexibility, grid),
            slices=slices,
            resolution=grid,
            offer_id=next_offer_id("online-react"),
            appliance=spec.name,
            source="online-reactive",
            creation_time=onset_time,
        )

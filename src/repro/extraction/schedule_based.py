"""The Schedule-based appliance-level extraction approach (paper §4.2).

Extends the frequency-based approach with mined habits: "the usage of the
appliances is not uniform, thus, the exact schedule of the usage of each
appliance can be derived" — e.g. "the dishwasher is more used during the
weekends since the family eats at home more often".

Step 1 derives the shortlist *and* per-appliance usage schedules (day-type ×
time-of-day windows); step 2 formulates flex-offers "based on the given
schedule": an offer's start-time flexibility is confined to the habit window
the run belongs to, rather than the generic manufacturer flexibility — the
household will not run the dishwasher at 4 AM just because the battery
manual allows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.disaggregation.baseline import remove_baseline
from repro.disaggregation.frequency import FrequencyTable, estimate_frequencies
from repro.disaggregation.matching import DetectionResult, MatchingConfig, match_pursuit
from repro.api.registry import register_extractor
from repro.disaggregation.schedule_mining import MinedSchedule, count_day_types, mine_schedule
from repro.errors import ExtractionError
from repro.extraction.base import ExtractionResult, FlexibilityExtractor
from repro.extraction.frequency_based import slice_energies_on_grid, _snap
from repro.extraction.params import FlexOfferParams
from repro.flexoffer.model import FlexOffer
from repro.simulation.activations import Activation
from repro.timeseries.axis import ONE_MINUTE, TimeAxis
from repro.timeseries.calendar import DailyWindow, day_type, minutes_since_midnight
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class ScheduleDetection:
    """Step-1 output: shortlist plus mined habit schedules.

    Splitting detection from offer formulation lets the fleet pipeline time
    (and fan out) the expensive disaggregation stage separately.
    """

    detection: DetectionResult
    table: FrequencyTable
    schedules: dict[str, MinedSchedule]


@register_extractor(
    "schedule-based",
    input="total",
    strict_grid=True,
    level="appliance",
    summary="Disaggregate and confine flexibility to mined habit windows (§4.2)",
)
@dataclass(frozen=True)
class ScheduleBasedExtractor(FlexibilityExtractor):
    """Appliance-level extraction with habit-confined time flexibility.

    Parameters mirror :class:`FrequencyBasedExtractor`, plus schedule-mining
    knobs (smoothing width and the window threshold factor).
    """

    database: ApplianceDatabase = field(default_factory=default_database)
    params: FlexOfferParams = field(default_factory=FlexOfferParams)
    matching: MatchingConfig = field(default_factory=MatchingConfig)
    min_detections: int = 2
    baseline_window_minutes: int = 150
    baseline_quantile: float = 0.15
    smoothing_minutes: int = 90
    threshold_factor: float = 1.5

    name: str = "schedule-based"

    def extract(self, series: TimeSeries, rng: np.random.Generator) -> ExtractionResult:
        """Extract habit-aware appliance-level offers from a 1-minute series."""
        return self.formulate(series, self.detect(series), rng)

    def detect(self, series: TimeSeries) -> ScheduleDetection:
        """Step 1: disaggregate and mine per-appliance habit schedules."""
        if series.axis.resolution != ONE_MINUTE:
            raise ExtractionError(
                "appliance-level extraction requires 1-minute data "
                "(the paper's §4 granularity requirement)"
            )
        appliance_series, _base = remove_baseline(
            series, self.baseline_window_minutes, self.baseline_quantile
        )
        detection = match_pursuit(appliance_series, self.database, self.matching)
        observation_days = max(1, series.axis.length // series.axis.intervals_per_day)
        table = estimate_frequencies(
            detection.detections, self.database, observation_days, self.min_detections
        )
        day_counts = count_day_types(series.axis.start.date(), observation_days)
        schedules: dict[str, MinedSchedule] = {
            entry.appliance: mine_schedule(
                detection.detections,
                entry.appliance,
                day_counts,
                smoothing_minutes=self.smoothing_minutes,
                threshold_factor=self.threshold_factor,
            )
            for entry in table.flexible_entries()
        }
        return ScheduleDetection(detection=detection, table=table, schedules=schedules)

    def formulate(
        self,
        series: TimeSeries,
        detected: ScheduleDetection,
        rng: np.random.Generator,
    ) -> ExtractionResult:
        """Step 2: habit-confined flex-offers from the detected activations."""
        modified = series.values.copy()
        offers: list[FlexOffer] = []
        for act in detected.detection.detections:
            if act.appliance not in detected.schedules:
                continue
            offer = self._formulate(
                series.axis, modified, act, detected.schedules[act.appliance], rng
            )
            if offer is not None:
                offers.append(offer)
        return ExtractionResult(
            offers=offers,
            modified=series.with_values(modified).with_name(f"{series.name}.modified"),
            original=series,
            extractor=self.name,
            extras={
                "shortlist": detected.table,
                "detection": detected.detection,
                "schedules": detected.schedules,
            },
        )

    def _formulate(
        self,
        axis: TimeAxis,
        modified: np.ndarray,
        act: Activation,
        mined: MinedSchedule,
        rng: np.random.Generator,
    ) -> FlexOffer | None:
        """One habit-confined offer for one detected run."""
        spec = self.database.get(act.appliance)
        start_minute = axis.index_of(act.start)
        template = spec.energy_profile_minutes(
            float(np.clip(act.energy_kwh, spec.energy_min_kwh, spec.energy_max_kwh))
        )
        n = min(len(template), axis.length - start_minute)
        window = modified[start_minute : start_minute + n]
        removal = np.minimum(template[:n], np.clip(window, 0.0, None))
        if float(removal.sum()) <= 1e-9:
            return None
        grid_index, energies = slice_energies_on_grid(removal, start_minute)
        energies = np.trim_zeros(energies, trim="b")
        if energies.size == 0:
            return None
        window -= removal

        earliest, flexibility = self._habit_bounds(act, mined, spec.time_flexibility)
        band = (
            spec.energy_min_kwh / float(removal.sum()),
            spec.energy_max_kwh / float(removal.sum()),
        )
        band = (min(band[0], 1.0), max(band[1], 1.0))
        return self.params.build_offer(
            earliest_start=earliest,
            slice_energies=energies,
            rng=rng,
            source=self.name,
            consumer_id=act.household_id,
            appliance=act.appliance,
            time_flexibility=_snap(flexibility, self.params.resolution),
            energy_band=band,
        )

    def _habit_bounds(
        self, act: Activation, mined: MinedSchedule, spec_flexibility: timedelta
    ) -> tuple[datetime, timedelta]:
        """Earliest start and flexibility confined to the run's habit window.

        Finds the mined window (for the run's day type) containing the run's
        start; the offer may start anywhere in that window such that the
        cycle still fits inside it, additionally capped by the manufacturer
        flexibility.  Runs outside every mined window keep the generic
        manufacturer flexibility anchored at the observed start (frequency-
        based fallback).
        """
        dtype = day_type(act.start.date())
        start_minute = minutes_since_midnight(act.start)
        window = _containing_window(mined.windows.get(dtype, []), start_minute)
        day_anchor = act.start.replace(hour=0, minute=0, second=0, microsecond=0)
        grid = self.params.resolution
        snapped_start = day_anchor + grid * (
            (act.start - day_anchor) // grid
        )
        if window is None:
            return snapped_start, spec_flexibility
        w_start = day_anchor + timedelta(
            minutes=window.start.hour * 60 + window.start.minute
        )
        width = window.duration()
        cycle = act.duration
        slack = width - cycle
        if slack <= timedelta(0):
            # Window narrower than the cycle: the habit pins the start.
            return snapped_start, timedelta(0)
        flexibility = _snap(min(slack, spec_flexibility), grid)
        # Anchor so the observed start is always inside [earliest, latest]:
        # earliest = max(window start, observed − flexibility) guarantees
        # earliest <= observed <= earliest + flexibility.
        earliest = max(w_start, snapped_start - flexibility)
        # Snap earliest onto the metering grid (floor).  Flooring can move
        # earliest up to one interval earlier than intended, so widen the
        # flexibility to keep the observed start inside the window.
        offset = earliest - day_anchor
        earliest = day_anchor + grid * (offset // grid)
        flexibility = max(flexibility, snapped_start - earliest)
        return earliest, flexibility


def _containing_window(windows: list[DailyWindow], minute: int) -> DailyWindow | None:
    """The first window containing the given minute-of-day, if any."""
    from datetime import time

    probe = time(minute // 60, minute % 60)
    for window in windows:
        if window.contains(probe):
            return window
    return None

"""Multi-tariff billing and the behavioural response to it.

Paper §3.3: "consumers change their electricity consumption behavior when the
multi-tariff (also called variable rate) billing system is introduced ...
they delay the flexible usage (e.g., washing machine) to the low tariff time
(e.g., after 10PM)".

The paper could not evaluate its multi-tariff extractor because it lacked
paired one-tariff/multi-tariff series from the same consumers.  This module
produces exactly that pair: the *same* household (same base load, same
activation energies) simulated once under a flat tariff and once under a
night tariff with a configurable behavioural response rate.  The set of
shifted activations is retained as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, time, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.errors import ValidationError
from repro.simulation.activations import Activation, materialise
from repro.simulation.household import HouseholdConfig, HouseholdTrace, simulate_household
from repro.timeseries.calendar import DailyWindow
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class TariffScheme:
    """An electricity tariff: flat, or time-of-use with low-price windows."""

    name: str
    low_windows: tuple[DailyWindow, ...] = ()
    high_price: float = 0.30
    low_price: float = 0.15

    def __post_init__(self) -> None:
        if self.high_price < self.low_price:
            raise ValidationError("high_price must be >= low_price")

    @property
    def is_flat(self) -> bool:
        """True when the scheme has a single price all day."""
        return not self.low_windows

    def is_low(self, when: datetime) -> bool:
        """True when ``when`` falls in a low-price window."""
        return any(w.contains(when) for w in self.low_windows)

    def price_at(self, when: datetime) -> float:
        """Unit price at ``when``."""
        return self.low_price if self.is_low(when) else self.high_price


def flat_tariff() -> TariffScheme:
    """The reference single-tariff scheme."""
    return TariffScheme(name="flat")


def night_tariff() -> TariffScheme:
    """The classic night tariff: cheap 22:00–06:00 (paper's 'after 10PM')."""
    return TariffScheme(
        name="night", low_windows=(DailyWindow(time(22, 0), time(6, 0)),)
    )


@dataclass(frozen=True, slots=True)
class ShiftRecord:
    """Ground truth for one behavioural shift: the run before and after."""

    original: Activation
    shifted: Activation

    @property
    def delay(self) -> timedelta:
        """How far the run moved (can wrap to the next morning)."""
        return self.shifted.start - self.original.start


def shift_into_low_window(
    activation: Activation, scheme: TariffScheme, rng: np.random.Generator
) -> Activation:
    """Move an activation's start into the next low-tariff period.

    The new start is uniform within the first low window that begins at or
    after the original start (wrapping to the next day when needed), matching
    the paper's intuition of "delaying" usage to cheap hours.
    """
    if scheme.is_flat:
        return activation
    # Scan forward minute-by-minute for the next low-price minute.
    probe = activation.start.replace(second=0, microsecond=0)
    for _ in range(2 * 24 * 60):
        if scheme.is_low(probe):
            break
        probe += timedelta(minutes=1)
    else:  # pragma: no cover - schemes always have a low window here
        return activation
    # Uniform offset within the remaining window.
    window_minutes = 0
    scan = probe
    while scheme.is_low(scan) and window_minutes < 24 * 60:
        window_minutes += 1
        scan += timedelta(minutes=1)
    offset = int(rng.integers(0, max(1, window_minutes)))
    return activation.shifted(probe + timedelta(minutes=offset) - activation.start)


@dataclass(frozen=True)
class TariffStudy:
    """Paired one-tariff / multi-tariff traces of the same household."""

    single: HouseholdTrace
    multi: HouseholdTrace
    scheme: TariffScheme
    shifts: list[ShiftRecord] = field(default_factory=list)

    @property
    def shifted_energy_kwh(self) -> float:
        """Total ground-truth energy moved into low-tariff windows."""
        return float(sum(rec.original.energy_kwh for rec in self.shifts))

    def cost(self, trace: HouseholdTrace) -> float:
        """Billing cost of a trace under this study's (multi-)tariff."""
        total = 0.0
        for when, energy in trace.metered():
            total += energy * self.scheme.price_at(when)
        return total


def simulate_tariff_pair(
    config: HouseholdConfig,
    start: datetime,
    days: int,
    rng: np.random.Generator,
    scheme: TariffScheme | None = None,
    response_rate: float = 0.7,
    database: ApplianceDatabase | None = None,
) -> TariffStudy:
    """Simulate the same household under flat and multi-tariff billing.

    The multi-tariff trace reuses the flat trace's base load and activation
    energies; each *flexible* activation that starts at a high-price time is
    delayed into the next low window with probability ``response_rate``.
    """
    if not 0.0 <= response_rate <= 1.0:
        raise ValidationError("response_rate must be in [0, 1]")
    scheme = scheme or night_tariff()
    database = database or default_database()
    single = simulate_household(config, start, days, rng, database)

    specs = {name: database.get(name) for name in config.appliances}
    shifted_activations: list[Activation] = []
    shifts: list[ShiftRecord] = []
    for act in single.activations:
        should_shift = (
            act.flexible
            and not scheme.is_low(act.start)
            and rng.random() < response_rate
        )
        if should_shift:
            moved = shift_into_low_window(act, scheme, rng)
            if moved.start >= single.axis.end:
                # The delayed run falls off the simulated horizon; the
                # consumer "skips" it (metering window effect).
                continue
            shifted_activations.append(moved)
            shifts.append(ShiftRecord(original=act, shifted=moved))
        else:
            shifted_activations.append(act)
    shifted_activations.sort(key=lambda a: a.start)

    per_appliance = {
        name: materialise(
            [a for a in shifted_activations if a.appliance == name], specs, single.axis
        ).with_name(f"{config.household_id}-{name}-tou")
        for name in specs
    }
    total_values = single.base_load.values.copy()
    for series in per_appliance.values():
        total_values += series.values
    multi = HouseholdTrace(
        config=config,
        axis=single.axis,
        total=TimeSeries(single.axis, total_values, name=f"{config.household_id}-total-tou"),
        base_load=single.base_load,
        per_appliance=per_appliance,
        activations=shifted_activations,
    )
    return TariffStudy(single=single, multi=multi, scheme=scheme, shifts=shifts)

"""Synthetic smart-meter data with ground truth (the paper's missing data).

The simulator is the repository's substitute for the MIRABEL trial data the
paper used (see DESIGN.md §2): bottom-up appliance activations over a
realistic base load, a behavioural multi-tariff response model, and wind
production for the scheduling experiments.
"""

from repro.simulation.activations import (
    Activation,
    draw_daily_activations,
    flexible_energy_series,
    materialise,
    total_energy,
)
from repro.simulation.dataset import (
    SimulatedDataset,
    generate_fleet,
    random_household_config,
)
from repro.simulation.industrial import (
    FactoryConfig,
    factory_base_load,
    industrial_catalogue,
    simulate_factory,
)
from repro.simulation.household import (
    HouseholdConfig,
    HouseholdTrace,
    base_load_series,
    simulate_household,
)
from repro.simulation.res import WindFarm, simulate_wind_production, surplus_series
from repro.simulation.tariff import (
    ShiftRecord,
    TariffScheme,
    TariffStudy,
    flat_tariff,
    night_tariff,
    shift_into_low_window,
    simulate_tariff_pair,
)
from repro.simulation.weather import TemperatureModel, WindModel

__all__ = [
    "Activation",
    "draw_daily_activations",
    "flexible_energy_series",
    "materialise",
    "total_energy",
    "SimulatedDataset",
    "generate_fleet",
    "random_household_config",
    "FactoryConfig",
    "factory_base_load",
    "industrial_catalogue",
    "simulate_factory",
    "HouseholdConfig",
    "HouseholdTrace",
    "base_load_series",
    "simulate_household",
    "WindFarm",
    "simulate_wind_production",
    "surplus_series",
    "ShiftRecord",
    "TariffScheme",
    "TariffStudy",
    "flat_tariff",
    "night_tariff",
    "shift_into_low_window",
    "simulate_tariff_pair",
    "TemperatureModel",
    "WindModel",
]

"""Synthetic smart-meter data with ground truth (the paper's missing data).

The simulator is the repository's substitute for the MIRABEL trial data the
paper used (see DESIGN.md §2): bottom-up appliance activations over a
realistic base load, a behavioural multi-tariff response model, and wind
production for the scheduling experiments.

Subsystem contract:

* **Determinism** — a fleet is a pure function of (households, start,
  days, seed): ``generate_fleet`` derives one independent child stream
  per household, so any subset simulates identically in any process.
* **Ground truth retained** — every trace keeps its activation log,
  per-appliance series and true-flexible split; evaluation and the
  conformance invariants score against these, never against heuristics.
* **Native 1-minute grid** — simulation runs at 1-minute resolution (§4's
  granularity requirement) and downsamples to the 15-minute metering
  grid; fleet-scale runs share one (households × minutes) matrix.
"""

from repro.simulation.activations import (
    Activation,
    draw_daily_activations,
    flexible_energy_series,
    materialise,
    total_energy,
)
from repro.simulation.dataset import (
    SimulatedDataset,
    generate_fleet,
    random_household_config,
)
from repro.simulation.industrial import (
    FactoryConfig,
    factory_base_load,
    industrial_catalogue,
    simulate_factory,
)
from repro.simulation.household import (
    HouseholdConfig,
    HouseholdTrace,
    base_load_series,
    simulate_household,
)
from repro.simulation.res import WindFarm, simulate_wind_production, surplus_series
from repro.simulation.tariff import (
    ShiftRecord,
    TariffScheme,
    TariffStudy,
    flat_tariff,
    night_tariff,
    shift_into_low_window,
    simulate_tariff_pair,
)
from repro.simulation.weather import TemperatureModel, WindModel

__all__ = [
    "Activation",
    "draw_daily_activations",
    "flexible_energy_series",
    "materialise",
    "total_energy",
    "SimulatedDataset",
    "generate_fleet",
    "random_household_config",
    "FactoryConfig",
    "factory_base_load",
    "industrial_catalogue",
    "simulate_factory",
    "HouseholdConfig",
    "HouseholdTrace",
    "base_load_series",
    "simulate_household",
    "WindFarm",
    "simulate_wind_production",
    "surplus_series",
    "ShiftRecord",
    "TariffScheme",
    "TariffStudy",
    "flat_tariff",
    "night_tariff",
    "shift_into_low_window",
    "simulate_tariff_pair",
    "TemperatureModel",
    "WindModel",
]

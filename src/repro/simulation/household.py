"""Bottom-up household consumption simulation.

A household is a base load (always-on electronics, fridge cycling, occupancy-
and season-modulated activity) plus discrete appliance activations drawn from
the appliance database.  The simulator runs natively at 1-minute resolution —
finer than the paper's 15-minute metering, as §4 requires ("granularity must
be even smaller than 15 min") — and is downsampled to the metering grid for
the household-level extractors.

Every simulated trace retains its ground truth: the activation log, the
per-appliance series and the true flexible-energy series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from functools import lru_cache

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.appliances.model import ApplianceSpec
from repro.errors import ValidationError
from repro.simulation.activations import (
    Activation,
    draw_daily_activations,
    materialise,
)
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.calendar import day_type
from repro.timeseries.resample import downsample_sum
from repro.timeseries.series import TimeSeries

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True, slots=True)
class HouseholdConfig:
    """Static description of one simulated household.

    Parameters
    ----------
    household_id:
        Unique identifier.
    appliances:
        Names of owned appliances (must exist in the database used).
    occupants:
        Number of residents; scales activity load and appliance use.
    standby_kw:
        Always-on floor load (routers, clocks, standby electronics).
    activity_peak_kw:
        Extra power at the busiest moment of the occupancy pattern.
    fridge_average_kw:
        Mean power of the cycling cold appliances.
    frequency_scale:
        Per-appliance multipliers on typical usage frequency (default 1.0).
    noise_std_kw:
        Standard deviation of multiplicative measurement/behaviour noise.
    """

    household_id: str
    appliances: tuple[str, ...] = (
        "washing-machine-y",
        "dishwasher-z",
        "oven",
        "television",
    )
    occupants: int = 2
    standby_kw: float = 0.06
    activity_peak_kw: float = 0.35
    fridge_average_kw: float = 0.045
    frequency_scale: dict[str, float] = field(default_factory=dict)
    noise_std_kw: float = 0.02

    def __post_init__(self) -> None:
        if not self.household_id:
            raise ValidationError("household_id must be non-empty")
        if self.occupants < 1:
            raise ValidationError("occupants must be >= 1")
        for value in (self.standby_kw, self.activity_peak_kw, self.fridge_average_kw):
            if value < 0:
                raise ValidationError("load parameters must be >= 0")
        if self.noise_std_kw < 0:
            raise ValidationError("noise_std_kw must be >= 0")


@dataclass(frozen=True)
class HouseholdTrace:
    """The result of simulating one household: series + ground truth."""

    config: HouseholdConfig
    axis: TimeAxis
    total: TimeSeries
    base_load: TimeSeries
    per_appliance: dict[str, TimeSeries]
    activations: list[Activation]

    def metered(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """The series a smart meter would record (kWh per interval)."""
        return downsample_sum(self.total, resolution).with_name(
            f"{self.config.household_id}-metered"
        )

    def flexible_minutely_values(self) -> np.ndarray:
        """Ground-truth flexible energy per minute (kWh) as a vector.

        The single source of the flexible/inflexible split — the metering-
        grid accessor below and the fleet matrices both derive from it.
        """
        values = np.zeros(self.axis.length)
        for name, series in self.per_appliance.items():
            if self._spec_flexible(name):
                values += series.values
        return values

    def true_flexible(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """Ground-truth flexible energy on the metering grid."""
        flexible_minutely = TimeSeries(self.axis, self.flexible_minutely_values())
        return downsample_sum(flexible_minutely, resolution).with_name(
            f"{self.config.household_id}-true-flexible"
        )

    def _spec_flexible(self, name: str) -> bool:
        return any(a.appliance == name and a.flexible for a in self.activations)

    @property
    def flexible_share(self) -> float:
        """Fraction of total energy that came from flexible activations."""
        total = self.total.total()
        if total == 0.0:
            return 0.0
        flexible = sum(a.energy_kwh for a in self.activations if a.flexible)
        return flexible / total

    def flexible_activations(self) -> list[Activation]:
        """Ground-truth shiftable runs."""
        return [a for a in self.activations if a.flexible]


@dataclass(frozen=True)
class _AxisProfile:
    """Household-independent base-load components of one 1-minute axis.

    Fleet generation simulates many households on the *same* axis; the
    occupancy humps, weekend/workday midday damping and seasonal lighting
    depend only on the axis, so they are computed once per axis and shared
    across every household (and every fleet re-run within the process).
    """

    minute_index: np.ndarray
    occupancy_units: np.ndarray   # 0.55·morning + 1.0·evening humps
    damping: np.ndarray           # clipped midday damping/boost factor
    lighting: np.ndarray          # winter-scaled evening lighting (kW)


@lru_cache(maxsize=8)
def _axis_profile(axis: TimeAxis) -> _AxisProfile:
    minute_index = np.arange(axis.length)
    offset = (axis.start.hour * 60 + axis.start.minute) % MINUTES_PER_DAY
    minute_of_day = (minute_index + offset) % MINUTES_PER_DAY

    # Occupancy humps: morning 06:00-09:00, evening 17:00-23:00.
    morning = _hump(minute_of_day, centre=7.5 * 60, width=70.0)
    evening = _hump(minute_of_day, centre=20.0 * 60, width=120.0)
    occupancy_units = 0.55 * morning + 1.0 * evening

    # Workday midday damping (house empty) and weekend boost, as a single
    # per-minute factor: weekend days add 0.25·midday, workdays remove
    # 0.55·midday.
    day_numbers = minute_index // MINUTES_PER_DAY
    midday = _hump(minute_of_day, centre=13.0 * 60, width=150.0)
    n_days = int(day_numbers[-1]) + 1 if axis.length else 0
    weekend = np.fromiter(
        (
            day_type((axis.start + timedelta(days=day_no)).date()).is_weekend
            for day_no in range(n_days)
        ),
        dtype=bool,
        count=n_days,
    )
    sign = np.where(weekend, 0.25, -0.55)
    damping = np.clip(1.0 + sign[day_numbers] * midday, 0.0, None)

    # Evening lighting, stronger in winter (proxy: month of the axis start).
    month = axis.start.month
    winter_factor = 1.0 + (0.5 if month in (11, 12, 1, 2) else 0.0)
    lighting = (0.05 * winter_factor) * _hump(minute_of_day, centre=20.5 * 60, width=150.0)

    return _AxisProfile(
        minute_index=minute_index,
        occupancy_units=occupancy_units,
        damping=damping,
        lighting=lighting,
    )


def base_load_series(
    config: HouseholdConfig, axis: TimeAxis, rng: np.random.Generator
) -> TimeSeries:
    """Continuous household floor load on a 1-minute axis (kWh per minute).

    Components: standby floor, fridge compressor cycling (45-minute period,
    1/3 duty), an occupancy activity curve with morning and evening humps
    (scaled by occupant count and damped on workday middays), and a winter
    lighting bump in the evening.
    """
    if axis.resolution != ONE_MINUTE:
        raise ValidationError("base load is generated on a 1-minute axis")
    profile = _axis_profile(axis)
    occupancy = profile.occupancy_units * (
        config.activity_peak_kw * (0.7 + 0.3 * config.occupants)
    )
    occupancy *= profile.damping

    # Fridge: square-wave compressor cycling, phase-jittered per household.
    period = 45
    duty = 1.0 / 3.0
    phase = int(rng.integers(0, period))
    compressor_on = ((profile.minute_index + phase) % period) < duty * period
    fridge = np.where(compressor_on, config.fridge_average_kw / duty, 0.0)

    power_kw = config.standby_kw + occupancy + fridge + profile.lighting
    noise = rng.normal(1.0, config.noise_std_kw / max(config.standby_kw, 1e-6), axis.length)
    power_kw = np.clip(power_kw * np.clip(noise, 0.5, 1.5), 0.0, None)
    return TimeSeries(axis, power_kw / 60.0, name=f"{config.household_id}-base")


def _hump(minute_of_day: np.ndarray, centre: float, width: float) -> np.ndarray:
    """A smooth daily bump: gaussian in minute-of-day with wraparound."""
    delta = np.abs(minute_of_day - centre)
    delta = np.minimum(delta, MINUTES_PER_DAY - delta)
    return np.exp(-0.5 * (delta / width) ** 2)


def simulate_household(
    config: HouseholdConfig,
    start: datetime,
    days: int,
    rng: np.random.Generator,
    database: ApplianceDatabase | None = None,
    total_out: np.ndarray | None = None,
) -> HouseholdTrace:
    """Simulate one household for ``days`` whole days from ``start``.

    Returns the full trace: 1-minute total, base load, per-appliance series
    and the ground-truth activation log.  ``total_out``, when given, is a
    preallocated vector (e.g. one row of a fleet matrix) that receives the
    total series in place and backs the returned trace's total.
    """
    if days < 1:
        raise ValidationError("days must be >= 1")
    database = database or default_database()
    axis = TimeAxis(start, ONE_MINUTE, days * MINUTES_PER_DAY)
    specs: dict[str, ApplianceSpec] = {
        name: database.get(name) for name in config.appliances
    }

    activations: list[Activation] = []
    for day_no in range(days):
        day_start = start + timedelta(days=day_no)
        for name, spec in specs.items():
            scale = config.frequency_scale.get(name, 1.0)
            activations.extend(
                draw_daily_activations(
                    spec, day_start, rng, household_id=config.household_id,
                    frequency_scale=scale,
                )
            )
    activations.sort(key=lambda a: a.start)

    per_appliance = {
        name: materialise(
            [a for a in activations if a.appliance == name], specs, axis
        ).with_name(f"{config.household_id}-{name}")
        for name in specs
    }
    base = base_load_series(config, axis, rng)
    if total_out is None:
        total_values = base.values.copy()
    else:
        if total_out.shape != (axis.length,):
            raise ValidationError(
                f"total_out has shape {total_out.shape}, expected ({axis.length},)"
            )
        total_values = total_out
        total_values[:] = base.values
    for series in per_appliance.values():
        total_values += series.values
    total = TimeSeries(axis, total_values, name=f"{config.household_id}-total")
    return HouseholdTrace(
        config=config,
        axis=axis,
        total=total,
        base_load=base,
        per_appliance=per_appliance,
        activations=activations,
    )

"""Synthetic weather: temperature and wind speed series.

The household simulator uses temperature for seasonal load modulation
(lighting/heating), and the RES substrate turns wind speed into wind-power
production (the "surplus RES production" the MIRABEL scheduler matches
flex-offers against).  Both are simple, well-understood stochastic models:
seasonal + diurnal sinusoids with an AR(1) disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class TemperatureModel:
    """Seasonal + diurnal temperature (°C) with AR(1) noise.

    Defaults approximate a Danish climate: 8 °C annual mean, ±8 °C seasonal
    swing (coldest in late January), ±3 °C diurnal swing (coldest pre-dawn).
    """

    annual_mean_c: float = 8.0
    seasonal_amplitude_c: float = 8.0
    diurnal_amplitude_c: float = 3.0
    noise_std_c: float = 1.5
    noise_persistence: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise_persistence < 1.0:
            raise ValidationError("noise_persistence must be in [0, 1)")
        if self.noise_std_c < 0:
            raise ValidationError("noise_std_c must be >= 0")

    def generate(self, axis: TimeAxis, rng: np.random.Generator) -> TimeSeries:
        """Generate a temperature series on ``axis``."""
        hours = _hours_since_epoch(axis)
        day_of_year = (hours / 24.0) % 365.25
        hour_of_day = hours % 24.0
        seasonal = -self.seasonal_amplitude_c * np.cos(
            2.0 * np.pi * (day_of_year - 25.0) / 365.25
        )
        diurnal = -self.diurnal_amplitude_c * np.cos(
            2.0 * np.pi * (hour_of_day - 4.0) / 24.0
        )
        noise = _ar1(axis.length, self.noise_persistence, self.noise_std_c, rng)
        return TimeSeries(
            axis, self.annual_mean_c + seasonal + diurnal + noise, name="temperature-c"
        )


@dataclass(frozen=True, slots=True)
class WindModel:
    """Wind speed (m/s): seasonal mean + strongly autocorrelated AR(1) gusts.

    The AR(1) component gives wind its characteristic multi-hour persistence
    — exactly what makes "the wind blows tonight, shift the washing there"
    scheduling meaningful.
    """

    mean_speed_ms: float = 7.5
    seasonal_amplitude_ms: float = 1.5
    noise_std_ms: float = 2.2
    noise_persistence: float = 0.985

    def __post_init__(self) -> None:
        if self.mean_speed_ms <= 0:
            raise ValidationError("mean_speed_ms must be positive")
        if not 0.0 <= self.noise_persistence < 1.0:
            raise ValidationError("noise_persistence must be in [0, 1)")

    def generate(self, axis: TimeAxis, rng: np.random.Generator) -> TimeSeries:
        """Generate a non-negative wind-speed series on ``axis``."""
        hours = _hours_since_epoch(axis)
        day_of_year = (hours / 24.0) % 365.25
        seasonal = self.seasonal_amplitude_ms * np.cos(
            2.0 * np.pi * (day_of_year - 15.0) / 365.25
        )
        noise = _ar1(axis.length, self.noise_persistence, self.noise_std_ms, rng)
        speed = np.clip(self.mean_speed_ms + seasonal + noise, 0.0, None)
        return TimeSeries(axis, speed, name="wind-speed-ms")


def _hours_since_epoch(axis: TimeAxis) -> np.ndarray:
    """Fractional hours of each interval start since the axis-year start."""
    year_start = axis.start.replace(month=1, day=1, hour=0, minute=0, second=0, microsecond=0)
    offset_h = (axis.start - year_start).total_seconds() / 3600.0
    step_h = axis.resolution.total_seconds() / 3600.0
    return offset_h + step_h * np.arange(axis.length)


def _ar1(n: int, persistence: float, std: float, rng: np.random.Generator) -> np.ndarray:
    """A stationary AR(1) path with marginal standard deviation ``std``."""
    if n == 0:
        return np.zeros(0)
    innovation_std = std * np.sqrt(1.0 - persistence**2)
    shocks = rng.normal(0.0, innovation_std, size=n)
    out = np.empty(n)
    out[0] = rng.normal(0.0, std)
    for i in range(1, n):
        out[i] = persistence * out[i - 1] + shocks[i]
    return out

"""Renewable production: wind farms and surplus computation.

Paper §6: MIRABEL matches scheduled flex-offers against "the surplus RES
production".  This module converts synthetic wind speed into wind-farm power
via the standard piecewise power curve, and computes the surplus available
for flexible demand after the inflexible base demand is served.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.simulation.weather import WindModel
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class WindFarm:
    """A wind farm with the classic cut-in / rated / cut-out power curve.

    Between cut-in and rated speed, power grows with the cube of wind speed
    (the physical regime); above rated it is flat; outside it is zero.
    """

    rated_power_kw: float = 2000.0
    cut_in_ms: float = 3.0
    rated_ms: float = 12.0
    cut_out_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.rated_power_kw <= 0:
            raise ValidationError("rated_power_kw must be positive")
        if not 0 <= self.cut_in_ms < self.rated_ms < self.cut_out_ms:
            raise ValidationError(
                "need 0 <= cut_in < rated < cut_out, got "
                f"{self.cut_in_ms}/{self.rated_ms}/{self.cut_out_ms}"
            )

    def power_kw(self, wind_speed_ms: np.ndarray) -> np.ndarray:
        """Power output (kW) for an array of wind speeds (m/s)."""
        v = np.asarray(wind_speed_ms, dtype=np.float64)
        cubic = (v**3 - self.cut_in_ms**3) / (self.rated_ms**3 - self.cut_in_ms**3)
        power = self.rated_power_kw * np.clip(cubic, 0.0, 1.0)
        power[(v < self.cut_in_ms) | (v >= self.cut_out_ms)] = 0.0
        return power

    def production_energy(self, wind_speed: TimeSeries) -> TimeSeries:
        """Energy production (kWh per interval) from a wind-speed series."""
        power = self.power_kw(wind_speed.values)
        energy = power * wind_speed.axis.hours_per_interval
        return TimeSeries(wind_speed.axis, energy, name="wind-production-kwh")


def simulate_wind_production(
    axis: TimeAxis,
    rng: np.random.Generator,
    farm: WindFarm | None = None,
    wind_model: WindModel | None = None,
) -> TimeSeries:
    """One-call wind production: model -> speed -> power -> energy."""
    farm = farm or WindFarm()
    wind_model = wind_model or WindModel()
    speed = wind_model.generate(axis, rng)
    return farm.production_energy(speed)


def surplus_series(production: TimeSeries, inflexible_demand: TimeSeries) -> TimeSeries:
    """RES energy left over after serving inflexible demand (>= 0).

    This is the target the MIRABEL scheduler positions flexible demand
    under: consuming at surplus times costs (notionally) nothing, consuming
    elsewhere draws on conventional generation.
    """
    production.axis.require_aligned(inflexible_demand.axis)
    surplus = np.clip(production.values - inflexible_demand.values, 0.0, None)
    return TimeSeries(production.axis, surplus, name="res-surplus-kwh")

"""Appliance activations: the ground-truth events behind a consumption series.

The simulator is *bottom-up* (paper §4 context assumption: "the consumption
time series is composed of the consumption of many appliances"): it first
draws discrete activation events per appliance per day, then materialises
their fine-grained energy profiles onto the metering grid.  Keeping the event
log around gives every experiment a ground truth that real smart-meter data
lacks — which is precisely the evaluation gap the paper laments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime, timedelta

import numpy as np

from repro.appliances.model import ApplianceSpec
from repro.errors import DataError
from repro.timeseries.axis import ONE_MINUTE, TimeAxis
from repro.timeseries.calendar import day_type
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class Activation:
    """One appliance run: who, when, how much.

    ``start`` is minute-aligned; ``energy_kwh`` is the cycle total; the
    duration comes from the appliance's profile shape.
    """

    appliance: str
    start: datetime
    energy_kwh: float
    duration: timedelta
    flexible: bool
    household_id: str = ""

    @property
    def end(self) -> datetime:
        """Timestamp at which the cycle finishes."""
        return self.start + self.duration

    def shifted(self, delta: timedelta) -> "Activation":
        """The same run moved in time (used by the tariff-response model)."""
        return replace(self, start=self.start + delta)


def draw_daily_activations(
    spec: ApplianceSpec,
    day_start: datetime,
    rng: np.random.Generator,
    household_id: str = "",
    frequency_scale: float = 1.0,
) -> list[Activation]:
    """Draw the activations of one appliance for one day.

    The count comes from the appliance's :class:`UsageFrequency` (Poisson,
    day-type aware, scaled by ``frequency_scale`` to model households that
    use an appliance more or less than typical); start minutes come from its
    :class:`UsageSchedule`; energies are uniform in the Table 1 range.
    """
    dtype = day_type(day_start.date())
    expected = spec.frequency.expected_uses(dtype) * frequency_scale
    count = int(rng.poisson(expected)) if expected > 0 else 0
    activations = []
    for _ in range(count):
        start_minute = spec.schedule.sample_start_minute(rng)
        activations.append(
            Activation(
                appliance=spec.name,
                start=day_start + timedelta(minutes=int(start_minute)),
                energy_kwh=spec.sample_energy(rng),
                duration=spec.cycle_duration,
                flexible=spec.flexible,
                household_id=household_id,
            )
        )
    return activations


def materialise(
    activations: list[Activation],
    specs: dict[str, ApplianceSpec],
    axis: TimeAxis,
) -> TimeSeries:
    """Render an activation log onto a 1-minute axis as energy per minute.

    Activations that extend past the axis end are truncated (their remaining
    energy falls outside the metering window, as with a real meter read).
    Activations starting before the axis raise :class:`DataError`.
    """
    if axis.resolution != ONE_MINUTE:
        raise DataError("materialise requires a 1-minute axis")
    values = np.zeros(axis.length)
    for act in activations:
        spec = specs.get(act.appliance)
        if spec is None:
            raise DataError(f"activation references unknown appliance {act.appliance!r}")
        if act.start < axis.start:
            raise DataError(f"activation at {act.start} precedes axis start {axis.start}")
        if act.start >= axis.end:
            continue
        first = axis.index_of(act.start)
        profile = spec.energy_profile_minutes(act.energy_kwh)
        n = min(len(profile), axis.length - first)
        values[first : first + n] += profile[:n]
    return TimeSeries(axis, values, name="appliance-energy-kwh")


def flexible_energy_series(
    activations: list[Activation],
    specs: dict[str, ApplianceSpec],
    axis: TimeAxis,
) -> TimeSeries:
    """Ground-truth series of energy from *flexible* appliance runs only."""
    flexible = [a for a in activations if a.flexible]
    return materialise(flexible, specs, axis).with_name("true-flexible-kwh")


def total_energy(activations: list[Activation]) -> float:
    """Sum of activation energies (kWh)."""
    return float(sum(a.energy_kwh for a in activations))

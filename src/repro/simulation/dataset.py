"""Fleet-scale dataset generation: many households with ground truth.

MIRABEL's evaluation concerns "flex-offers aggregated from thousands of
consumers" (paper §6).  This module stamps out heterogeneous household
configurations (varying occupancy, appliance ownership, usage intensity) and
simulates them into a :class:`SimulatedDataset` that every experiment in
:mod:`repro.evaluation` and the benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.errors import ResolutionError, ValidationError
from repro.simulation.household import (
    MINUTES_PER_DAY,
    HouseholdConfig,
    HouseholdTrace,
    simulate_household,
)
from repro.timeseries.axis import FIFTEEN_MINUTES, ONE_MINUTE, TimeAxis
from repro.timeseries.resample import _ratio as _resample_ratio
from repro.timeseries.series import TimeSeries

#: Ownership probabilities used when drawing random household configurations.
_OWNERSHIP = {
    "washing-machine-y": 0.95,
    "dishwasher-z": 0.75,
    "tumble-dryer": 0.45,
    "vacuum-robot-x": 0.25,
    "water-heater": 0.35,
    "oven": 0.97,
    "television": 0.98,
    "ev-small": 0.12,
    "ev-medium": 0.05,
    "ev-large": 0.02,
}


def random_household_config(
    household_id: str, rng: np.random.Generator
) -> HouseholdConfig:
    """Draw a heterogeneous household configuration.

    Ownership follows :data:`_OWNERSHIP`; every household keeps at least one
    flexible wet appliance so that the extraction experiments always have
    something to find (the paper's trial households are flexibility
    candidates by construction).
    """
    owned = [name for name, p in _OWNERSHIP.items() if rng.random() < p]
    if "washing-machine-y" not in owned and "dishwasher-z" not in owned:
        owned.append("washing-machine-y")
    occupants = int(rng.integers(1, 5))
    scale = {
        name: float(np.clip(rng.normal(1.0, 0.25), 0.4, 1.8)) for name in owned
    }
    return HouseholdConfig(
        household_id=household_id,
        appliances=tuple(owned),
        occupants=occupants,
        standby_kw=float(rng.uniform(0.04, 0.09)),
        activity_peak_kw=float(rng.uniform(0.25, 0.5)),
        fridge_average_kw=float(rng.uniform(0.035, 0.06)),
        frequency_scale=scale,
    )


@dataclass(frozen=True)
class SimulatedDataset:
    """A simulated fleet: traces plus fleet-level convenience accessors."""

    traces: list[HouseholdTrace]
    start: datetime
    days: int

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValidationError("dataset must contain at least one trace")

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def metering_axis(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeAxis:
        """The shared metering grid of the fleet."""
        return self.traces[0].metered(resolution).axis

    def total_matrix(self) -> np.ndarray:
        """The whole fleet's 1-minute consumption as one (H × T) array.

        Row ``i`` is household ``i``'s total series; the matrix is built
        once and cached, so fleet-level consumers (batched pipelines, the
        aggregate accessors below) share a single contiguous buffer instead
        of bouncing through per-household objects.
        """
        cached = getattr(self, "_total_matrix", None)
        if cached is None:
            # np.stack only checks lengths; enforce the full axis alignment
            # the per-series summation used to guarantee.
            base_axis = self.traces[0].axis
            for trace in self.traces[1:]:
                base_axis.require_aligned(trace.axis)
            cached = np.stack([t.total.values for t in self.traces])
            object.__setattr__(self, "_total_matrix", cached)
        return cached

    def metered_matrix(self, resolution: timedelta = FIFTEEN_MINUTES) -> np.ndarray:
        """Per-household metered readings as one (H × intervals) array.

        The whole fleet is downsampled in a single reshape-sum pass rather
        than one :func:`downsample_sum` call per household.
        """
        ratio = _metering_ratio(self.traces[0].axis, resolution)
        matrix = self.total_matrix()
        coarse = matrix.shape[1] // ratio
        return matrix.reshape(len(self.traces), coarse, ratio).sum(axis=2)

    def true_flexible_matrix(self, resolution: timedelta = FIFTEEN_MINUTES) -> np.ndarray:
        """Per-household ground-truth flexible energy as one (H × intervals) array."""
        ratio = _metering_ratio(self.traces[0].axis, resolution)
        matrix = np.stack([t.flexible_minutely_values() for t in self.traces])
        coarse = matrix.shape[1] // ratio
        return matrix.reshape(len(self.traces), coarse, ratio).sum(axis=2)

    def _coarse_axis(self, resolution: timedelta, length: int) -> TimeAxis:
        """The metering grid derived in O(1) from an already-built matrix."""
        return TimeAxis(self.traces[0].axis.start, resolution, length)

    def aggregate_metered(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """Fleet-total consumption on the metering grid."""
        matrix = self.metered_matrix(resolution)
        axis = self._coarse_axis(resolution, matrix.shape[1])
        return TimeSeries(axis, matrix.sum(axis=0), "fleet-consumption")

    def aggregate_true_flexible(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """Fleet-total ground-truth flexible energy on the metering grid."""
        matrix = self.true_flexible_matrix(resolution)
        axis = self._coarse_axis(resolution, matrix.shape[1])
        return TimeSeries(axis, matrix.sum(axis=0), "fleet-true-flexible")

    @property
    def flexible_share(self) -> float:
        """Fleet-level fraction of energy from flexible activations."""
        total = sum(t.total.total() for t in self.traces)
        if total == 0.0:
            return 0.0
        flexible = sum(
            a.energy_kwh for t in self.traces for a in t.activations if a.flexible
        )
        return flexible / total


def _metering_ratio(axis: TimeAxis, resolution: timedelta) -> int:
    """Fine intervals per metering interval, validated like downsampling.

    Delegates to the resampling module's ratio check so fleet matrices and
    :func:`downsample_sum` reject the same inputs with the same errors.
    """
    if axis.resolution != ONE_MINUTE:
        raise ValidationError("fleet matrices require 1-minute traces")
    ratio = _resample_ratio(resolution, ONE_MINUTE)
    if axis.length % ratio != 0:
        raise ResolutionError(f"length {axis.length} not divisible by ratio {ratio}")
    return ratio


def generate_fleet(
    n_households: int,
    start: datetime,
    days: int,
    seed: int = 0,
    database: ApplianceDatabase | None = None,
) -> SimulatedDataset:
    """Simulate ``n_households`` heterogeneous households.

    Each household gets an independent, deterministic child generator, so the
    dataset is reproducible and households are independent of fleet size
    ordering.  The per-household totals are written into one
    (households × minutes) array whose rows back each trace's total series,
    so fleet-level consumers operate on a single contiguous matrix.
    """
    if n_households < 1:
        raise ValidationError("n_households must be >= 1")
    database = database or default_database()
    root = np.random.default_rng(seed)
    child_seeds = root.integers(0, 2**63 - 1, size=n_households)
    totals = np.empty((n_households, days * MINUTES_PER_DAY))
    traces = []
    for i in range(n_households):
        rng = np.random.default_rng(int(child_seeds[i]))
        config = random_household_config(f"hh-{i:04d}", rng)
        trace = simulate_household(
            config, start, days, rng, database, total_out=totals[i]
        )
        traces.append(trace)
    # The trace totals are views into ``totals``; freeze the matrix AND the
    # per-trace row views (a view created before its base is frozen stays
    # writable) so any accidental in-place mutation of a household total —
    # which would corrupt every fleet-level aggregate — fails loudly.
    totals.flags.writeable = False
    for trace in traces:
        trace.total.values.flags.writeable = False
    dataset = SimulatedDataset(traces=traces, start=start, days=days)
    object.__setattr__(dataset, "_total_matrix", totals)
    return dataset

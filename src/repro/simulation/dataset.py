"""Fleet-scale dataset generation: many households with ground truth.

MIRABEL's evaluation concerns "flex-offers aggregated from thousands of
consumers" (paper §6).  This module stamps out heterogeneous household
configurations (varying occupancy, appliance ownership, usage intensity) and
simulates them into a :class:`SimulatedDataset` that every experiment in
:mod:`repro.evaluation` and the benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.errors import ValidationError
from repro.simulation.household import HouseholdConfig, HouseholdTrace, simulate_household
from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis
from repro.timeseries.series import TimeSeries

#: Ownership probabilities used when drawing random household configurations.
_OWNERSHIP = {
    "washing-machine-y": 0.95,
    "dishwasher-z": 0.75,
    "tumble-dryer": 0.45,
    "vacuum-robot-x": 0.25,
    "water-heater": 0.35,
    "oven": 0.97,
    "television": 0.98,
    "ev-small": 0.12,
    "ev-medium": 0.05,
    "ev-large": 0.02,
}


def random_household_config(
    household_id: str, rng: np.random.Generator
) -> HouseholdConfig:
    """Draw a heterogeneous household configuration.

    Ownership follows :data:`_OWNERSHIP`; every household keeps at least one
    flexible wet appliance so that the extraction experiments always have
    something to find (the paper's trial households are flexibility
    candidates by construction).
    """
    owned = [name for name, p in _OWNERSHIP.items() if rng.random() < p]
    if "washing-machine-y" not in owned and "dishwasher-z" not in owned:
        owned.append("washing-machine-y")
    occupants = int(rng.integers(1, 5))
    scale = {
        name: float(np.clip(rng.normal(1.0, 0.25), 0.4, 1.8)) for name in owned
    }
    return HouseholdConfig(
        household_id=household_id,
        appliances=tuple(owned),
        occupants=occupants,
        standby_kw=float(rng.uniform(0.04, 0.09)),
        activity_peak_kw=float(rng.uniform(0.25, 0.5)),
        fridge_average_kw=float(rng.uniform(0.035, 0.06)),
        frequency_scale=scale,
    )


@dataclass(frozen=True)
class SimulatedDataset:
    """A simulated fleet: traces plus fleet-level convenience accessors."""

    traces: list[HouseholdTrace]
    start: datetime
    days: int

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValidationError("dataset must contain at least one trace")

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def metering_axis(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeAxis:
        """The shared metering grid of the fleet."""
        return self.traces[0].metered(resolution).axis

    def aggregate_metered(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """Fleet-total consumption on the metering grid."""
        series = [t.metered(resolution) for t in self.traces]
        total = series[0].copy()
        for s in series[1:]:
            total = total + s
        return total.with_name("fleet-consumption")

    def aggregate_true_flexible(self, resolution: timedelta = FIFTEEN_MINUTES) -> TimeSeries:
        """Fleet-total ground-truth flexible energy on the metering grid."""
        series = [t.true_flexible(resolution) for t in self.traces]
        total = series[0].copy()
        for s in series[1:]:
            total = total + s
        return total.with_name("fleet-true-flexible")

    @property
    def flexible_share(self) -> float:
        """Fleet-level fraction of energy from flexible activations."""
        total = sum(t.total.total() for t in self.traces)
        if total == 0.0:
            return 0.0
        flexible = sum(
            a.energy_kwh for t in self.traces for a in t.activations if a.flexible
        )
        return flexible / total


def generate_fleet(
    n_households: int,
    start: datetime,
    days: int,
    seed: int = 0,
    database: ApplianceDatabase | None = None,
) -> SimulatedDataset:
    """Simulate ``n_households`` heterogeneous households.

    Each household gets an independent, deterministic child generator, so the
    dataset is reproducible and households are independent of fleet size
    ordering.
    """
    if n_households < 1:
        raise ValidationError("n_households must be >= 1")
    database = database or default_database()
    root = np.random.default_rng(seed)
    child_seeds = root.integers(0, 2**63 - 1, size=n_households)
    traces = []
    for i in range(n_households):
        rng = np.random.default_rng(int(child_seeds[i]))
        config = random_household_config(f"hh-{i:04d}", rng)
        traces.append(simulate_household(config, start, days, rng, database))
    return SimulatedDataset(traces=traces, start=start, days=days)

"""Industrial consumers (paper §6: "flexibility extraction from industrial
consumers" — future work, implemented).

A factory is modelled with the same machinery as a household — a continuous
base load plus discrete process activations — but at industrial scale: a
shift-shaped floor load (tens of kW) and batch processes (furnaces, pre-
cooling, pumping) of tens-to-hundreds of kWh per run, some of which are
genuinely shiftable within operating constraints.  Because the trace shape
is identical (:class:`~repro.simulation.household.HouseholdTrace`), every
extractor in :mod:`repro.extraction` runs on factories unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, time, timedelta

import numpy as np

from repro.appliances.database import ApplianceDatabase
from repro.appliances.model import ApplianceCategory, ApplianceSpec, flat_shape, phased_shape
from repro.appliances.usage import UsageFrequency, UsageSchedule
from repro.errors import ValidationError
from repro.simulation.activations import Activation, draw_daily_activations, materialise
from repro.simulation.household import HouseholdTrace, HouseholdConfig
from repro.timeseries.axis import ONE_MINUTE, TimeAxis
from repro.timeseries.calendar import DailyWindow, DayType, day_type
from repro.timeseries.series import TimeSeries

MINUTES_PER_DAY = 24 * 60

_WEEKDAY_ONLY = {DayType.WORKDAY: 1.4, DayType.SATURDAY: 0.0, DayType.SUNDAY: 0.0}


def industrial_catalogue() -> ApplianceDatabase:
    """Batch processes of a mid-size plant (the industrial 'Table 1')."""
    specs = (
        ApplianceSpec(
            name="batch-furnace",
            manufacturer="HeatWorks",
            category=ApplianceCategory.HEATING,
            energy_min_kwh=150.0,
            energy_max_kwh=300.0,
            # Ramp-up, soak, controlled cool-down.
            shape=phased_shape([(30, 3.0), (120, 1.5), (30, 0.5)]),
            flexible=True,
            time_flexibility=timedelta(hours=6),
            frequency=UsageFrequency(5.0, day_type_weights=_WEEKDAY_ONLY),
            schedule=UsageSchedule(
                windows=((DailyWindow(time(6, 0), time(14, 0)), 1.0),)
            ),
        ),
        ApplianceSpec(
            name="cold-storage-precool",
            manufacturer="FrostCo",
            category=ApplianceCategory.COLD,
            energy_min_kwh=80.0,
            energy_max_kwh=120.0,
            shape=flat_shape(120),
            flexible=True,
            # Thermal inertia: pre-cooling can move nearly anywhere in a day.
            time_flexibility=timedelta(hours=16),
            frequency=UsageFrequency(7.0),
            schedule=UsageSchedule(
                windows=((DailyWindow(time(0, 0), time(6, 0)), 1.0),)
            ),
        ),
        ApplianceSpec(
            name="effluent-pumping",
            manufacturer="FlowSys",
            category=ApplianceCategory.OTHER,
            energy_min_kwh=40.0,
            energy_max_kwh=60.0,
            shape=flat_shape(90),
            flexible=True,
            time_flexibility=timedelta(hours=10),
            frequency=UsageFrequency(7.0),
            schedule=UsageSchedule(),
        ),
        ApplianceSpec(
            name="packaging-line",
            manufacturer="PackCorp",
            category=ApplianceCategory.OTHER,  # inline process, not shiftable
            energy_min_kwh=90.0,
            energy_max_kwh=110.0,
            shape=flat_shape(240),
            flexible=False,
            frequency=UsageFrequency(5.0, day_type_weights=_WEEKDAY_ONLY),
            schedule=UsageSchedule(
                windows=((DailyWindow(time(8, 0), time(12, 0)), 1.0),)
            ),
        ),
    )
    return ApplianceDatabase(specs=specs)


@dataclass(frozen=True, slots=True)
class FactoryConfig:
    """Static description of a simulated plant."""

    factory_id: str
    processes: tuple[str, ...] = (
        "batch-furnace",
        "cold-storage-precool",
        "effluent-pumping",
        "packaging-line",
    )
    floor_load_kw: float = 40.0
    shift_load_kw: float = 60.0
    shift_start: time = time(6, 0)
    shift_end: time = time(22, 0)
    noise_std_kw: float = 2.0

    def __post_init__(self) -> None:
        if not self.factory_id:
            raise ValidationError("factory_id must be non-empty")
        if self.floor_load_kw < 0 or self.shift_load_kw < 0:
            raise ValidationError("loads must be >= 0")
        if self.noise_std_kw < 0:
            raise ValidationError("noise_std_kw must be >= 0")


def factory_base_load(
    config: FactoryConfig, axis: TimeAxis, rng: np.random.Generator
) -> TimeSeries:
    """Shift-shaped plant floor load (kWh per minute).

    Weekday shifts carry the full shift load; weekends only the floor
    (continuous services: cold storage, compressors, IT).
    """
    if axis.resolution != ONE_MINUTE:
        raise ValidationError("factory base load is generated on a 1-minute axis")
    minute_index = np.arange(axis.length)
    offset = (axis.start.hour * 60 + axis.start.minute) % MINUTES_PER_DAY
    minute_of_day = (minute_index + offset) % MINUTES_PER_DAY
    window = DailyWindow(config.shift_start, config.shift_end)
    in_shift = np.array(
        [window.contains(time(m // 60, m % 60)) for m in range(MINUTES_PER_DAY)]
    )[minute_of_day]

    day_numbers = minute_index // MINUTES_PER_DAY
    weekday = np.ones(axis.length, dtype=bool)
    for day_no in np.unique(day_numbers):
        date = (axis.start + timedelta(days=int(day_no))).date()
        weekday[day_numbers == day_no] = not day_type(date).is_weekend

    power_kw = np.full(axis.length, config.floor_load_kw)
    power_kw += np.where(in_shift & weekday, config.shift_load_kw, 0.0)
    power_kw += rng.normal(0.0, config.noise_std_kw, axis.length)
    power_kw = np.clip(power_kw, 0.0, None)
    return TimeSeries(axis, power_kw / 60.0, name=f"{config.factory_id}-base")


def simulate_factory(
    config: FactoryConfig,
    start: datetime,
    days: int,
    rng: np.random.Generator,
    catalogue: ApplianceDatabase | None = None,
) -> HouseholdTrace:
    """Simulate one plant; returns the standard trace type.

    The trace's ``config`` field carries an equivalent
    :class:`HouseholdConfig` so downstream consumers (evaluation, metering)
    work untouched; the scale difference (MWh vs kWh) is the point.
    """
    if days < 1:
        raise ValidationError("days must be >= 1")
    catalogue = catalogue or industrial_catalogue()
    axis = TimeAxis(start, ONE_MINUTE, days * MINUTES_PER_DAY)
    specs = {name: catalogue.get(name) for name in config.processes}

    activations: list[Activation] = []
    for day_no in range(days):
        day_start = start + timedelta(days=day_no)
        for spec in specs.values():
            activations.extend(
                draw_daily_activations(
                    spec, day_start, rng, household_id=config.factory_id
                )
            )
    activations.sort(key=lambda a: a.start)

    per_process = {
        name: materialise(
            [a for a in activations if a.appliance == name], specs, axis
        ).with_name(f"{config.factory_id}-{name}")
        for name in specs
    }
    base = factory_base_load(config, axis, rng)
    total_values = base.values.copy()
    for series in per_process.values():
        total_values += series.values
    shadow_config = HouseholdConfig(
        household_id=config.factory_id,
        appliances=config.processes,
        occupants=1,
        standby_kw=config.floor_load_kw,
        activity_peak_kw=config.shift_load_kw,
        fridge_average_kw=0.0,
        noise_std_kw=config.noise_std_kw,
    )
    return HouseholdTrace(
        config=shadow_config,
        axis=axis,
        total=TimeSeries(axis, total_values, name=f"{config.factory_id}-total"),
        base_load=base,
        per_appliance=per_process,
        activations=activations,
    )

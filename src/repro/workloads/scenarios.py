"""Reusable simulated scenarios for tests, benchmarks and examples.

Each builder is deterministic (fixed seeds) and cached per process, so
benches and tests that share a scenario do not pay for re-simulation.
"""

from __future__ import annotations

from datetime import datetime
from functools import lru_cache

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database
from repro.simulation.dataset import SimulatedDataset, generate_fleet
from repro.simulation.household import HouseholdConfig, HouseholdTrace, simulate_household
from repro.simulation.res import simulate_wind_production
from repro.simulation.tariff import TariffStudy, simulate_tariff_pair
from repro.timeseries.axis import TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries

#: Canonical scenario start: a Monday (aligned day types across scenarios).
SCENARIO_START = datetime(2012, 3, 5)


@lru_cache(maxsize=None)
def nilm_household(days: int = 14, seed: int = 3) -> HouseholdTrace:
    """A five-appliance household for disaggregation experiments."""
    config = HouseholdConfig(
        household_id=f"nilm-{days}d-{seed}",
        appliances=(
            "washing-machine-y",
            "dishwasher-z",
            "oven",
            "television",
            "vacuum-robot-x",
        ),
    )
    rng = np.random.default_rng(seed)
    return simulate_household(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def weekend_skewed_household(days: int = 28, seed: int = 11) -> HouseholdTrace:
    """A household whose dishwasher is strongly weekend-skewed (§4.2 example)."""
    config = HouseholdConfig(
        household_id=f"weekend-{days}d-{seed}",
        appliances=("washing-machine-y", "dishwasher-z", "oven", "television"),
        frequency_scale={"dishwasher-z": 1.3},
    )
    rng = np.random.default_rng(seed)
    return simulate_household(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def small_fleet(n: int = 10, days: int = 7, seed: int = 5) -> SimulatedDataset:
    """A small heterogeneous fleet for comparison experiments."""
    return generate_fleet(n, SCENARIO_START, days, seed=seed)


@lru_cache(maxsize=None)
def tariff_study(days: int = 28, seed: int = 9) -> TariffStudy:
    """Paired one-tariff/night-tariff traces of one household (§3.3 data)."""
    config = HouseholdConfig(household_id=f"tariff-{days}d-{seed}")
    rng = np.random.default_rng(seed)
    return simulate_tariff_pair(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def wind_target(days: int = 7, seed: int = 2, scale_kwh: float | None = None) -> TimeSeries:
    """A wind-production series on the standard metering grid.

    ``scale_kwh`` rescales the total to a given energy (so scheduling
    experiments can match the target magnitude to the flexible volume).
    """
    axis = axis_for_days(SCENARIO_START, days)
    production = simulate_wind_production(axis, np.random.default_rng(seed))
    if scale_kwh is not None and production.total() > 0:
        production = production * (scale_kwh / production.total())
    return production


def catalogue() -> ApplianceDatabase:
    """The appliance catalogue scenarios draw from."""
    return default_database()


def metering_axis(days: int = 7) -> TimeAxis:
    """The standard 15-minute axis of the scenarios."""
    return axis_for_days(SCENARIO_START, days)

"""Reusable simulated scenarios for tests, benchmarks and examples.

Each builder is deterministic (fixed seeds) and cached per process, so
benches and tests that share a scenario do not pay for re-simulation.

Beyond the classic single-household/paper-week builders, this module
provides the *conformance fleet scenarios*: named, heterogeneous fleet
workloads (seasonal, DST week, gap-ridden metering, EV-heavy, heat-pump
winter, PV prosumers, weekend-skewed, 100-household, tariff-switch) that
the :mod:`repro.conformance` matrix crosses with every registered
extraction approach.  All timestamps are naive local *standard* time — the
metering grid never jumps — so the DST-week scenario exercises the
calendar logic across the transition date without a wall-clock
discontinuity (exactly how §3.3's day-type reasoning consumes it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime
from functools import lru_cache

import numpy as np

from repro.appliances.database import ApplianceDatabase, default_database, extended_database
from repro.simulation.dataset import SimulatedDataset, generate_fleet
from repro.simulation.household import HouseholdConfig, HouseholdTrace, simulate_household
from repro.simulation.res import simulate_wind_production
from repro.simulation.tariff import TariffStudy, simulate_tariff_pair
from repro.timeseries.axis import TimeAxis, axis_for_days
from repro.timeseries.series import TimeSeries

#: Canonical scenario start: a Monday (aligned day types across scenarios).
SCENARIO_START = datetime(2012, 3, 5)

#: Deep-winter Monday (heating season, winter lighting factor active).
WINTER_START = datetime(2012, 1, 9)

#: Mid-summer Monday (no winter lighting, PV-relevant irradiance season).
SUMMER_START = datetime(2012, 7, 9)

#: Monday of the 2012 European DST spring-forward week (transition on
#: Sunday 2012-03-25); the axis stays on standard time throughout.
DST_WEEK_START = datetime(2012, 3, 19)

#: Monday of the 2012 European DST fall-back week (transition on Sunday
#: 2012-10-28, the 25-hour wall-clock day); the axis stays on standard time.
DST_FALLBACK_WEEK_START = datetime(2012, 10, 22)

_MINUTES_PER_DAY = 24 * 60


@lru_cache(maxsize=None)
def nilm_household(days: int = 14, seed: int = 3) -> HouseholdTrace:
    """A five-appliance household for disaggregation experiments."""
    config = HouseholdConfig(
        household_id=f"nilm-{days}d-{seed}",
        appliances=(
            "washing-machine-y",
            "dishwasher-z",
            "oven",
            "television",
            "vacuum-robot-x",
        ),
    )
    rng = np.random.default_rng(seed)
    return simulate_household(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def weekend_skewed_household(days: int = 28, seed: int = 11) -> HouseholdTrace:
    """A household whose dishwasher is strongly weekend-skewed (§4.2 example)."""
    config = HouseholdConfig(
        household_id=f"weekend-{days}d-{seed}",
        appliances=("washing-machine-y", "dishwasher-z", "oven", "television"),
        frequency_scale={"dishwasher-z": 1.3},
    )
    rng = np.random.default_rng(seed)
    return simulate_household(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def small_fleet(n: int = 10, days: int = 7, seed: int = 5) -> SimulatedDataset:
    """A small heterogeneous fleet for comparison experiments."""
    return generate_fleet(n, SCENARIO_START, days, seed=seed)


@lru_cache(maxsize=None)
def tariff_study(days: int = 28, seed: int = 9) -> TariffStudy:
    """Paired one-tariff/night-tariff traces of one household (§3.3 data)."""
    config = HouseholdConfig(household_id=f"tariff-{days}d-{seed}")
    rng = np.random.default_rng(seed)
    return simulate_tariff_pair(config, SCENARIO_START, days, rng)


@lru_cache(maxsize=None)
def wind_target(days: int = 7, seed: int = 2, scale_kwh: float | None = None) -> TimeSeries:
    """A wind-production series on the standard metering grid.

    ``scale_kwh`` rescales the total to a given energy (so scheduling
    experiments can match the target magnitude to the flexible volume).
    """
    axis = axis_for_days(SCENARIO_START, days)
    production = simulate_wind_production(axis, np.random.default_rng(seed))
    if scale_kwh is not None and production.total() > 0:
        production = production * (scale_kwh / production.total())
    return production


def catalogue() -> ApplianceDatabase:
    """The appliance catalogue scenarios draw from."""
    return default_database()


def metering_axis(days: int = 7) -> TimeAxis:
    """The standard 15-minute axis of the scenarios."""
    return axis_for_days(SCENARIO_START, days)


# ---------------------------------------------------------------------- #
# Conformance fleet scenarios
# ---------------------------------------------------------------------- #


def _custom_fleet(
    configs: list[HouseholdConfig],
    start: datetime,
    days: int,
    seed: int,
    database: ApplianceDatabase | None = None,
) -> SimulatedDataset:
    """Simulate an explicit list of household configs into a dataset.

    Mirrors :func:`repro.simulation.dataset.generate_fleet`'s child-seed
    scheme (one independent deterministic stream per household) but keeps
    the caller in charge of the appliance mix — the lever the EV-heavy,
    heat-pump and weekend-skewed scenarios pull.
    """
    root = np.random.default_rng(seed)
    child_seeds = root.integers(0, 2**63 - 1, size=len(configs))
    traces = [
        simulate_household(
            config, start, days, np.random.default_rng(int(child_seeds[i])), database
        )
        for i, config in enumerate(configs)
    ]
    return SimulatedDataset(traces=_frozen_traces(traces), start=start, days=days)


def _frozen_traces(traces: list[HouseholdTrace]) -> list[HouseholdTrace]:
    """Freeze each trace's total vector (builders are lru_cached and shared).

    Matches :func:`repro.simulation.dataset.generate_fleet`: an accidental
    in-place mutation of a cached scenario would corrupt every later
    consumer in the process, so it must fail loudly instead.
    """
    for trace in traces:
        trace.total.values.flags.writeable = False
    return traces


@lru_cache(maxsize=None)
def winter_fleet(n: int = 5, days: int = 5, seed: int = 31) -> SimulatedDataset:
    """A deep-winter fleet (seasonal lighting/heating-season behaviour)."""
    return generate_fleet(n, WINTER_START, days, seed=seed)


@lru_cache(maxsize=None)
def summer_fleet(n: int = 5, days: int = 5, seed: int = 32) -> SimulatedDataset:
    """A mid-summer fleet (no winter lighting; vacation-season behaviour)."""
    return generate_fleet(n, SUMMER_START, days, seed=seed)


@lru_cache(maxsize=None)
def dst_transition_fleet(n: int = 4, days: int = 7, seed: int = 33) -> SimulatedDataset:
    """The 2012 European spring-forward week (Mon 03-19 … Sun 03-25).

    The metering axis stays regular (naive standard time), but every
    calendar-aware component — day types, typical-day profiles, habit
    windows — spans the transition date, which is exactly where naive
    day-bucketing code historically breaks.
    """
    return generate_fleet(n, DST_WEEK_START, days, seed=seed)


@lru_cache(maxsize=None)
def dst_fallback_fleet(n: int = 4, days: int = 7, seed: int = 41) -> SimulatedDataset:
    """The 2012 European autumn fall-back week (Mon 10-22 … Sun 10-28).

    The mirror image of :func:`dst_transition_fleet`: the wall-clock Sunday
    is 25 hours long.  The metering axis stays regular (naive standard
    time), so the calendar-aware components — day types, typical-day
    profiles, habit windows — and the market-facing schedule stage both
    span the transition date without a grid discontinuity, exactly how
    §3.3's day-type reasoning consumes autumn data.
    """
    return generate_fleet(n, DST_FALLBACK_WEEK_START, days, seed=seed)


@lru_cache(maxsize=None)
def gap_ridden_fleet(n: int = 4, days: int = 5, seed: int = 34) -> SimulatedDataset:
    """A fleet whose meters suffer deterministic dead windows (outages).

    Each household's 1-minute total gets 2–4 zeroed gaps of 30–180 minutes
    (a dead meter reads zero, it does not read NaN — NaN input is rejected
    upstream by :class:`~repro.timeseries.series.TimeSeries`).  Ground-truth
    appliance series are kept as simulated; the gaps make recall drop, not
    the invariants.
    """
    fleet = generate_fleet(n, SCENARIO_START, days, seed=seed)
    rng = np.random.default_rng(seed + 1)
    damaged: list[HouseholdTrace] = []
    for trace in fleet.traces:
        values = trace.total.values.copy()
        for _ in range(int(rng.integers(2, 5))):
            width = int(rng.integers(30, 181))
            first = int(rng.integers(0, max(1, len(values) - width)))
            values[first : first + width] = 0.0
        total = TimeSeries(trace.axis, values, name=f"{trace.config.household_id}-total")
        damaged.append(replace(trace, total=total))
    return SimulatedDataset(
        traces=_frozen_traces(damaged), start=fleet.start, days=fleet.days
    )


@lru_cache(maxsize=None)
def ev_heavy_fleet(n: int = 5, days: int = 5, seed: int = 35) -> SimulatedDataset:
    """Every household charges an EV (small/medium/large round-robin).

    The Salter & Huang device-mix axis: EV charging dominates the flexible
    volume, with cycle energies 30–70 kWh dwarfing the wet appliances.
    """
    ev_models = ("ev-small", "ev-medium", "ev-large")
    configs = [
        HouseholdConfig(
            household_id=f"ev-{i:03d}",
            appliances=(
                "washing-machine-y",
                "dishwasher-z",
                "television",
                ev_models[i % len(ev_models)],
            ),
            occupants=2 + i % 3,
        )
        for i in range(n)
    ]
    return _custom_fleet(configs, SCENARIO_START, days, seed)


@lru_cache(maxsize=None)
def heat_pump_fleet(n: int = 5, days: int = 5, seed: int = 36) -> SimulatedDataset:
    """A winter fleet where every household runs a heat pump.

    Uses :func:`repro.appliances.database.extended_database` (the default
    catalogue deliberately excludes the heat pump); extractors run on this
    scenario must be handed the same catalogue — the conformance matrix
    wires that through its per-scenario extractor parameters.
    """
    configs = [
        HouseholdConfig(
            household_id=f"hp-{i:03d}",
            appliances=("washing-machine-y", "oven", "television", "heat-pump"),
            occupants=1 + i % 4,
        )
        for i in range(n)
    ]
    return _custom_fleet(configs, WINTER_START, days, seed, database=extended_database())


@lru_cache(maxsize=None)
def pv_prosumer_fleet(n: int = 4, days: int = 5, seed: int = 37) -> SimulatedDataset:
    """Net-metered PV prosumers: midday generation eats into consumption.

    A deterministic irradiance bell (13:00 centre, per-day cloudiness
    factor) is subtracted from each household's 1-minute total and the
    result clipped at zero — the meter sees net consumption only, so the
    extractors face daytime troughs and masked appliance runs.
    """
    fleet = generate_fleet(n, SUMMER_START, days, seed=seed)
    rng = np.random.default_rng(seed + 1)
    axis = fleet.traces[0].axis
    minute_of_day = np.arange(axis.length) % _MINUTES_PER_DAY
    delta = np.abs(minute_of_day - 13.0 * 60)
    bell = np.exp(-0.5 * (delta / 140.0) ** 2)
    day_index = np.arange(axis.length) // _MINUTES_PER_DAY
    prosumers: list[HouseholdTrace] = []
    for trace in fleet.traces:
        capacity_kw = float(rng.uniform(1.5, 3.5))
        cloudiness = rng.uniform(0.3, 1.0, size=int(day_index[-1]) + 1)
        pv_kwh_per_minute = (capacity_kw / 60.0) * bell * cloudiness[day_index]
        net = np.clip(trace.total.values - pv_kwh_per_minute, 0.0, None)
        total = TimeSeries(axis, net, name=f"{trace.config.household_id}-total")
        prosumers.append(replace(trace, total=total))
    return SimulatedDataset(
        traces=_frozen_traces(prosumers), start=fleet.start, days=fleet.days
    )


@lru_cache(maxsize=None)
def weekend_skewed_fleet(n: int = 4, days: int = 7, seed: int = 38) -> SimulatedDataset:
    """A full week of households whose wet appliances crowd the weekend."""
    configs = [
        HouseholdConfig(
            household_id=f"we-{i:03d}",
            appliances=("washing-machine-y", "dishwasher-z", "oven", "television"),
            occupants=2 + i % 2,
            frequency_scale={"dishwasher-z": 1.4, "washing-machine-y": 1.2},
        )
        for i in range(n)
    ]
    return _custom_fleet(configs, SCENARIO_START, days, seed)


@lru_cache(maxsize=None)
def large_fleet(n: int = 100, days: int = 2, seed: int = 39) -> SimulatedDataset:
    """A 100-household fleet: the aggregation-at-scale workload (§6)."""
    return generate_fleet(n, SCENARIO_START, days, seed=seed)


@lru_cache(maxsize=None)
def zoned_market_fleet(n: int = 5, days: int = 5, seed: int = 42) -> SimulatedDataset:
    """A fleet scheduled against a *zoned* market (multi-zone targets).

    The households themselves are a plain heterogeneous fleet; what makes
    the scenario distinct is downstream — the conformance runner pairs it
    with a three-zone :class:`~repro.scheduling.zones.ZonedTarget`
    (:func:`repro.pipeline.fleet.fleet_zoned_target`), so every extractor's
    aggregates are sharded across zone markets by household identity, half
    through the explicit assignment policy and half through the hash-shard
    fallback.
    """
    return generate_fleet(n, SCENARIO_START, days, seed=seed)


@dataclass(frozen=True)
class TariffFleet:
    """A fleet of paired tariff studies: observed traces + references.

    ``dataset`` holds each household's *multi-tariff* (observed) trace;
    ``references`` holds the matching one-tariff metering series, index-
    aligned — the per-household behavioural reference the §3.3 multi-tariff
    approach requires.
    """

    dataset: SimulatedDataset
    references: tuple[TimeSeries, ...]
    studies: tuple[TariffStudy, ...]


@lru_cache(maxsize=None)
def tariff_switch_fleet(n: int = 3, days: int = 14, seed: int = 40) -> TariffFleet:
    """Households observed under a night tariff, with one-tariff references."""
    root = np.random.default_rng(seed)
    child_seeds = root.integers(0, 2**63 - 1, size=n)
    studies = []
    for i in range(n):
        config = HouseholdConfig(household_id=f"tf-{i:03d}", occupants=2 + i % 3)
        rng = np.random.default_rng(int(child_seeds[i]))
        studies.append(simulate_tariff_pair(config, SCENARIO_START, days, rng))
    dataset = SimulatedDataset(
        traces=_frozen_traces([s.multi for s in studies]),
        start=SCENARIO_START,
        days=days,
    )
    references = tuple(s.single.metered() for s in studies)
    return TariffFleet(dataset=dataset, references=references, studies=tuple(studies))

"""Reconstruction of the paper's Figure 5 day.

Figure 5 shows one household day (96 quarter-hour intervals) with printed
ground truth:

* total daily energy **39.02 kWh** ("39.02 * 0.05 = 1.951"),
* the average-consumption threshold line,
* eight peaks with sizes **0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47, 0.48**
  (chronological order; "peak size" = total energy of the contiguous
  above-average run),
* a 5 % flexible share ⇒ filter threshold **1.951 kWh**, discarding peaks
  1–5 and 8,
* surviving peaks 6 and 7 with selection probabilities **29 % / 71 %**.

This module rebuilds a day satisfying every printed number exactly, so the
peak-based extractor can be validated against the paper's own walkthrough.
(The figure draws its average line "at around 0.46"; the arithmetic mean of
a 39.02 kWh day is 39.02/96 ≈ 0.4065 kWh — we match the *algorithm*, which
uses the mean.)
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis
from repro.timeseries.series import TimeSeries

#: Chronological peak sizes printed in Figure 5 (kWh).
FIGURE5_PEAK_SIZES: tuple[float, ...] = (0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47, 0.48)

#: Total daily energy printed in Figure 5 (kWh).
FIGURE5_DAY_TOTAL: float = 39.02

#: The paper's flexible-share parameter in the walkthrough.
FIGURE5_FLEX_SHARE: float = 0.05

#: Filter threshold printed in the paper: 39.02 * 0.05.
FIGURE5_FILTER_THRESHOLD: float = 1.951

#: Peak numbers (1-based, chronological) surviving the filter.
FIGURE5_SURVIVORS: tuple[int, ...] = (6, 7)

#: Selection probabilities printed for peaks 6 and 7.
FIGURE5_PROBABILITIES: tuple[float, ...] = (0.29, 0.71)

# Per-peak construction: (first interval index, per-interval energies).
# Positions follow the figure's time-of-day placement; every in-peak value
# exceeds the daily mean (0.4065) and sums to the printed size.
_PEAK_LAYOUT: tuple[tuple[int, tuple[float, ...]], ...] = (
    (5, (0.47,)),                       # Peak 1 ~01:15
    (26, (0.75, 0.75)),                 # Peak 2 ~06:30
    (38, (0.48,)),                      # Peak 3 ~09:30
    (42, (0.48,)),                      # Peak 4 ~10:30
    (48, (0.55, 0.75, 0.55)),           # Peak 5 ~12:00
    (68, (1.11, 1.11)),                 # Peak 6 ~17:00
    (76, (1.0, 1.2, 1.2, 1.2, 0.87)),   # Peak 7 ~19:00
    (92, (0.48,)),                      # Peak 8 ~23:00
)


@dataclass(frozen=True)
class Figure5Day:
    """The reconstructed day plus its printed ground truth."""

    series: TimeSeries
    peak_first_indices: tuple[int, ...]
    peak_sizes: tuple[float, ...]
    day_total: float
    flex_share: float
    filter_threshold: float
    survivor_numbers: tuple[int, ...]
    survivor_probabilities: tuple[float, ...]

    @property
    def mean_threshold(self) -> float:
        """The algorithm's peak-detection threshold (daily mean)."""
        return self.series.mean()


def _base_pattern(intervals: int) -> np.ndarray:
    """A sub-threshold daily base shape: night low, day medium, evening high."""
    base = np.empty(intervals)
    for i in range(intervals):
        hour = i / 4.0
        if hour < 5.5:
            base[i] = 0.24
        elif hour < 9.0:
            base[i] = 0.32
        elif hour < 16.0:
            base[i] = 0.34
        else:
            base[i] = 0.37
    return base


def figure5_day(start: datetime | None = None) -> Figure5Day:
    """Build the Figure 5 day starting at midnight of ``start``.

    The returned series satisfies, exactly (to float tolerance):
    total 39.02 kWh; eight above-mean runs at the documented positions with
    the printed sizes; all other intervals strictly below the mean.
    """
    if start is None:
        start = datetime(2012, 3, 7)
    start = start.replace(hour=0, minute=0, second=0, microsecond=0)
    intervals = 96
    axis = TimeAxis(start, FIFTEEN_MINUTES, intervals)

    values = np.zeros(intervals)
    peak_mask = np.zeros(intervals, dtype=bool)
    firsts = []
    for first, energies in _PEAK_LAYOUT:
        firsts.append(first)
        for offset, e in enumerate(energies):
            values[first + offset] = e
            peak_mask[first + offset] = True

    peak_total = float(values.sum())
    residual_total = FIGURE5_DAY_TOTAL - peak_total
    base = _base_pattern(intervals)
    base[peak_mask] = 0.0
    base *= residual_total / base.sum()

    values = values + base
    series = TimeSeries(axis, values, name="figure5-day")
    # Construction invariants (fail fast if the layout is ever edited badly).
    mean = series.mean()
    assert abs(series.total() - FIGURE5_DAY_TOTAL) < 1e-9
    assert all(values[i] > mean for i in np.flatnonzero(peak_mask))
    assert all(values[i] < mean for i in np.flatnonzero(~peak_mask))
    return Figure5Day(
        series=series,
        peak_first_indices=tuple(firsts),
        peak_sizes=FIGURE5_PEAK_SIZES,
        day_total=FIGURE5_DAY_TOTAL,
        flex_share=FIGURE5_FLEX_SHARE,
        filter_threshold=FIGURE5_FILTER_THRESHOLD,
        survivor_numbers=FIGURE5_SURVIVORS,
        survivor_probabilities=FIGURE5_PROBABILITIES,
    )

"""Canonical workloads: the Figure 5 day and reusable simulated scenarios.

The paper's worked example (``paper_day``, with its pinned §5 constants)
plus the named fleet scenarios the conformance matrix, benchmarks and
tests share (``scenarios``): seasonal, DST-transition, gap-ridden,
EV-heavy, heat-pump, PV-prosumer, weekend-skewed, large-fleet,
tariff-switch and zoned-market fleets.

Subsystem contract:

* **Determinism + caching** — every builder fixes its seeds and is
  ``lru_cache``-backed; all consumers in a process share one simulation,
  and cached traces are frozen (writes raise) so sharing is safe.
* **Stability** — scenario content is part of the conformance golden
  pins; changing a builder's seeds or shape is a deliberate, reviewed
  act (see TESTING.md).
"""

from repro.workloads.paper_day import (
    FIGURE5_DAY_TOTAL,
    FIGURE5_FILTER_THRESHOLD,
    FIGURE5_FLEX_SHARE,
    FIGURE5_PEAK_SIZES,
    FIGURE5_PROBABILITIES,
    FIGURE5_SURVIVORS,
    Figure5Day,
    figure5_day,
)

__all__ = [
    "FIGURE5_DAY_TOTAL",
    "FIGURE5_FILTER_THRESHOLD",
    "FIGURE5_FLEX_SHARE",
    "FIGURE5_PEAK_SIZES",
    "FIGURE5_PROBABILITIES",
    "FIGURE5_SURVIVORS",
    "Figure5Day",
    "figure5_day",
]

from repro.workloads.scenarios import (
    DST_WEEK_START,
    SCENARIO_START,
    SUMMER_START,
    WINTER_START,
    TariffFleet,
    catalogue,
    dst_transition_fleet,
    ev_heavy_fleet,
    gap_ridden_fleet,
    heat_pump_fleet,
    large_fleet,
    metering_axis,
    nilm_household,
    pv_prosumer_fleet,
    small_fleet,
    summer_fleet,
    tariff_study,
    tariff_switch_fleet,
    weekend_skewed_fleet,
    weekend_skewed_household,
    wind_target,
    winter_fleet,
)

__all__ += [
    "DST_WEEK_START",
    "SCENARIO_START",
    "SUMMER_START",
    "WINTER_START",
    "TariffFleet",
    "catalogue",
    "dst_transition_fleet",
    "ev_heavy_fleet",
    "gap_ridden_fleet",
    "heat_pump_fleet",
    "large_fleet",
    "metering_axis",
    "nilm_household",
    "pv_prosumer_fleet",
    "small_fleet",
    "summer_fleet",
    "tariff_study",
    "tariff_switch_fleet",
    "weekend_skewed_fleet",
    "weekend_skewed_household",
    "wind_target",
    "winter_fleet",
]

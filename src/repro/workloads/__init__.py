"""Canonical workloads: the Figure 5 day and reusable simulated scenarios."""

from repro.workloads.paper_day import (
    FIGURE5_DAY_TOTAL,
    FIGURE5_FILTER_THRESHOLD,
    FIGURE5_FLEX_SHARE,
    FIGURE5_PEAK_SIZES,
    FIGURE5_PROBABILITIES,
    FIGURE5_SURVIVORS,
    Figure5Day,
    figure5_day,
)

__all__ = [
    "FIGURE5_DAY_TOTAL",
    "FIGURE5_FILTER_THRESHOLD",
    "FIGURE5_FLEX_SHARE",
    "FIGURE5_PEAK_SIZES",
    "FIGURE5_PROBABILITIES",
    "FIGURE5_SURVIVORS",
    "Figure5Day",
    "figure5_day",
]

from repro.workloads.scenarios import (
    SCENARIO_START,
    catalogue,
    metering_axis,
    nilm_household,
    small_fleet,
    tariff_study,
    weekend_skewed_household,
    wind_target,
)

__all__ += [
    "SCENARIO_START",
    "catalogue",
    "metering_axis",
    "nilm_household",
    "small_fleet",
    "tariff_study",
    "weekend_skewed_household",
    "wind_target",
]

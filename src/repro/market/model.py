"""Priced bids: turning flex-offers into merit-order market orders.

The EDBT paper extracts *flexibility*; a market monetises it.  Following the
bid/clearing structure of energy-only markets (flexABLE's EOM, Kara et al.'s
flexibility products), every aggregated flex-offer becomes one demand bid in
its zone's market:

- **willingness-to-pay** rises with how *tight* the offer is — a slice whose
  ``energy_min`` is close to its ``energy_max`` must buy almost all of that
  energy, so it bids near the zone's price cap;
- **willingness-to-shift** lowers the bid — an offer with a day of time
  flexibility can chase cheap intervals and therefore refuses to pay much in
  any particular one.

Both effects are folded into a per-profile-slice bid curve
(:attr:`PricedBid.slice_prices`) whose energy-weighted mean is the scalar
merit-order price.  :func:`price_offer` is the *reference* derivation —
deliberately scalar Python, one offer at a time.  :func:`price_offers_batched`
derives every offer at once for the vectorized clearing engine and is held
**bitwise equal** to the scalar path: elementwise numpy arithmetic is IEEE
identical by nature, and the per-offer reductions use a padded
column-parallel accumulation (one offer per column, rows added top to
bottom) so every sum happens in exactly the reference's left-to-right
order — ``np.add.reduceat``/``np.sum`` would not do, as they sum pairwise.
Both engines therefore see *identical* bid floats and their accept/reject
decisions cannot diverge — the same discipline as ``greedy.py``'s engine
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.errors import MarketError
from repro.flexoffer.model import FlexOffer

ONE_DAY = timedelta(days=1)

#: Clearing engines: execution plans over the same bid scalars, never
#: different behaviours (see repro/market/clearing.py).
MARKET_ENGINES = ("reference", "vectorized")


@dataclass(frozen=True, slots=True)
class MarketConfig:
    """How merit-order clearing runs on a zoned schedule.

    Parameters
    ----------
    slices:
        Number of uniform market periods the target axis is divided into;
        each gets its own supply curve and uniform clearing price.
    coupling_kwh:
        Capacity of every directed coupling between *adjacent* zones
        (declaration order forms a line).  ``0`` disables the spill pass.
    engine:
        ``"reference"`` (straightforward scalar loops) or ``"vectorized"``
        (batched numpy); acceptance sets are identical by construction.
    """

    slices: int = 8
    coupling_kwh: float = 0.0
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise MarketError(f"slices must be >= 1, got {self.slices}")
        if self.coupling_kwh < 0:
            raise MarketError(f"coupling_kwh must be >= 0, got {self.coupling_kwh}")
        if self.engine not in MARKET_ENGINES:
            raise MarketError(
                f"unknown market engine {self.engine!r}; "
                f"expected one of {', '.join(MARKET_ENGINES)}"
            )


@dataclass(frozen=True, slots=True)
class PricedBid:
    """One flex-offer's demand bid in its home zone's market.

    ``slice_prices`` is the bid curve: willingness-to-pay per profile slice
    in EUR/kWh, inside the zone's ``[price_floor, price_cap]`` band.
    ``price`` is its energy-weighted mean — the scalar the merit order sorts
    on.  ``quantity_kwh``/``min_kwh`` are the offer's effective total energy
    bounds: the bid demands up to ``quantity_kwh`` and cannot be cleared
    below ``min_kwh`` (lumpy partial acceptance is rejected instead).
    """

    offer: FlexOffer
    zone: str
    slice_index: int
    price: float
    quantity_kwh: float
    min_kwh: float
    slice_prices: tuple[float, ...]

    @property
    def consuming(self) -> bool:
        """False for production/zero-energy offers, which bypass clearing."""
        return self.quantity_kwh > 0.0


def shift_utility(time_flexibility: timedelta) -> float:
    """Willingness-to-shift discount in ``(0, 1]``: 1 = must-run, ->0 = free."""
    return 1.0 / (1.0 + time_flexibility / ONE_DAY)


def price_offer(
    offer: FlexOffer, price_floor: float, price_cap: float
) -> tuple[float, float, float, tuple[float, ...]]:
    """Derive ``(price, quantity_kwh, min_kwh, slice_prices)`` for one offer.

    Reference bid-derivation arithmetic: scalar Python, left-to-right
    accumulation.  The vectorized engine's batched derivation replicates
    every expression here with sequential numpy reductions, so merit order
    and acceptance thresholds are bitwise identical across engines by
    construction (asserted by the market bench equivalence section).
    """
    span = price_cap - price_floor
    shift_u = shift_utility(offer.time_flexibility)
    slice_prices = []
    energy = 0.0
    weighted = 0.0
    for s in offer.slices:
        emax = s.energy_max
        tightness = s.energy_min / emax if emax > 0.0 else 1.0
        slice_price = price_floor + span * (0.5 * (tightness + shift_u))
        slice_prices.append(slice_price)
        demanded = emax if emax > 0.0 else 0.0
        energy += demanded
        weighted += demanded * slice_price
    price = weighted / energy if energy > 0.0 else price_floor + 0.5 * span
    tmin, tmax = offer.effective_total_bounds()
    quantity = tmax if tmax > 0.0 else 0.0
    floor_min = tmin if tmin > 0.0 else 0.0
    min_kwh = floor_min if floor_min < quantity else quantity
    return price, quantity, min_kwh, tuple(slice_prices)


@dataclass(frozen=True, slots=True)
class BatchedBids:
    """Batched :func:`price_offer` output for a stack of offers.

    The per-offer scalars (``prices``/``quantities``/``min_kwh``) are
    bitwise equal to the reference derivation.  ``curve_eur`` is each
    offer's full bid-curve integral in closed form — the bid price is
    constant within a profile slice, so the per-interval sum telescopes to
    ``sum(demanded * slice_price)``; the vectorized engine uses it directly
    for valuations (welfare input only, reconciled against the reference's
    per-interval integration at ``rtol=1e-9``).  The concatenated
    profile-slice arrays (offer-major ``slice_prices`` with ``offsets``
    marking each offer's first slice) are kept for reconciliation tests.
    """

    prices: np.ndarray
    quantities: np.ndarray
    min_kwh: np.ndarray
    curve_eur: np.ndarray
    slice_prices: np.ndarray
    offsets: np.ndarray


def _sequential_sums(
    values: np.ndarray, rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Per-offer sums in strict left-to-right order, one offer per column.

    Scatter the concatenated values into a (max_slices, n_offers) grid and
    accumulate row by row: column ``j``'s total is ``((v0 + v1) + v2) + ...``
    exactly as the scalar reference adds them (trailing zero padding is
    exact).  Pairwise reducers (``np.sum``, ``np.add.reduceat``) regroup the
    additions and drift in the last ulp — never use them for decision inputs.
    """
    grid = np.zeros(shape)
    grid[rows, cols] = values
    totals = grid[0].copy()
    for row in range(1, shape[0]):
        totals += grid[row]
    return totals


def price_offers_batched(
    offers: list[FlexOffer] | tuple[FlexOffer, ...],
    price_floor: float,
    price_cap: float,
    profile_arrays: list[tuple[np.ndarray, ...]] | None = None,
) -> BatchedBids:
    """Derive bids for all ``offers`` in one batched pass.

    Bitwise equal to mapping :func:`price_offer` over ``offers`` (see the
    module docstring for why the accumulation order is preserved), at a
    fraction of the per-offer Python cost.  ``profile_arrays`` optionally
    supplies each offer's pre-extracted ``(energy_min, energy_max, ...)``
    vectors (e.g. ``AggregatedFlexOffer.profile_bounds_arrays``) so the hot
    path skips per-slice Python iteration entirely.
    """
    n = len(offers)
    empty_f = np.empty(0, dtype=np.float64)
    if n == 0:
        return BatchedBids(
            empty_f, empty_f, empty_f, empty_f, empty_f, np.empty(0, dtype=np.intp)
        )
    span = price_cap - price_floor
    if profile_arrays is not None:
        counts = np.fromiter(
            (arrays[0].size for arrays in profile_arrays), dtype=np.intp, count=n
        )
        total = int(counts.sum())
        emin = np.concatenate([arrays[0] for arrays in profile_arrays])
        emax = np.concatenate([arrays[1] for arrays in profile_arrays])
    else:
        counts = np.fromiter((len(o.slices) for o in offers), dtype=np.intp, count=n)
        total = int(counts.sum())
        emin = np.fromiter(
            (s.energy_min for o in offers for s in o.slices),
            dtype=np.float64,
            count=total,
        )
        emax = np.fromiter(
            (s.energy_max for o in offers for s in o.slices),
            dtype=np.float64,
            count=total,
        )
    shift = np.repeat(
        np.fromiter(
            (shift_utility(o.time_flexibility) for o in offers),
            dtype=np.float64,
            count=n,
        ),
        counts,
    )
    positive = emax > 0.0
    tightness = np.divide(emin, emax, out=np.ones_like(emax), where=positive)
    slice_prices = price_floor + span * (0.5 * (tightness + shift))
    demanded = np.where(positive, emax, 0.0)
    offsets = np.zeros(n, dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    cols = np.repeat(np.arange(n, dtype=np.intp), counts)
    rows = np.arange(total, dtype=np.intp) - np.repeat(offsets, counts)
    shape = (int(counts.max()), n)
    energy = _sequential_sums(demanded, rows, cols, shape)
    weighted = _sequential_sums(demanded * slice_prices, rows, cols, shape)
    tmin = _sequential_sums(emin, rows, cols, shape)
    tmax = _sequential_sums(emax, rows, cols, shape)
    has_energy = energy > 0.0
    prices = np.where(
        has_energy,
        weighted / np.where(has_energy, energy, 1.0),
        price_floor + 0.5 * span,
    )
    # Explicit totals tighten the profile bounds exactly as
    # FlexOffer.effective_total_bounds does: strict comparisons keep the
    # profile value on ties (matching Python's max/min), and the ±inf
    # stand-ins for absent totals never win a strict comparison.
    explicit_min = np.fromiter(
        (
            o.total_energy_min if o.total_energy_min is not None else -np.inf
            for o in offers
        ),
        dtype=np.float64,
        count=n,
    )
    explicit_max = np.fromiter(
        (
            o.total_energy_max if o.total_energy_max is not None else np.inf
            for o in offers
        ),
        dtype=np.float64,
        count=n,
    )
    tmin = np.where(explicit_min > tmin, explicit_min, tmin)
    tmax = np.where(explicit_max < tmax, explicit_max, tmax)
    quantities = np.where(tmax > 0.0, tmax, 0.0)
    floors_min = np.where(tmin > 0.0, tmin, 0.0)
    min_kwh = np.where(floors_min < quantities, floors_min, quantities)
    return BatchedBids(prices, quantities, min_kwh, weighted, slice_prices, offsets)

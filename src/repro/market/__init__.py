"""Economic market clearing for zoned flexibility scheduling.

The subsystem contract:

- :mod:`repro.market.model` — :class:`PricedBid` (a flex-offer turned into
  a demand bid: per-slice willingness-to-pay curve inside the zone's price
  band, discounted by willingness-to-shift) and :class:`MarketConfig` (the
  clearing knobs: market slices, coupling capacity, engine).
- :mod:`repro.market.clearing` — per-zone, per-slice uniform-price
  merit-order clearing (:func:`clear_zones`) with a bounded-capacity
  cross-zone spill pass, producing a :class:`ClearingResult` (acceptance
  sets, per-slice prices, consumer surplus / producer revenue / welfare).
- :mod:`repro.market.bench` — the reference↔vectorized reconciliation
  benchmark behind ``BENCH_market.json`` and ``repro bench --suite market``.

Clearing threads into scheduling through
``ScheduleConfig(market=MarketConfig(...))``: on zoned targets,
:func:`repro.scheduling.zones.schedule_zones` clears first and places only
cleared bids.
"""

from repro.market.bench import (
    MARKET_FIDELITY_RTOL,
    build_market_workload,
    market_table_rows,
    run_market_benchmark,
)
from repro.market.clearing import (
    BidOutcome,
    ClearingResult,
    ZoneClearing,
    clear_zones,
)
from repro.market.model import (
    MARKET_ENGINES,
    BatchedBids,
    MarketConfig,
    PricedBid,
    price_offer,
    price_offers_batched,
    shift_utility,
)

__all__ = [
    "MARKET_ENGINES",
    "MARKET_FIDELITY_RTOL",
    "BatchedBids",
    "BidOutcome",
    "ClearingResult",
    "MarketConfig",
    "PricedBid",
    "ZoneClearing",
    "build_market_workload",
    "clear_zones",
    "market_table_rows",
    "price_offer",
    "price_offers_batched",
    "run_market_benchmark",
    "shift_utility",
]

"""The market-clearing benchmark: vectorized vs reference engine.

The 220-aggregate suite again — but priced.  Where the scheduling
benchmarks draw household-scale offers, this workload draws EV-fleet and
heat-pump-scale ones (8–192 profile slices, 4–50 kWh totals, 6–36 h of
start flexibility): bid derivation and bid-curve valuation scale with
profile length, so richer profiles are exactly where the batched engine
earns its keep.  Four price-banded zones, half the aggregates explicitly
routed and half hash-sharded, with a 25 kWh inter-zone coupling so the
spill pass runs too.

The equivalence section is the subsystem's engine contract, enforced:
acceptance sets (status/reason/zone/slice) must be *identical*, clearing
prices and cleared quantities *bitwise* equal, and welfare — the only
engine-specific arithmetic — reconciled at ``rtol=1e-9``.  The report is
written to ``BENCH_market.json``; re-run via ``repro bench --suite
market`` or ``pytest benchmarks/bench_market.py``.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer, aggregate_group
from repro.flexoffer.generators import RandomGeneratorConfig, random_flexoffer
from repro.flexoffer.model import offer_id_scope
from repro.market.clearing import ClearingResult, clear_zones
from repro.market.model import MarketConfig
from repro.scheduling.zones import ZonedTarget, make_market_zones, routing_key
from repro.timeseries.axis import axis_for_days
from repro.workloads.scenarios import SCENARIO_START

#: Relative tolerance for reference-vs-vectorized welfare metrics.  The
#: engines value bid curves differently (per-interval scalar integration
#: vs the closed-form curve integral); everything decision-bearing is
#: bitwise identical and checked as such.
MARKET_FIDELITY_RTOL = 1e-9

#: Timing repetitions per engine; the minimum is reported.
_TIMING_REPEATS = 3


def build_market_workload(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    zones: int = 4,
) -> tuple[list[AggregatedFlexOffer], ZonedTarget]:
    """A deterministic priced workload: fleet-scale aggregates + zones.

    Offers are EV-fleet/heat-pump shaped — long profiles (8–192 slices),
    4–50 kWh of total energy, 6–36 h of start flexibility — aggregated in
    groups of ``members_per_aggregate`` shifted/scaled copies (the shape
    the grouping grid produces on real fleets).  The market is ``zones``
    price-banded zones from :func:`make_market_zones`; half the
    aggregates are routed through the explicit assignment mapping, the
    rest through the hash-shard fallback.
    """
    from dataclasses import replace

    from repro.flexoffer.model import next_offer_id

    axis = axis_for_days(SCENARIO_START, days)
    rng = np.random.default_rng(seed)
    config = RandomGeneratorConfig(
        slices_min=8,
        slices_max=192,
        total_energy_min=4.0,
        total_energy_max=50.0,
        time_flexibility_min=timedelta(hours=6),
        time_flexibility_max=timedelta(hours=36),
    )
    aggregates: list[AggregatedFlexOffer] = []
    with offer_id_scope("market-bench"):
        for _ in range(n_aggregates):
            base = random_flexoffer(axis, rng, config)
            members = [base]
            for _ in range(members_per_aggregate - 1):
                offset = int(rng.integers(0, 9))  # within the 2 h grouping grid
                shifted = base.shifted(axis.resolution * offset)
                if shifted.latest_start + shifted.duration > axis.end:
                    shifted = base
                member = replace(
                    shifted.scaled(float(rng.uniform(0.6, 1.4))),
                    offer_id=next_offer_id("rand"),
                )
                members.append(member)
            aggregates.append(aggregate_group(members))
    flexible = sum(a.offer.profile_energy_max for a in aggregates)
    market_zones = make_market_zones(
        axis, zones, seed + 100, flexible / max(zones, 1)
    )
    assignment = {
        routing_key(aggregate): market_zones[index % zones].name
        for index, aggregate in enumerate(aggregates[: n_aggregates // 2])
    }
    return aggregates, ZonedTarget(zones=market_zones, assignment=assignment)


def _timed(fn, repeats: int = _TIMING_REPEATS):
    """Run ``fn`` ``repeats`` times; return (min seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _decisions(result: ClearingResult) -> list[tuple]:
    """Everything decision-bearing about every bid, in a canonical order."""
    return sorted(
        (o.offer_id, o.home_zone, o.zone, o.slice_index, o.status, o.reason)
        for o in result.outcomes
    )


def _settlements(result: ClearingResult) -> list[tuple]:
    """Per-bid cleared quantity and payment (must be bitwise equal)."""
    return sorted(
        (o.offer_id, o.quantity_kwh, o.payment_eur) for o in result.outcomes
    )


def run_market_benchmark(
    n_aggregates: int = 220,
    members_per_aggregate: int = 3,
    days: int = 7,
    seed: int = 17,
    zones: int = 4,
    slices: int = 8,
    coupling_kwh: float = 25.0,
    out_path: Path | str | None = None,
) -> tuple[dict, ClearingResult]:
    """Benchmark merit-order clearing under both engines.

    Times :func:`~repro.market.clearing.clear_zones` on the priced
    220-aggregate suite, reconciles the engines (identical acceptance
    sets, bitwise prices/quantities, welfare at ``rtol=1e-9``) and gates
    the vectorized engine ≥3× over the reference scalar loops.  Returns
    ``(report_dict, vectorized_result)``; ``out_path`` writes the
    repository's ``BENCH_market.json`` baseline.
    """
    aggregates, zoned = build_market_workload(
        n_aggregates, members_per_aggregate, days, seed, zones
    )
    reference_config = MarketConfig(
        slices=slices, coupling_kwh=coupling_kwh, engine="reference"
    )
    vectorized_config = MarketConfig(
        slices=slices, coupling_kwh=coupling_kwh, engine="vectorized"
    )

    # Warm-up (numpy dispatch, axis caches, per-aggregate profile-array
    # caches) before any timed pass.
    clear_zones(aggregates, zoned, reference_config)
    clear_zones(aggregates, zoned, vectorized_config)

    reference_seconds, reference_result = _timed(
        lambda: clear_zones(aggregates, zoned, reference_config)
    )
    vectorized_seconds, vectorized_result = _timed(
        lambda: clear_zones(aggregates, zoned, vectorized_config)
    )
    speedup = (
        reference_seconds / vectorized_seconds
        if vectorized_seconds > 0
        else float("inf")
    )

    acceptance_identical = _decisions(reference_result) == _decisions(
        vectorized_result
    )
    settlements_identical = _settlements(reference_result) == _settlements(
        vectorized_result
    )
    prices_identical = all(
        ref_zone.slice_prices == vec_zone.slice_prices
        and ref_zone.cleared_kwh == vec_zone.cleared_kwh
        for ref_zone, vec_zone in zip(reference_result.zones, vectorized_result.zones)
    )
    welfare_match = bool(
        np.isclose(
            reference_result.welfare_eur,
            vectorized_result.welfare_eur,
            rtol=MARKET_FIDELITY_RTOL,
        )
    ) and bool(
        np.isclose(
            reference_result.consumer_surplus_eur,
            vectorized_result.consumer_surplus_eur,
            rtol=MARKET_FIDELITY_RTOL,
        )
    )
    budget_balanced = bool(
        np.isclose(
            vectorized_result.payments_eur,
            vectorized_result.revenue_eur,
            rtol=MARKET_FIDELITY_RTOL,
        )
    )

    result = vectorized_result
    report = {
        "workload": {
            "aggregates": len(aggregates),
            "member_offers": sum(a.size for a in aggregates),
            "avg_profile_slices": round(
                sum(len(a.offer.slices) for a in aggregates) / len(aggregates), 2
            ),
            "days": days,
            "seed": seed,
            "zones": len(zoned.zones),
            "mapped_keys": len(zoned.assignment),
        },
        "clearing": {
            "reference_seconds": round(reference_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(speedup, 2),
            "market_slices": slices,
            "coupling_kwh": coupling_kwh,
            "accepted": len(result.accepted),
            "partial": len(result.partial),
            "rejected": len(result.rejected),
            "migrated": len(result.migrated),
            "cleared_kwh": round(result.cleared_kwh, 6),
            "revenue_eur": round(result.revenue_eur, 6),
            "consumer_surplus_eur": round(result.consumer_surplus_eur, 6),
            "producer_surplus_eur": round(result.producer_surplus_eur, 6),
            "welfare_eur": round(result.welfare_eur, 6),
        },
        "zones": result.table_rows(),
        "equivalence": {
            "acceptance_identical": acceptance_identical,
            "settlements_identical": settlements_identical,
            "prices_identical": prices_identical,
            "welfare_match": welfare_match,
            "budget_balanced": budget_balanced,
            "fidelity_rtol": MARKET_FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, vectorized_result


def market_table_rows(report: dict) -> list[dict]:
    """Human-readable rows for the market CLI/bench table."""
    clearing = report["clearing"]
    rows = [
        {
            "zone": zone["zone"],
            "bids": zone["bids"],
            "cleared": zone["accepted"] + zone["partial"],
            "migrated_in": zone["migrated_in"],
            "price_eur": zone["price_eur"],
            "cleared_kwh": zone["cleared_kwh"],
            "welfare_eur": zone["welfare_eur"],
        }
        for zone in report["zones"]
    ]
    rows.append(
        {
            "zone": "TOTAL",
            "bids": clearing["accepted"]
            + clearing["partial"]
            + clearing["rejected"],
            "cleared": clearing["accepted"] + clearing["partial"],
            "migrated_in": clearing["migrated"],
            "price_eur": "—",
            "cleared_kwh": round(clearing["cleared_kwh"], 4),
            "welfare_eur": round(clearing["welfare_eur"], 4),
        }
    )
    return rows

"""Per-zone merit-order clearing with cross-zone spill.

Every market slice of every zone runs a uniform-price auction: demand bids
(:class:`~repro.market.model.PricedBid`) are sorted in merit order (price
descending) and intersected with the zone's supply curve — a linear ramp
from ``price_floor`` at zero quantity to ``price_cap`` at the slice's full
supply (the zone target's energy in that slice).  The maximal prefix of the
bid stack that stays above the ramp is accepted, the marginal bid may be
accepted partially (unless that would violate its minimum energy — a
"lumpy" rejection), and everyone cleared pays the slice's final uniform
price, so payments equal revenues by construction.

When a zone saturates, a second pass lets rejected bids spill into the
*adjacent* zones (declaration order forms a line) through a
bounded-capacity coupling.  Imports continue up the receiving zone's supply
ramp but may never push the slice price above the cheapest locally accepted
bid, so first-pass settlements stay individually rational.

Engine-equivalence contract (the ``greedy.py`` pattern)
-------------------------------------------------------
Engines are execution plans, never behaviours.  All accept/reject decisions
are made on *bitwise-identical* floats: the reference engine derives bids
one offer at a time through :func:`~repro.market.model.price_offer` (scalar
Python, left-to-right sums), while the vectorized engine batches the same
expressions over every offer at once
(:func:`~repro.market.model.price_offers_batched`), whose padded
column-parallel accumulation preserves the reference's exact addition
order — so the batched sums match the scalar ones bit for bit.  Slice
supplies come from one shared ``np.add.reduceat`` pass, the acceptance
walk uses the same scalar expressions in both engines, and ``np.cumsum``
(strictly sequential) mirrors the reference's running totals exactly.
The only engine-specific arithmetic
that may differ in the last bits is the bid-curve valuation (per-interval
integration in the reference, the closed-form ``curve_eur`` integral off
the batched prep arrays in the vectorized engine), which feeds consumer
surplus and welfare only — reconciled at ``rtol=1e-9``, never a decision
input.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer
from repro.errors import MarketError
from repro.market.model import (
    BatchedBids,
    MarketConfig,
    PricedBid,
    price_offer,
    price_offers_batched,
)
from repro.scheduling.zones import MarketZone, ZonedTarget, assign_zones

CLEARING_VERSION = 1

#: Statuses a bid can end the auction with.
BID_STATUSES = ("accepted", "partial", "rejected")

#: Why a bid was rejected (or, for "pass-through", why it skipped the
#: auction): "priced-out" = below the supply ramp, "lumpy" = the partial
#: quantity at the intersection is below the bid's minimum energy,
#: "no-supply" = the slice has no supply, "pass-through" = non-consuming
#: (production) offers are admitted outside the market.
BID_REASONS = ("", "priced-out", "lumpy", "no-supply", "pass-through")


# --------------------------------------------------------------------- #
# Result model
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class BidOutcome:
    """Final disposition of one bid after both clearing passes."""

    offer_id: str
    home_zone: str
    zone: str
    slice_index: int
    status: str
    reason: str
    price: float
    quantity_kwh: float
    payment_eur: float
    valuation_eur: float

    @property
    def cleared(self) -> bool:
        return self.status != "rejected"

    @property
    def migrated(self) -> bool:
        """True when the spill pass moved the bid to an adjacent zone."""
        return self.zone != self.home_zone

    def to_dict(self) -> dict:
        return {
            "offer": self.offer_id,
            "home_zone": self.home_zone,
            "zone": self.zone,
            "slice": self.slice_index,
            "status": self.status,
            "reason": self.reason,
            "price": self.price,
            "quantity_kwh": self.quantity_kwh,
            "payment_eur": self.payment_eur,
            "valuation_eur": self.valuation_eur,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BidOutcome":
        return cls(
            offer_id=data["offer"],
            home_zone=data["home_zone"],
            zone=data["zone"],
            slice_index=int(data["slice"]),
            status=data["status"],
            reason=data["reason"],
            price=float(data["price"]),
            quantity_kwh=float(data["quantity_kwh"]),
            payment_eur=float(data["payment_eur"]),
            valuation_eur=float(data["valuation_eur"]),
        )


@dataclass(frozen=True, slots=True)
class ZoneClearing:
    """One zone's auction outcome across all market slices.

    ``outcomes`` holds every bid whose final disposition is in this zone:
    home bids that were accepted or rejected here, plus bids migrated in by
    the spill pass (their ``home_zone`` differs).
    """

    zone: str
    price_floor: float
    price_cap: float
    slice_prices: tuple[float, ...]
    supply_kwh: tuple[float, ...]
    cleared_kwh: tuple[float, ...]
    outcomes: tuple[BidOutcome, ...]

    @property
    def revenue_eur(self) -> float:
        """Producer revenue: the sum of all payments settled in this zone."""
        return sum(o.payment_eur for o in self.outcomes)

    @property
    def consumer_surplus_eur(self) -> float:
        """Cleared bid-curve valuation minus payments."""
        return sum(o.valuation_eur - o.payment_eur for o in self.outcomes if o.cleared)

    @property
    def producer_surplus_eur(self) -> float:
        """Revenue above the supply ramp: ``sum_s p_s*Q_s - int_0^Q ramp``."""
        span = self.price_cap - self.price_floor
        total = 0.0
        for supply, cleared, price in zip(
            self.supply_kwh, self.cleared_kwh, self.slice_prices
        ):
            if supply <= 0.0 or cleared <= 0.0:
                continue
            slope = span / supply
            cost = self.price_floor * cleared + 0.5 * slope * cleared * cleared
            total += price * cleared - cost
        return total

    @property
    def welfare_eur(self) -> float:
        return self.consumer_surplus_eur + self.producer_surplus_eur

    def to_dict(self) -> dict:
        return {
            "zone": self.zone,
            "price_floor": self.price_floor,
            "price_cap": self.price_cap,
            "slice_prices": list(self.slice_prices),
            "supply_kwh": list(self.supply_kwh),
            "cleared_kwh": list(self.cleared_kwh),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ZoneClearing":
        return cls(
            zone=data["zone"],
            price_floor=float(data["price_floor"]),
            price_cap=float(data["price_cap"]),
            slice_prices=tuple(float(p) for p in data["slice_prices"]),
            supply_kwh=tuple(float(s) for s in data["supply_kwh"]),
            cleared_kwh=tuple(float(c) for c in data["cleared_kwh"]),
            outcomes=tuple(BidOutcome.from_dict(o) for o in data["outcomes"]),
        )


@dataclass(frozen=True, slots=True)
class ClearingResult:
    """The full market outcome: one :class:`ZoneClearing` per zone."""

    zones: tuple[ZoneClearing, ...]
    slices: int
    coupling_kwh: float
    engine: str

    @property
    def outcomes(self) -> tuple[BidOutcome, ...]:
        return tuple(o for zone in self.zones for o in zone.outcomes)

    def by_offer(self) -> dict[str, BidOutcome]:
        return {o.offer_id: o for o in self.outcomes}

    @property
    def accepted(self) -> tuple[BidOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "accepted")

    @property
    def partial(self) -> tuple[BidOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "partial")

    @property
    def rejected(self) -> tuple[BidOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "rejected")

    @property
    def migrated(self) -> tuple[BidOutcome, ...]:
        return tuple(o for o in self.outcomes if o.migrated)

    @property
    def revenue_eur(self) -> float:
        return sum(zone.revenue_eur for zone in self.zones)

    @property
    def payments_eur(self) -> float:
        """Consumer payments; equals :attr:`revenue_eur` by construction."""
        return sum(o.payment_eur for o in self.outcomes)

    @property
    def consumer_surplus_eur(self) -> float:
        return sum(zone.consumer_surplus_eur for zone in self.zones)

    @property
    def producer_surplus_eur(self) -> float:
        return sum(zone.producer_surplus_eur for zone in self.zones)

    @property
    def welfare_eur(self) -> float:
        return self.consumer_surplus_eur + self.producer_surplus_eur

    @property
    def cleared_kwh(self) -> float:
        return sum(sum(zone.cleared_kwh) for zone in self.zones)

    def summary(self) -> dict:
        return {
            "market_bids": len(self.outcomes),
            "market_accepted": len(self.accepted),
            "market_partial": len(self.partial),
            "market_rejected": len(self.rejected),
            "market_migrated": len(self.migrated),
            "market_cleared_kwh": self.cleared_kwh,
            "market_revenue_eur": self.revenue_eur,
            "market_consumer_surplus_eur": self.consumer_surplus_eur,
            "market_producer_surplus_eur": self.producer_surplus_eur,
            "market_welfare_eur": self.welfare_eur,
        }

    def table_rows(self) -> list[dict]:
        """Per-zone clearing table for the CLI (floats rounded to 4)."""
        rows = []
        for zone in self.zones:
            cleared = [o for o in zone.outcomes if o.cleared]
            rows.append(
                {
                    "zone": zone.zone,
                    "bids": len(zone.outcomes),
                    "accepted": sum(1 for o in cleared if o.status == "accepted"),
                    "partial": sum(1 for o in cleared if o.status == "partial"),
                    "rejected": len(zone.outcomes) - len(cleared),
                    "migrated_in": sum(1 for o in zone.outcomes if o.migrated),
                    "price_eur": round(
                        sum(zone.slice_prices) / len(zone.slice_prices), 4
                    ),
                    "cleared_kwh": round(sum(zone.cleared_kwh), 4),
                    "revenue_eur": round(zone.revenue_eur, 4),
                    "welfare_eur": round(zone.welfare_eur, 4),
                }
            )
        return rows

    def to_dict(self) -> dict:
        return {
            "version": CLEARING_VERSION,
            "slices": self.slices,
            "coupling_kwh": self.coupling_kwh,
            "engine": self.engine,
            "zones": [zone.to_dict() for zone in self.zones],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClearingResult":
        version = data.get("version", CLEARING_VERSION)
        if version != CLEARING_VERSION:
            raise MarketError(f"unsupported clearing version {version!r}")
        return cls(
            zones=tuple(ZoneClearing.from_dict(z) for z in data["zones"]),
            slices=int(data["slices"]),
            coupling_kwh=float(data["coupling_kwh"]),
            engine=data["engine"],
        )


# --------------------------------------------------------------------- #
# Shared preparation and decision arithmetic
# --------------------------------------------------------------------- #


def _slice_bounds(length: int, n_slices: int) -> list[int]:
    """Interval boundaries of ``n_slices`` near-uniform market slices."""
    if n_slices > length:
        raise MarketError(
            f"market slices ({n_slices}) exceed target intervals ({length})"
        )
    return [(s * length) // n_slices for s in range(n_slices)] + [length]


def _zone_supplies(zone: MarketZone, bounds: list[int]) -> np.ndarray:
    """Supply (kWh) per market slice from the zone's target profile."""
    values = np.maximum(np.asarray(zone.target.values, dtype=np.float64), 0.0)
    return np.add.reduceat(values, np.asarray(bounds[:-1], dtype=np.intp))


def _attribute_slice(offer, zone: MarketZone, bounds: list[int]) -> int:
    """Market slice holding the offer's earliest start on the zone's axis."""
    axis = zone.target.axis
    res_us = int(axis.resolution.total_seconds() * 1_000_000)
    delta_us = round((offer.earliest_start - axis.start).total_seconds() * 1_000_000)
    index = min(max(delta_us // res_us, 0), axis.length - 1)
    return bisect_right(bounds, index) - 1


def _supply_price(floor: float, slope: float, cleared: float) -> float:
    """Uniform price on the linear supply ramp at ``cleared`` kWh."""
    return floor + slope * cleared


def _partial_quantity(
    price: float, floor: float, slope: float, cleared: float, supply: float
) -> float:
    """Quantity at which the bid meets the ramp, capped by remaining supply."""
    room = supply - cleared
    if slope <= 0.0:
        return room if price >= floor else 0.0
    return min(room, (price - floor) / slope - cleared)


def _build_zone_bids(
    zone: MarketZone,
    aggregates: Sequence[AggregatedFlexOffer],
    bounds: list[int],
) -> list[PricedBid]:
    """Reference bid derivation: one scalar :func:`price_offer` per offer."""
    bids = []
    for aggregate in aggregates:
        offer = aggregate.offer
        price, quantity, min_kwh, slice_prices = price_offer(
            offer, zone.price_floor, zone.price_cap
        )
        bids.append(
            PricedBid(
                offer=offer,
                zone=zone.name,
                slice_index=_attribute_slice(offer, zone, bounds),
                price=price,
                quantity_kwh=quantity,
                min_kwh=min_kwh,
                slice_prices=slice_prices,
            )
        )
    return bids


#: Field positions of the lightweight per-bid "row" tuples both engines hand
#: to the shared spill and finalize passes:
#: (offer_id, offer, slice_index, price, quantity_kwh, min_kwh).
_ROW_ID, _ROW_OFFER, _ROW_SLICE, _ROW_PRICE, _ROW_QTY, _ROW_MIN = range(6)


def _bid_rows(bids: Sequence[PricedBid]) -> list[tuple]:
    """Reference-path adapter: PricedBids -> shared row tuples."""
    return [
        (b.offer.offer_id, b.offer, b.slice_index, b.price, b.quantity_kwh, b.min_kwh)
        for b in bids
    ]


@dataclass(frozen=True)
class _ZoneStack:
    """One zone's bids in array form, straight off the batched derivation.

    The vectorized engine never materialises :class:`PricedBid` objects:
    pass 1 runs on these arrays, valuations come from the closed-form
    ``curve_eur`` column, and the shared spill/finalize passes consume the
    ``rows`` tuples (plain-Python scalars, bitwise equal to the reference
    path's bid fields via :func:`price_offers_batched`).
    """

    rows: list[tuple]
    ids: list[str]
    prices: np.ndarray
    quantities: np.ndarray
    min_kwh: np.ndarray
    slice_indices: np.ndarray
    batched: BatchedBids


def _attribute_slices_batched(
    offers: Sequence, zone: MarketZone, bounds: list[int]
) -> np.ndarray:
    """Vectorized :func:`_attribute_slice`: same clip/bisect per offer."""
    axis = zone.target.axis
    res_us = int(axis.resolution.total_seconds() * 1_000_000)
    start = axis.start
    deltas = np.fromiter(
        (
            round((offer.earliest_start - start).total_seconds() * 1_000_000)
            for offer in offers
        ),
        dtype=np.int64,
        count=len(offers),
    )
    indices = np.clip(deltas // res_us, 0, axis.length - 1)
    return np.searchsorted(np.asarray(bounds, dtype=np.int64), indices, side="right") - 1


def _build_zone_stack(
    zone: MarketZone,
    aggregates: Sequence[AggregatedFlexOffer],
    bounds: list[int],
) -> _ZoneStack:
    """Vectorized bid derivation via :func:`price_offers_batched` — bitwise
    equal to the reference's per-offer :func:`price_offer` loop."""
    offers = [aggregate.offer for aggregate in aggregates]
    batched = price_offers_batched(
        offers,
        zone.price_floor,
        zone.price_cap,
        profile_arrays=[aggregate.profile_bounds_arrays for aggregate in aggregates],
    )
    slice_indices = _attribute_slices_batched(offers, zone, bounds)
    ids = [offer.offer_id for offer in offers]
    rows = list(
        zip(
            ids,
            offers,
            slice_indices.tolist(),
            batched.prices.tolist(),
            batched.quantities.tolist(),
            batched.min_kwh.tolist(),
        )
    )
    return _ZoneStack(
        rows=rows,
        ids=ids,
        prices=batched.prices,
        quantities=batched.quantities,
        min_kwh=batched.min_kwh,
        slice_indices=slice_indices,
        batched=batched,
    )


def _merit_key(row: tuple) -> tuple[float, str]:
    return (-row[_ROW_PRICE], row[_ROW_ID])


# --------------------------------------------------------------------- #
# Pass 1 engines
# --------------------------------------------------------------------- #
#
# Both produce the identical intermediate state:
#   decisions: offer_id -> (status, reason, quantity)
#   state:     (zone_idx, slice_idx) -> [cleared_kwh, min_accepted_price]
#   valuations: offer_id -> full bid-curve valuation (engine arithmetic)


def _valuations_reference(bids: Iterable[PricedBid]) -> dict[str, float]:
    """Integrate each bid curve interval by interval, scalar Python."""
    valuations: dict[str, float] = {}
    for bid in bids:
        expansion = bid.offer.slice_expansion()
        total = 0.0
        k = 0
        for price, profile_slice in zip(bid.slice_prices, bid.offer.slices):
            for _ in range(profile_slice.duration):
                high = expansion[k][1]
                if high > 0.0:
                    total += high * price
                k += 1
        valuations[bid.offer.offer_id] = total
    return valuations


def _valuations_vectorized(stacks: Sequence["_ZoneStack"]) -> dict[str, float]:
    """Closed-form bid-curve integrals off the batched derivation.

    The bid price is constant within a profile slice, so the reference's
    per-interval sum telescopes to ``sum(demanded * slice_price)`` — the
    ``curve_eur`` column :func:`price_offers_batched` already computed
    (welfare input only, reconciled at ``rtol=1e-9``).
    """
    valuations: dict[str, float] = {}
    for stack in stacks:
        valuations.update(zip(stack.ids, stack.batched.curve_eur.tolist()))
    return valuations


def _clear_pass1_reference(
    zones: Sequence[MarketZone],
    rows_by_zone: Sequence[Sequence[tuple]],
    supplies_by_zone: Sequence[np.ndarray],
    n_slices: int,
) -> tuple[dict, dict]:
    decisions: dict[str, tuple[str, str, float]] = {}
    state: dict[tuple[int, int], list] = {}
    for zone_idx, zone in enumerate(zones):
        floor, cap = zone.price_floor, zone.price_cap
        supplies = supplies_by_zone[zone_idx]
        per_slice: dict[int, list[tuple]] = {}
        for row in rows_by_zone[zone_idx]:
            if row[_ROW_QTY] <= 0.0:
                decisions[row[_ROW_ID]] = ("accepted", "pass-through", 0.0)
                continue
            per_slice.setdefault(row[_ROW_SLICE], []).append(row)
        for slice_idx in range(n_slices):
            supply = float(supplies[slice_idx])
            merit = sorted(per_slice.get(slice_idx, ()), key=_merit_key)
            cleared = 0.0
            min_accepted: float | None = None
            if supply <= 0.0:
                for row in merit:
                    decisions[row[_ROW_ID]] = ("rejected", "no-supply", 0.0)
                state[(zone_idx, slice_idx)] = [cleared, min_accepted]
                continue
            slope = (cap - floor) / supply
            market_open = True
            for row in merit:
                offer_id = row[_ROW_ID]
                price, quantity_kwh = row[_ROW_PRICE], row[_ROW_QTY]
                if not market_open:
                    decisions[offer_id] = ("rejected", "priced-out", 0.0)
                    continue
                total = cleared + quantity_kwh
                threshold = _supply_price(floor, slope, total)
                if price >= threshold and total <= supply:
                    decisions[offer_id] = ("accepted", "", quantity_kwh)
                    cleared = total
                    min_accepted = price
                    continue
                quantity = _partial_quantity(price, floor, slope, cleared, supply)
                if quantity > 0.0 and quantity >= row[_ROW_MIN]:
                    decisions[offer_id] = ("partial", "", quantity)
                    cleared = cleared + quantity
                    min_accepted = price
                else:
                    reason = "lumpy" if quantity > 0.0 else "priced-out"
                    decisions[offer_id] = ("rejected", reason, 0.0)
                market_open = False
            state[(zone_idx, slice_idx)] = [cleared, min_accepted]
    return decisions, state


def _clear_pass1_vectorized(
    zones: Sequence[MarketZone],
    stacks: Sequence["_ZoneStack"],
    supplies_by_zone: Sequence[np.ndarray],
    n_slices: int,
) -> tuple[dict, dict]:
    decisions: dict[str, tuple[str, str, float]] = {}
    state: dict[tuple[int, int], list] = {}
    for zone_idx, zone in enumerate(zones):
        floor, cap = zone.price_floor, zone.price_cap
        supplies = supplies_by_zone[zone_idx]
        stack = stacks[zone_idx]
        consuming = stack.quantities > 0.0
        ids = stack.ids
        for j in np.nonzero(~consuming)[0]:
            decisions[ids[j]] = ("accepted", "pass-through", 0.0)
        market = np.nonzero(consuming)[0]
        prices = stack.prices[market]
        quantities = stack.quantities[market]
        slice_indices = stack.slice_indices[market]
        if market.size:
            market_ids = np.array([ids[j] for j in market])
            order = np.lexsort((market_ids, -prices, slice_indices))
        else:
            order = np.empty(0, dtype=np.intp)
        sorted_slices = slice_indices[order]
        segment_edges = np.searchsorted(
            sorted_slices, np.arange(n_slices + 1), side="left"
        )
        quantity_list = quantities.tolist()
        price_list = prices.tolist()
        for slice_idx in range(n_slices):
            lo, hi = int(segment_edges[slice_idx]), int(segment_edges[slice_idx + 1])
            segment = order[lo:hi]
            supply = float(supplies[slice_idx])
            cleared = 0.0
            min_accepted: float | None = None
            if lo == hi:
                state[(zone_idx, slice_idx)] = [cleared, min_accepted]
                continue
            if supply <= 0.0:
                for j in segment:
                    decisions[ids[market[j]]] = ("rejected", "no-supply", 0.0)
                state[(zone_idx, slice_idx)] = [cleared, min_accepted]
                continue
            slope = (cap - floor) / supply
            seg_prices = prices[segment]
            seg_quantities = quantities[segment]
            # np.cumsum is strictly sequential, so these running totals are
            # bitwise equal to the reference walk's scalar accumulation.
            running = np.cumsum(seg_quantities)
            thresholds = floor + slope * running
            full_accept = (seg_prices >= thresholds) & (running <= supply)
            if bool(full_accept.all()):
                boundary = len(segment)
            else:
                boundary = int(np.argmax(~full_accept))
            for j in segment[:boundary].tolist():
                decisions[ids[market[j]]] = ("accepted", "", quantity_list[j])
            if boundary:
                cleared = float(running[boundary - 1])
                min_accepted = float(seg_prices[boundary - 1])
            if boundary < len(segment):
                marginal = int(segment[boundary])
                price = price_list[marginal]
                quantity = _partial_quantity(price, floor, slope, cleared, supply)
                if quantity > 0.0 and quantity >= float(stack.min_kwh[market[marginal]]):
                    decisions[ids[market[marginal]]] = ("partial", "", quantity)
                    cleared = cleared + quantity
                    min_accepted = price
                else:
                    reason = "lumpy" if quantity > 0.0 else "priced-out"
                    decisions[ids[market[marginal]]] = ("rejected", reason, 0.0)
                for j in segment[boundary + 1 :].tolist():
                    decisions[ids[market[j]]] = ("rejected", "priced-out", 0.0)
            state[(zone_idx, slice_idx)] = [cleared, min_accepted]
    return decisions, state


# --------------------------------------------------------------------- #
# Pass 2: cross-zone spill (shared between engines, like greedy's
# _pick_best — a small exact tail on top of the engine-specific pass 1)
# --------------------------------------------------------------------- #


def _spill_pass(
    zones: Sequence[MarketZone],
    rows_by_zone: Sequence[Sequence[tuple]],
    bounds_by_zone: Sequence[list[int]],
    supplies_by_zone: Sequence[np.ndarray],
    decisions: dict,
    state: dict,
    coupling_kwh: float,
) -> dict[str, tuple[int, int, str, float]]:
    """Re-clear rejected bids in adjacent zones through bounded couplings.

    Returns ``offer_id -> (zone_idx, slice_idx, status, quantity)`` for
    migrated bids and advances ``state`` in place.  Imports never push a
    slice price above its cheapest locally accepted bid, keeping pass-1
    settlements individually rational.
    """
    migrations: dict[str, tuple[int, int, str, float]] = {}
    if coupling_kwh <= 0.0 or len(zones) < 2:
        return migrations
    rejected_pool: list[list[tuple]] = [
        [row for row in zone_rows if decisions[row[_ROW_ID]][0] == "rejected"]
        for zone_rows in rows_by_zone
    ]
    capacity: dict[tuple[int, int], float] = {}
    for target_idx, zone in enumerate(zones):
        floor, cap = zone.price_floor, zone.price_cap
        supplies = supplies_by_zone[target_idx]
        bounds = bounds_by_zone[target_idx]
        arrivals: list[tuple[int, tuple]] = []
        for source_idx in (target_idx - 1, target_idx + 1):
            if 0 <= source_idx < len(zones):
                arrivals.extend(
                    (source_idx, row)
                    for row in rejected_pool[source_idx]
                    if row[_ROW_ID] not in migrations
                )
        arrivals.sort(key=lambda pair: _merit_key(pair[1]))
        for source_idx, row in arrivals:
            edge = (source_idx, target_idx)
            remaining = capacity.setdefault(edge, coupling_kwh)
            if remaining <= 0.0:
                continue
            price, quantity_kwh = row[_ROW_PRICE], row[_ROW_QTY]
            slice_idx = _attribute_slice(row[_ROW_OFFER], zone, bounds)
            supply = float(supplies[slice_idx])
            if supply <= 0.0:
                continue
            slope = (cap - floor) / supply
            cleared, min_accepted = state[(target_idx, slice_idx)]
            # Imports may not lift the price past the cheapest pass-1 local
            # acceptance (individual rationality of settled bids).
            effective_supply = supply
            if min_accepted is not None and slope > 0.0:
                effective_supply = min(supply, (min_accepted - floor) / slope)
            total = cleared + quantity_kwh
            threshold = _supply_price(floor, slope, total)
            if (
                price >= threshold
                and total <= effective_supply
                and quantity_kwh <= remaining
            ):
                quantity = quantity_kwh
                status = "accepted"
            else:
                quantity = min(
                    _partial_quantity(price, floor, slope, cleared, effective_supply),
                    remaining,
                )
                if quantity <= 0.0 or quantity < row[_ROW_MIN]:
                    continue
                status = "partial"
            migrations[row[_ROW_ID]] = (target_idx, slice_idx, status, quantity)
            capacity[edge] = remaining - quantity
            state[(target_idx, slice_idx)][0] = cleared + quantity
    return migrations


# --------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------- #


def clear_zones(
    aggregates: Sequence[AggregatedFlexOffer],
    zoned: ZonedTarget,
    config: MarketConfig | None = None,
) -> ClearingResult:
    """Run merit-order clearing for every zone of a zoned target.

    Bids are derived from the aggregates routed to each zone (same
    ``assign_zones`` policy as placement), cleared per market slice, then
    rejected bids spill to adjacent zones when ``config.coupling_kwh > 0``.
    """
    config = config if config is not None else MarketConfig()
    unpriced = [zone.name for zone in zoned.zones if not zone.priced]
    if unpriced:
        raise MarketError(
            f"cannot clear unpriced zones: {', '.join(sorted(unpriced))}"
        )
    buckets = assign_zones(aggregates, zoned)
    zones = zoned.zones
    bounds_by_zone = [
        _slice_bounds(zone.target.axis.length, config.slices) for zone in zones
    ]
    supplies_by_zone = [
        _zone_supplies(zone, bounds) for zone, bounds in zip(zones, bounds_by_zone)
    ]
    if config.engine == "reference":
        bids_by_zone = [
            _build_zone_bids(zone, buckets.get(zone.name, []), bounds)
            for zone, bounds in zip(zones, bounds_by_zone)
        ]
        rows_by_zone = [_bid_rows(zone_bids) for zone_bids in bids_by_zone]
        decisions, state = _clear_pass1_reference(
            zones, rows_by_zone, supplies_by_zone, config.slices
        )
        valuations = _valuations_reference(
            bid for zone_bids in bids_by_zone for bid in zone_bids
        )
    else:
        stacks = [
            _build_zone_stack(zone, buckets.get(zone.name, []), bounds)
            for zone, bounds in zip(zones, bounds_by_zone)
        ]
        rows_by_zone = [stack.rows for stack in stacks]
        decisions, state = _clear_pass1_vectorized(
            zones, stacks, supplies_by_zone, config.slices
        )
        valuations = _valuations_vectorized(stacks)
    migrations = _spill_pass(
        zones,
        rows_by_zone,
        bounds_by_zone,
        supplies_by_zone,
        decisions,
        state,
        config.coupling_kwh,
    )
    return _finalize(
        zones,
        rows_by_zone,
        supplies_by_zone,
        decisions,
        state,
        migrations,
        valuations,
        config,
    )


def _finalize(
    zones: Sequence[MarketZone],
    rows_by_zone: Sequence[Sequence[tuple]],
    supplies_by_zone: Sequence[np.ndarray],
    decisions: dict,
    state: dict,
    migrations: dict,
    valuations: dict,
    config: MarketConfig,
) -> ClearingResult:
    prices: dict[tuple[int, int], float] = {}
    for zone_idx, zone in enumerate(zones):
        supplies = supplies_by_zone[zone_idx]
        for slice_idx in range(config.slices):
            supply = float(supplies[slice_idx])
            if supply <= 0.0:
                prices[(zone_idx, slice_idx)] = zone.price_cap
                continue
            slope = (zone.price_cap - zone.price_floor) / supply
            cleared = state[(zone_idx, slice_idx)][0]
            prices[(zone_idx, slice_idx)] = _supply_price(
                zone.price_floor, slope, cleared
            )

    def outcome_for(
        row: tuple, home_zone: str, zone_idx: int, slice_idx: int, status: str,
        reason: str, quantity: float,
    ) -> BidOutcome:
        cleared = status != "rejected"
        price = prices[(zone_idx, slice_idx)]
        payment = quantity * price if cleared else 0.0
        valuation = 0.0
        if cleared and row[_ROW_QTY] > 0.0 and quantity > 0.0:
            valuation = valuations[row[_ROW_ID]] * (quantity / row[_ROW_QTY])
        return BidOutcome(
            offer_id=row[_ROW_ID],
            home_zone=home_zone,
            zone=zones[zone_idx].name,
            slice_index=slice_idx,
            status=status,
            reason=reason,
            price=row[_ROW_PRICE],
            quantity_kwh=quantity,
            payment_eur=payment,
            valuation_eur=valuation,
        )

    per_zone_outcomes: list[list[BidOutcome]] = [[] for _ in zones]
    for zone_idx, zone_rows in enumerate(rows_by_zone):
        home_zone = zones[zone_idx].name
        for row in zone_rows:
            offer_id = row[_ROW_ID]
            if offer_id in migrations:
                target_idx, slice_idx, status, quantity = migrations[offer_id]
                per_zone_outcomes[target_idx].append(
                    outcome_for(
                        row, home_zone, target_idx, slice_idx, status, "", quantity
                    )
                )
                continue
            status, reason, quantity = decisions[offer_id]
            per_zone_outcomes[zone_idx].append(
                outcome_for(
                    row, home_zone, zone_idx, row[_ROW_SLICE], status, reason, quantity
                )
            )
    zone_clearings = []
    for zone_idx, zone in enumerate(zones):
        outcomes = sorted(
            per_zone_outcomes[zone_idx],
            key=lambda o: (o.slice_index, -o.price, o.offer_id),
        )
        zone_clearings.append(
            ZoneClearing(
                zone=zone.name,
                price_floor=zone.price_floor,
                price_cap=zone.price_cap,
                slice_prices=tuple(
                    prices[(zone_idx, s)] for s in range(config.slices)
                ),
                supply_kwh=tuple(
                    float(v) for v in supplies_by_zone[zone_idx][: config.slices]
                ),
                cleared_kwh=tuple(
                    state[(zone_idx, s)][0] for s in range(config.slices)
                ),
                outcomes=tuple(outcomes),
            )
        )
    return ClearingResult(
        zones=tuple(zone_clearings),
        slices=config.slices,
        coupling_kwh=config.coupling_kwh,
        engine=config.engine,
    )

"""Fleet-scale batched pipeline engine (simulate → extract → aggregate).

The MIRABEL deployment unit is a *fleet* of metered households, not a
single series.  This subsystem runs the extraction stages as chunked
batches over whole fleets, with optional multiprocessing fan-out,
per-stage wall-clock capture, an optional market-facing schedule stage
(single-target or zone-sharded via
:class:`~repro.scheduling.zones.ZonedTarget`), and a benchmark harness
that guards the batched-equals-sequential contract and the speedup
baseline (``BENCH_fleet.json``).

Subsystem contract:

* **Batched ≡ sequential, exactly** — chunk sizes and worker counts never
  change results, offer ids included (:func:`results_identical`); ids are
  minted in per-household :func:`~repro.flexoffer.model.offer_id_scope`
  namespaces and offers are stamped with their household's consumer id.
* **Stage accounting** — every run captures per-stage wall clock
  (:data:`STAGES`); fan-outs additionally record coordinator wall time.
* **Equivalence oracle kept** — :func:`run_sequential` is the seed-shaped
  loop the engine must reproduce, exercised by the property tests, the
  benchmark and the conformance matrix on every run.
"""

from repro.pipeline.dispatch import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    backoff_seconds,
    dispatch_chunks,
)
from repro.pipeline.bench import (
    FIDELITY_RTOL,
    SCALE_FANOUT_MIN_SPEEDUP,
    SCALE_SIZES,
    run_fleet_benchmark,
    run_scale_benchmark,
    scale_offer_stream,
    scale_table_rows,
    stage_table_rows,
)
from repro.pipeline.fleet import (
    SEED_STRIDE,
    STAGES,
    FleetPipeline,
    FleetResult,
    HouseholdOutput,
    StageTimings,
    canonical_offer,
    fleet_schedule_target,
    fleet_zoned_target,
    offers_equivalent,
    results_identical,
    run_sequential,
    schedule_aggregates,
)
from repro.pipeline.sharedmem import (
    SEGMENT_PREFIX,
    SharedArraySpec,
    SharedFleetBuffer,
    leaked_segments,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "backoff_seconds",
    "dispatch_chunks",
    "SEGMENT_PREFIX",
    "SharedArraySpec",
    "SharedFleetBuffer",
    "leaked_segments",
    "FIDELITY_RTOL",
    "SCALE_FANOUT_MIN_SPEEDUP",
    "SCALE_SIZES",
    "run_fleet_benchmark",
    "run_scale_benchmark",
    "scale_offer_stream",
    "scale_table_rows",
    "stage_table_rows",
    "SEED_STRIDE",
    "STAGES",
    "FleetPipeline",
    "FleetResult",
    "HouseholdOutput",
    "StageTimings",
    "canonical_offer",
    "fleet_schedule_target",
    "fleet_zoned_target",
    "offers_equivalent",
    "results_identical",
    "run_sequential",
    "schedule_aggregates",
]

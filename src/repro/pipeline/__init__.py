"""Fleet-scale batched pipeline engine (simulate → extract → aggregate).

The MIRABEL deployment unit is a *fleet* of metered households, not a
single series.  This subsystem runs the extraction stages as chunked
batches over whole fleets, with optional multiprocessing fan-out,
per-stage wall-clock capture, and a benchmark harness that guards the
batched-equals-sequential contract and the speedup baseline
(``BENCH_fleet.json``).
"""

from repro.pipeline.bench import FIDELITY_RTOL, run_fleet_benchmark, stage_table_rows
from repro.pipeline.fleet import (
    SEED_STRIDE,
    STAGES,
    FleetPipeline,
    FleetResult,
    HouseholdOutput,
    StageTimings,
    canonical_offer,
    offers_equivalent,
    results_identical,
    run_sequential,
    schedule_aggregates,
)

__all__ = [
    "FIDELITY_RTOL",
    "run_fleet_benchmark",
    "stage_table_rows",
    "SEED_STRIDE",
    "STAGES",
    "FleetPipeline",
    "FleetResult",
    "HouseholdOutput",
    "StageTimings",
    "canonical_offer",
    "offers_equivalent",
    "results_identical",
    "run_sequential",
    "schedule_aggregates",
]

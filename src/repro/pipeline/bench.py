"""The fleet-pipeline benchmark: batched engine vs the sequential loop.

Measures the 20-household × 7-day workload (configurable) over the full
extract→aggregate→schedule loop (the schedule stage places the fleet
aggregates on a deterministic wind target) three ways:

* **baseline** — the seed-shaped sequential per-household loop running the
  ``engine="reference"`` matcher and scheduler (the original
  implementations, kept for exactly this purpose);
* **pipeline** — :class:`repro.pipeline.FleetPipeline` over the vectorized
  engines, with per-stage wall-clock capture;
* **equivalence** — the batched result must equal the sequential run of
  the same engines exactly (offer ids and schedule placements included),
  and must match the reference engine's offers within a small relative
  tolerance (FFT vs direct correlation round-off).

The resulting report is written to ``BENCH_fleet.json`` so the repository
carries a refreshable speedup baseline; re-run via ``repro bench`` or
``pytest benchmarks/bench_fleet_pipeline.py``.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.api.registry import create_extractor
from repro.pipeline.fleet import (
    FleetPipeline,
    FleetResult,
    fleet_schedule_target,
    offers_equivalent,
    results_identical,
    run_sequential,
)
from repro.scheduling.greedy import ScheduleConfig
from repro.simulation.dataset import generate_fleet
from repro.workloads.scenarios import SCENARIO_START

#: Relative tolerance for reference-vs-vectorized offer energies.  The two
#: engines differ only in float round-off (FFT vs direct correlation).
FIDELITY_RTOL = 1e-9


def run_fleet_benchmark(
    n_households: int = 20,
    days: int = 7,
    seed: int = 13,
    workers: int | None = None,
    chunk_size: int = 8,
    out_path: Path | str | None = None,
) -> tuple[dict, FleetResult]:
    """Run the fleet benchmark; returns the report dict and timed result.

    When ``out_path`` is given the report is also written there as JSON
    (the repository's ``BENCH_fleet.json`` baseline).
    """
    t0 = time.perf_counter()
    fleet = generate_fleet(n_households, SCENARIO_START, days, seed=seed)
    simulate_seconds = time.perf_counter() - t0
    target = fleet_schedule_target(fleet, seed=seed)

    vectorized = create_extractor("frequency-based", engine="vectorized")
    reference = create_extractor("frequency-based", engine="reference")
    schedule_vectorized = ScheduleConfig(engine="vectorized")
    schedule_reference = ScheduleConfig(engine="reference")

    # Equivalence pass first: it doubles as a warm-up (template caches,
    # numpy/scipy imports) so neither timed run pays one-off costs.
    sequential_vectorized = run_sequential(
        fleet, vectorized, target=target, schedule_config=schedule_vectorized
    )
    pipeline = FleetPipeline(
        vectorized, chunk_size=chunk_size, workers=workers, schedule=schedule_vectorized
    )
    pipeline_result = pipeline.run(fleet, target=target)
    batched_equals_sequential = results_identical(
        pipeline_result, sequential_vectorized
    )

    # Timed baseline: the sequential per-household loop on the reference
    # engines (matching and scheduling) — the seed's execution shape.
    t0 = time.perf_counter()
    baseline_result = run_sequential(
        fleet, reference, target=target, schedule_config=schedule_reference
    )
    baseline_seconds = time.perf_counter() - t0

    # Timed batched run (fresh pipeline object; caches stay warm, as they
    # would across fleets in a long-lived service).
    t0 = time.perf_counter()
    timed_result = FleetPipeline(
        vectorized, chunk_size=chunk_size, workers=workers, schedule=schedule_vectorized
    ).run(fleet, target=target)
    pipeline_seconds = time.perf_counter() - t0

    reference_matches = offers_equivalent(
        baseline_result.offers, timed_result.offers, rtol=FIDELITY_RTOL
    )
    speedup = baseline_seconds / pipeline_seconds if pipeline_seconds > 0 else float("inf")

    report = {
        "workload": {
            "households": n_households,
            "days": days,
            "seed": seed,
            "extractor": vectorized.name,
            "chunk_size": chunk_size,
            "workers": workers,
        },
        "simulate_seconds": round(simulate_seconds, 4),
        "baseline": {
            "engine": "reference",
            "shape": "sequential per-household loop",
            "wall_seconds": round(baseline_seconds, 4),
            "offers": len(baseline_result.offers),
        },
        "pipeline": {
            "engine": "vectorized",
            "shape": "FleetPipeline (chunked batches)",
            "wall_seconds": round(pipeline_seconds, 4),
            "stages": {
                stage: round(seconds, 4)
                for stage, seconds in timed_result.timings.seconds.items()
            },
            "offers": len(timed_result.offers),
            "aggregates": len(timed_result.aggregates),
            "extracted_kwh": round(timed_result.total_extracted_kwh, 6),
        },
        "schedule": {
            "target_kwh": round(target.total(), 6),
            "placed": len(timed_result.schedule.schedules),
            "unplaced": len(timed_result.schedule.unplaced),
            "cost": round(timed_result.schedule.cost, 6),
            "improvement": round(timed_result.schedule.improvement, 6),
        },
        "speedup": round(speedup, 2),
        "equivalence": {
            "batched_equals_sequential": batched_equals_sequential,
            "reference_matches_vectorized": reference_matches,
            "fidelity_rtol": FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, timed_result


def stage_table_rows(report: dict, result: FleetResult) -> list[dict]:
    """Human-readable rows for the CLI/bench stage table."""
    rows = result.timings.rows()
    rows.append(
        {
            "stage": "TOTAL (pipeline wall)",
            "seconds": report["pipeline"]["wall_seconds"],
            "share": "100%",
        }
    )
    rows.append(
        {
            "stage": "sequential reference loop",
            "seconds": report["baseline"]["wall_seconds"],
            "share": f"{report['speedup']}x slower",
        }
    )
    return rows

"""The fleet-pipeline benchmark: batched engine vs the sequential loop.

Measures the 20-household × 7-day workload (configurable) over the full
extract→aggregate→schedule loop (the schedule stage places the fleet
aggregates on a deterministic wind target) three ways:

* **baseline** — the seed-shaped sequential per-household loop running the
  ``engine="reference"`` matcher and scheduler (the original
  implementations, kept for exactly this purpose);
* **pipeline** — :class:`repro.pipeline.FleetPipeline` over the vectorized
  engines, with per-stage wall-clock capture;
* **equivalence** — the batched result must equal the sequential run of
  the same engines exactly (offer ids and schedule placements included),
  and must match the reference engine's offers within a small relative
  tolerance (FFT vs direct correlation round-off).

The resulting report is written to ``BENCH_fleet.json`` so the repository
carries a refreshable speedup baseline; re-run via ``repro bench`` or
``pytest benchmarks/bench_fleet_pipeline.py``.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.api.registry import create_extractor
from repro.pipeline.fleet import (
    FleetPipeline,
    FleetResult,
    fleet_schedule_target,
    offers_equivalent,
    results_identical,
    run_sequential,
)
from repro.scheduling.greedy import ScheduleConfig
from repro.simulation.dataset import generate_fleet
from repro.workloads.scenarios import SCENARIO_START

#: Relative tolerance for reference-vs-vectorized offer energies.  The two
#: engines differ only in float round-off (FFT vs direct correlation).
FIDELITY_RTOL = 1e-9


def run_fleet_benchmark(
    n_households: int = 20,
    days: int = 7,
    seed: int = 13,
    workers: int | None = None,
    chunk_size: int = 8,
    out_path: Path | str | None = None,
) -> tuple[dict, FleetResult]:
    """Run the fleet benchmark; returns the report dict and timed result.

    When ``out_path`` is given the report is also written there as JSON
    (the repository's ``BENCH_fleet.json`` baseline).
    """
    t0 = time.perf_counter()
    fleet = generate_fleet(n_households, SCENARIO_START, days, seed=seed)
    simulate_seconds = time.perf_counter() - t0
    target = fleet_schedule_target(fleet, seed=seed)

    vectorized = create_extractor("frequency-based", engine="vectorized")
    reference = create_extractor("frequency-based", engine="reference")
    schedule_vectorized = ScheduleConfig(engine="vectorized")
    schedule_reference = ScheduleConfig(engine="reference")

    # Equivalence pass first: it doubles as a warm-up (template caches,
    # numpy/scipy imports) so neither timed run pays one-off costs.
    sequential_vectorized = run_sequential(
        fleet, vectorized, target=target, schedule_config=schedule_vectorized
    )
    pipeline = FleetPipeline(
        vectorized, chunk_size=chunk_size, workers=workers, schedule=schedule_vectorized
    )
    pipeline_result = pipeline.run(fleet, target=target)
    batched_equals_sequential = results_identical(
        pipeline_result, sequential_vectorized
    )

    # Timed baseline: the sequential per-household loop on the reference
    # engines (matching and scheduling) — the seed's execution shape.
    t0 = time.perf_counter()
    baseline_result = run_sequential(
        fleet, reference, target=target, schedule_config=schedule_reference
    )
    baseline_seconds = time.perf_counter() - t0

    # Timed batched run (fresh pipeline object; caches stay warm, as they
    # would across fleets in a long-lived service).
    t0 = time.perf_counter()
    timed_result = FleetPipeline(
        vectorized, chunk_size=chunk_size, workers=workers, schedule=schedule_vectorized
    ).run(fleet, target=target)
    pipeline_seconds = time.perf_counter() - t0

    reference_matches = offers_equivalent(
        baseline_result.offers, timed_result.offers, rtol=FIDELITY_RTOL
    )
    speedup = baseline_seconds / pipeline_seconds if pipeline_seconds > 0 else float("inf")

    report = {
        "workload": {
            "households": n_households,
            "days": days,
            "seed": seed,
            "extractor": vectorized.name,
            "chunk_size": chunk_size,
            "workers": workers,
        },
        "simulate_seconds": round(simulate_seconds, 4),
        "baseline": {
            "engine": "reference",
            "shape": "sequential per-household loop",
            "wall_seconds": round(baseline_seconds, 4),
            "offers": len(baseline_result.offers),
        },
        "pipeline": {
            "engine": "vectorized",
            "shape": "FleetPipeline (chunked batches)",
            "wall_seconds": round(pipeline_seconds, 4),
            "stages": {
                stage: round(seconds, 4)
                for stage, seconds in timed_result.timings.seconds.items()
            },
            "offers": len(timed_result.offers),
            "aggregates": len(timed_result.aggregates),
            "extracted_kwh": round(timed_result.total_extracted_kwh, 6),
        },
        "schedule": {
            "target_kwh": round(target.total(), 6),
            "placed": len(timed_result.schedule.schedules),
            "unplaced": len(timed_result.schedule.unplaced),
            "cost": round(timed_result.schedule.cost, 6),
            "improvement": round(timed_result.schedule.improvement, 6),
        },
        "speedup": round(speedup, 2),
        "equivalence": {
            "batched_equals_sequential": batched_equals_sequential,
            "reference_matches_vectorized": reference_matches,
            "fidelity_rtol": FIDELITY_RTOL,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report, timed_result


def stage_table_rows(report: dict, result: FleetResult) -> list[dict]:
    """Human-readable rows for the CLI/bench stage table."""
    rows = result.timings.rows()
    rows.append(
        {
            "stage": "TOTAL (pipeline wall)",
            "seconds": report["pipeline"]["wall_seconds"],
            "share": "100%",
        }
    )
    rows.append(
        {
            "stage": "sequential reference loop",
            "seconds": report["baseline"]["wall_seconds"],
            "share": f"{report['speedup']}x slower",
        }
    )
    return rows


# ---------------------------------------------------------------------- #
# Scale benchmark: streaming aggregation + autotuned scheduling ladder
# ---------------------------------------------------------------------- #

#: The committed ``BENCH_scale.json`` ladder: throughput is measured at
#: each fleet size, in households/second over the full stream→aggregate→
#: schedule loop.
SCALE_SIZES = (1_000, 10_000, 100_000)

#: Fleet size of the shared-memory vs pickling dispatch comparison.
SCALE_FANOUT_HOUSEHOLDS = 10_000

#: The acceptance gate on that comparison: passing buffer names must beat
#: pickling the matrices by at least this factor.
SCALE_FANOUT_MIN_SPEEDUP = 2.0


def scale_offer_stream(count: int, axis, seed: int = 0):
    """A lazy stream of ``count`` synthetic household offers on ``axis``.

    One offer per household, the post-extraction shape the scale ladder
    feeds straight into :func:`~repro.aggregation.streaming.aggregate_stream`:
    profile spans of 3–8 intervals, start anchors uniform over the axis,
    start-time flexibility of 2–24 hours.  A generator, deliberately —
    offers are built one at a time and become garbage as soon as the
    aggregator folds them, which is what keeps the streaming path's peak
    memory O(chunk) however large ``count`` grows.
    """
    from repro.flexoffer.model import FlexOffer, ProfileSlice

    rng = np.random.default_rng(seed)
    spans = rng.integers(3, 9, size=count)
    anchors = rng.integers(0, max(1, axis.length - 16), size=count)
    flexes = rng.integers(8, 97, size=count)
    for index in range(count):
        earliest = axis.start + int(anchors[index]) * axis.resolution
        slices = tuple(
            ProfileSlice(float(level), float(level) * 1.8)
            for level in rng.uniform(0.2, 0.8, int(spans[index]))
        )
        yield FlexOffer(
            earliest_start=earliest,
            latest_start=earliest + int(flexes[index]) * axis.resolution,
            slices=slices,
            resolution=axis.resolution,
            offer_id=f"hh-{seed}-{index}",
        )


def _throughput_rung(households: int, days: int, seed: int) -> dict:
    """One ladder rung: stream → aggregate → autotuned schedule, timed."""
    from repro.aggregation.streaming import aggregate_stream
    from repro.scheduling.autotune import placement_density, resolve_engine
    from repro.scheduling.greedy import greedy_schedule
    from repro.simulation.res import simulate_wind_production
    from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis

    axis = TimeAxis(SCENARIO_START, FIFTEEN_MINUTES, 96 * days)
    begin = time.perf_counter()
    aggregates = list(
        aggregate_stream(
            scale_offer_stream(households, axis, seed=seed),
            epoch=axis.start,
            keep_members=False,
        )
    )
    aggregate_seconds = time.perf_counter() - begin

    offers = [aggregate.offer for aggregate in aggregates]
    target = simulate_wind_production(axis, np.random.default_rng(seed))
    config = resolve_engine(ScheduleConfig(engine="auto"), offers, axis)
    begin = time.perf_counter()
    result = greedy_schedule(offers, target, config=config)
    schedule_seconds = time.perf_counter() - begin

    total = aggregate_seconds + schedule_seconds
    return {
        "households": households,
        "aggregates": len(aggregates),
        "density": round(placement_density(offers, axis), 4),
        "engine_resolved": config.engine,
        "aggregate_seconds": round(aggregate_seconds, 4),
        "schedule_seconds": round(schedule_seconds, 4),
        "total_seconds": round(total, 4),
        "households_per_second": round(households / total, 1),
        "placed": len(result.schedules),
        "unplaced": len(result.unplaced),
    }


def _fanout_pickled_worker(rows: np.ndarray) -> float:
    """Pickling-path dispatch probe: the matrix slice crossed the boundary."""
    return float(rows.sum())


def _fanout_shared_worker(spec, lo: int, hi: int) -> float:
    """Shared-memory dispatch probe: only (name, shape, dtype, range) crossed."""
    from repro.pipeline.sharedmem import SharedFleetBuffer

    with SharedFleetBuffer.attach(spec) as buffer:
        return float(buffer.array[lo:hi].sum())


def _fanout_comparison(households: int, days: int, seed: int, repeats: int = 3) -> dict:
    """Shared-memory vs pickling worker dispatch on one fleet matrix.

    Times the *dispatch* of a ``households × intervals`` metered matrix to
    a worker pool with identical trivial per-chunk work, so the measured
    gap is serialization, the thing shared memory removes.  One warm pool
    serves both paths; best-of-``repeats`` per path, interleaved.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.pipeline.sharedmem import SharedFleetBuffer

    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.0, 2.0, size=(households, 96 * days))
    chunk = max(1, households // 16)
    bounds = [
        (lo, min(lo + chunk, households)) for lo in range(0, households, chunk)
    ]

    best_pickled = float("inf")
    best_shared = float("inf")
    with ProcessPoolExecutor(max_workers=2) as pool:
        list(pool.map(_fanout_pickled_worker, [matrix[:1]]))  # warm the pool
        with SharedFleetBuffer.create(matrix) as buffer:
            spec = buffer.spec
            for _ in range(repeats):
                begin = time.perf_counter()
                pickled_sums = list(
                    pool.map(
                        _fanout_pickled_worker,
                        (matrix[lo:hi] for lo, hi in bounds),
                    )
                )
                best_pickled = min(best_pickled, time.perf_counter() - begin)

                begin = time.perf_counter()
                shared_sums = list(
                    pool.map(
                        _fanout_shared_worker,
                        (spec for _ in bounds),
                        (lo for lo, _ in bounds),
                        (hi for _, hi in bounds),
                    )
                )
                best_shared = min(best_shared, time.perf_counter() - begin)
    speedup = best_pickled / best_shared if best_shared > 0 else float("inf")
    return {
        "households": households,
        "matrix_mb": round(matrix.nbytes / 2**20, 1),
        "jobs": len(bounds),
        "pickled_seconds": round(best_pickled, 4),
        "shared_seconds": round(best_shared, 4),
        "speedup": round(speedup, 2),
        "meets_min_speedup": speedup >= SCALE_FANOUT_MIN_SPEEDUP,
        "results_identical": pickled_sums == shared_sums,
    }


def _streaming_peak_mb(households: int, days: int, seed: int, materialize: bool) -> float:
    """Peak traced memory (MiB) of one aggregation pass over the stream."""
    import tracemalloc

    from repro.aggregation.streaming import aggregate_stream
    from repro.timeseries.axis import FIFTEEN_MINUTES, TimeAxis

    axis = TimeAxis(SCENARIO_START, FIFTEEN_MINUTES, 96 * days)
    stream = scale_offer_stream(households, axis, seed=seed)
    tracemalloc.start()
    if materialize:
        # The batch path's memory shape: every offer alive at once.
        offers = list(stream)
        aggregates = list(
            aggregate_stream(offers, epoch=axis.start, keep_members=True)
        )
        del offers
    else:
        aggregates = list(
            aggregate_stream(stream, epoch=axis.start, keep_members=False)
        )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del aggregates
    return peak / 2**20


def _streaming_section(days: int, seed: int) -> dict:
    """The O(chunk) proof: streaming peak stays flat as the fleet triples.

    Tracemalloc peaks for the streaming path at two fleet sizes (3× apart)
    and for the materialized batch path at the smaller size.  O(offers)
    would triple the peak; O(chunk + accumulators) barely moves it.
    """
    small, large = 10_000, 30_000
    streaming_small = _streaming_peak_mb(small, days, seed, materialize=False)
    streaming_large = _streaming_peak_mb(large, days, seed, materialize=False)
    materialized_small = _streaming_peak_mb(small, days, seed, materialize=True)
    growth = streaming_large / streaming_small if streaming_small > 0 else float("inf")
    return {
        "households_small": small,
        "households_large": large,
        "streaming_peak_mb_small": round(streaming_small, 2),
        "streaming_peak_mb_large": round(streaming_large, 2),
        "materialized_peak_mb_small": round(materialized_small, 2),
        "peak_growth_at_3x_households": round(growth, 2),
        "peak_is_chunk_bound": growth < 2.0
        and streaming_small < materialized_small,
    }


def run_scale_benchmark(
    sizes: tuple[int, ...] = SCALE_SIZES,
    days: int = 30,
    seed: int = 23,
    fanout_households: int = SCALE_FANOUT_HOUSEHOLDS,
    sweep_repeats: int = 3,
    out_path: Path | str | None = None,
) -> dict:
    """Run the scale-out benchmark; returns (and optionally writes) the report.

    Four sections, matching the scale-out layer's four claims:

    * ``throughput`` — households/second at each ladder size over the full
      stream → aggregate (``keep_members=False``) → autotuned schedule
      loop;
    * ``fanout`` — shared-memory worker dispatch vs pickling dispatch on
      one fleet matrix, gated at ≥ :data:`SCALE_FANOUT_MIN_SPEEDUP`;
    * ``streaming`` — tracemalloc proof that the streaming aggregator's
      peak memory is O(chunk), not O(offers);
    * ``crossover`` — the engine-crossover sweep behind
      ``ScheduleConfig(engine="auto")``, including the sparse rung where
      the incremental engine beats the vectorized one and ``auto`` picks
      it, and the bitwise-identity booleans for every rung.
    """
    from repro.scheduling.autotune import (
        AUTO_DENSITY_CROSSOVER,
        AUTO_MIN_OFFERS,
        crossover_sweep,
    )

    throughput = [_throughput_rung(size, days, seed) for size in sizes]
    fanout = _fanout_comparison(fanout_households, 7, seed)
    streaming = _streaming_section(days, seed)
    crossover = crossover_sweep(repeats=sweep_repeats, seed=seed)
    sparse = crossover[-1]
    dense = crossover[0]
    report = {
        "workload": {
            "sizes": list(sizes),
            "days": days,
            "seed": seed,
            "grouping": "default GroupingParams, keep_members=False",
        },
        "throughput": throughput,
        "fanout": fanout,
        "streaming": streaming,
        "crossover": {
            "density_crossover": AUTO_DENSITY_CROSSOVER,
            "min_offers": AUTO_MIN_OFFERS,
            "rows": crossover,
            "sparse_winner_is_incremental": sparse["measured_winner"]
            == "incremental",
            "auto_picks_sparse_winner": sparse["auto_choice"]
            == sparse["measured_winner"],
            "auto_picks_dense_winner": dense["auto_choice"]
            == dense["measured_winner"],
            "all_rungs_bitwise_identical": all(
                row["engines_bitwise_identical"] for row in crossover
            ),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "generated": datetime.now().isoformat(timespec="seconds"),
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def scale_table_rows(report: dict) -> list[dict]:
    """Human-readable rows for the CLI scale table."""
    rows = [
        {
            "stage": f"{rung['households']} households "
            f"({rung['engine_resolved']})",
            "seconds": rung["total_seconds"],
            "share": f"{rung['households_per_second']}/s",
        }
        for rung in report["throughput"]
    ]
    fanout = report["fanout"]
    rows.append(
        {
            "stage": f"fan-out {fanout['households']} hh "
            f"({fanout['matrix_mb']} MB)",
            "seconds": fanout["shared_seconds"],
            "share": f"{fanout['speedup']}x vs pickling",
        }
    )
    return rows

"""Shared-memory fleet matrices: pass buffer names, not pickled arrays.

At fleet scale the worker fan-out's cost is dominated by serialization: a
week of 15-minute metering for 10k households is a ~54 MB float64 matrix,
and pickling per-chunk :class:`~repro.timeseries.series.TimeSeries` inputs
through the executor's pipes copies every byte once per chunk.  This module
puts the fleet matrix into POSIX shared memory exactly once; workers then
receive a :class:`SharedArraySpec` — segment *name* plus array layout, a
few hundred bytes — and attach to the same physical pages.

Ownership contract (enforced here, documented in docs/ARCHITECTURE.md):

* Exactly one process — the coordinator — *owns* a segment.  It creates
  the segment via :meth:`SharedFleetBuffer.create` and is responsible for
  unlinking it, which the context-manager form guarantees even when a
  worker chunk raises.
* Workers *attach* via :meth:`SharedFleetBuffer.attach`.  An attached
  buffer only ever closes its local mapping; it never unlinks, and its
  array view is read-only so a worker cannot corrupt the fleet input
  under its siblings.
* ``close``/``unlink`` are idempotent, and ``unlink`` tolerates a segment
  that already vanished (e.g. the owner cleaned up after a worker crash),
  so teardown paths can run unconditionally.  ``close`` in particular
  never raises even while vended :attr:`SharedFleetBuffer.array` views are
  still alive: the buffer marks itself closed immediately and defers the
  actual unmap until the last live view is garbage-collected — unmapping
  under a live view would either raise ``BufferError`` or (worse, with
  views that hold no buffer export) leave them dangling.

Every segment name carries the :data:`SEGMENT_PREFIX` marker so leak
checks (tests, the failure-injection suite) can scan ``/dev/shm`` for
stragglers without touching unrelated segments.
"""

from __future__ import annotations

import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.errors import SharedMemorySegmentError, ValidationError
from repro.testing import faults

#: Prefix of every segment this module creates; leak scans key on it.
SEGMENT_PREFIX = "repro-fleet-"

#: Where Linux exposes POSIX shared memory as files (leak scans only).
_SHM_DIR = Path("/dev/shm")


@dataclass(frozen=True, slots=True)
class SharedArraySpec:
    """A picklable descriptor of one shared ndarray: name plus layout.

    This — not the array — is what crosses the process boundary.  The
    receiving side reconstructs the exact same dtype/shape view with
    :meth:`SharedFleetBuffer.attach`.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size the spec describes (not the segment's page-rounded size)."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class SharedFleetBuffer:
    """One shared-memory ndarray segment with explicit lifecycle ownership.

    Use :meth:`create` in the coordinator (owner) and :meth:`attach` in
    workers; both sides support the context-manager protocol.  The owner's
    ``__exit__`` closes *and unlinks*; an attacher's only closes.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, spec: SharedArraySpec, owner: bool
    ) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._views: list[weakref.ref[np.ndarray]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, array: np.ndarray, name: str | None = None) -> "SharedFleetBuffer":
        """Copy ``array`` into a fresh shared segment; the caller owns it."""
        array = np.ascontiguousarray(array)
        if array.size == 0:
            raise ValidationError("cannot share an empty array")
        if name is not None and not name.startswith(SEGMENT_PREFIX):
            raise ValidationError(
                f"segment names must start with {SEGMENT_PREFIX!r}, got {name!r}"
            )
        name = name or f"{SEGMENT_PREFIX}{secrets.token_hex(8)}"
        faults.fire("shm-create")
        shm = shared_memory.SharedMemory(name=name, create=True, size=array.nbytes)
        spec = SharedArraySpec(
            name=shm.name, shape=tuple(array.shape), dtype=array.dtype.str
        )
        view = np.ndarray(spec.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedFleetBuffer":
        """Attach to an existing segment by spec; the result never unlinks.

        A segment that no longer exists raises
        :class:`~repro.errors.SharedMemorySegmentError` naming the segment:
        the usual cause is lifecycle inversion — the owning coordinator
        unlinked the segment before (or while) this worker attached.
        """
        try:
            shm = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError as exc:
            raise SharedMemorySegmentError(
                f"shared segment {spec.name!r} does not exist; the owning "
                "coordinator likely unlinked it before this attach — keep "
                "the owner's SharedFleetBuffer open until every worker is done"
            ) from exc
        if shm.size < spec.nbytes:
            shm.close()
            raise ValidationError(
                f"segment {spec.name!r} holds {shm.size} bytes, "
                f"spec describes {spec.nbytes}"
            )
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def spec(self) -> SharedArraySpec:
        """The picklable descriptor to hand to workers."""
        return self._spec

    @property
    def owner(self) -> bool:
        """True when this side is responsible for unlinking the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def array(self) -> np.ndarray:
        """The ndarray view over the segment.

        The owner's view is writable (it just filled it); an attached view
        is read-only so workers cannot corrupt the shared fleet input.
        """
        if self._closed:
            raise ValidationError(
                f"segment {self._spec.name!r} is closed; no array view available"
            )
        view = np.ndarray(
            self._spec.shape, dtype=np.dtype(self._spec.dtype), buffer=self._shm.buf
        )
        if not self._owner:
            view.flags.writeable = False
        self._views = [ref for ref in self._views if ref() is not None]
        self._views.append(weakref.ref(view))
        return view

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop this process's mapping.  Idempotent; never unlinks or raises.

        Vended :attr:`array` views pin the mapping: depending on how numpy
        acquired the buffer, unmapping under a live view either raises
        ``BufferError`` or silently leaves the view dangling.  So with live
        views the buffer only marks itself closed (no new views can be
        vended) and hands the real ``SharedMemory.close`` to a finalizer
        that fires once the last surviving view is garbage-collected.
        """
        if self._closed:
            return
        self._closed = True
        live = [view for view in (ref() for ref in self._views) if view is not None]
        self._views.clear()
        if live:
            pending = _PendingClose(self._shm, len(live))
            for view in live:
                weakref.finalize(view, pending.view_died)
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - view minted outside .array
            pass

    def unlink(self) -> None:
        """Remove the segment from the system.  Owner-only; idempotent.

        Tolerates a segment that already vanished (e.g. an external crash
        cleanup got there first), so teardown can call it unconditionally;
        the resource tracker's cache is kept consistent either way.
        """
        if not self._owner:
            raise ValidationError(
                f"segment {self._spec.name!r} was attached, not created here; "
                "only the owner may unlink it"
            )
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            # Already gone; unregister ourselves, since SharedMemory.unlink
            # only reaches its unregister call when shm_unlink succeeds.
            _forget(self._spec.name)

    def __enter__(self) -> "SharedFleetBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        role = "owner" if self._owner else "attached"
        return f"SharedFleetBuffer({self._spec.name!r}, {role}, {state})"


class _PendingClose:
    """Counts down live views of a closed buffer; unmaps after the last one.

    One instance is shared by every view that was alive when ``close`` ran;
    closing after the *first* view death would dangle the remaining views,
    so the mapping is dropped only when the count reaches zero.
    """

    __slots__ = ("_shm", "_remaining")

    def __init__(self, shm: shared_memory.SharedMemory, remaining: int) -> None:
        self._shm = shm
        self._remaining = remaining

    def view_died(self) -> None:
        self._remaining -= 1
        if self._remaining > 0:
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - foreign export still live
            pass


def _forget(name: str) -> None:
    """Drop a vanished segment from the resource tracker's cache.

    Owner and workers share one resource-tracker process (the executor
    forks after the tracker exists), so the name is registered exactly once
    and must be unregistered exactly once — by the owner.  This helper
    covers the already-vanished branch of :meth:`SharedFleetBuffer.unlink`,
    where ``SharedMemory.unlink`` raises before its own unregister call.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies by version
        pass


def leaked_segments() -> list[str]:
    """Names of this module's segments still present in ``/dev/shm``.

    Empty on platforms without a ``/dev/shm`` view; used by the
    failure-injection tests to assert crash paths leave nothing behind.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in _SHM_DIR.glob(f"{SEGMENT_PREFIX}*"))

"""Fault-tolerant chunk dispatch over a process pool.

Every worker fan-out in this package (fleet extraction chunks, zone
scheduling, conformance cells) used to die wholesale when one worker died:
``BrokenProcessPool`` poisons every outstanding future of a
``ProcessPoolExecutor``, so a single OOM-killed process aborted work that
was deterministic and perfectly re-runnable.  This module is the shared
fix — submit chunks through :func:`dispatch_chunks` and worker loss
becomes a retriable event:

* a broken pool (worker SIGKILLed, segfaulted, OOMed) is torn down and
  **rebuilt**, and only the chunks still outstanding are re-dispatched —
  completed results are never recomputed;
* a chunk that exceeds :attr:`RetryPolicy.timeout_seconds` abandons the
  (possibly wedged) pool the same way;
* each round of failures backs off exponentially with **deterministic
  jitter** (keyed on the chunk index and attempt number, not a clock or
  RNG, so reruns sleep identically);
* a chunk that exhausts :attr:`RetryPolicy.max_attempts` degrades
  gracefully: it runs in-process via the caller's ``local_runner`` under a
  :class:`~repro.errors.DegradedExecutionWarning` — or raises the pinned
  :class:`~repro.errors.WorkerRetryError` when the caller disabled the
  fallback.

Results are bitwise identical on every path because every chunk function
in this package is deterministic — the same property that already made
worker counts invisible in results makes retries and fallbacks invisible
too.  Ordinary exceptions raised *by* chunk code (as opposed to the worker
dying) are not retried: a deterministic failure would fail again, so it
propagates immediately, exactly as the pre-retry fan-outs behaved.
"""

from __future__ import annotations

import time
import warnings
import zlib
from concurrent.futures import BrokenExecutor, Executor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import DegradedExecutionWarning, ValidationError, WorkerRetryError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "backoff_seconds", "dispatch_chunks"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard :func:`dispatch_chunks` fights for each chunk.

    ``max_attempts`` counts pool deliveries per chunk; after the last one
    fails the chunk runs in-process when ``fallback_sequential`` is set
    (the default) and raises :class:`~repro.errors.WorkerRetryError`
    otherwise.  ``timeout_seconds`` bounds one chunk's wall-clock in the
    pool (``None`` waits forever).  Backoff between failure rounds grows
    as ``base * factor**(attempt-1)`` capped at ``backoff_max_seconds``,
    stretched by up to ``jitter_fraction`` using a hash of the chunk index
    and attempt — deterministic, so test runs and re-runs sleep the same.
    """

    max_attempts: int = 3
    timeout_seconds: float | None = None
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    jitter_fraction: float = 0.25
    fallback_sequential: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("retry max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValidationError("retry timeout_seconds must be > 0 (or None)")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValidationError("retry backoff seconds must be >= 0")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValidationError("retry jitter_fraction must be in [0, 1]")


DEFAULT_RETRY_POLICY = RetryPolicy()


def backoff_seconds(policy: RetryPolicy, chunk: int, attempt: int) -> float:
    """The deterministic delay before re-dispatching ``chunk``'s ``attempt``."""
    base = min(
        policy.backoff_max_seconds,
        policy.backoff_base_seconds * policy.backoff_factor ** max(0, attempt - 1),
    )
    frac = zlib.crc32(f"{chunk}:{attempt}".encode()) % 10_000 / 10_000
    return base * (1.0 + policy.jitter_fraction * frac)


def _abandon_pool(pool: Executor) -> None:
    """Tear down a broken or wedged pool without waiting on it.

    ``shutdown(wait=False)`` alone would leave a hung worker running
    forever, so any surviving worker processes are terminated first (via
    the executor's process table; guarded, since that attribute is an
    implementation detail of ``ProcessPoolExecutor``).
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-reaped process
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def dispatch_chunks(
    task_args: Sequence[tuple],
    worker_fn: Callable[..., Any],
    pool_factory: Callable[[], Executor],
    local_runner: Callable[[int], Any],
    policy: RetryPolicy | None = None,
    label: str = "chunks",
) -> list[Any]:
    """Run every task over a (rebuildable) pool; results in task order.

    ``task_args[i]`` is splatted into ``worker_fn`` inside a pool worker;
    ``local_runner(i)`` must produce the bitwise-identical result
    in-process (the degradation path).  ``pool_factory`` builds a fresh
    executor — called once up front and again after every pool loss.
    """
    policy = policy if policy is not None else DEFAULT_RETRY_POLICY
    total = len(task_args)
    results: list[Any] = [None] * total
    attempts = [0] * total
    pending = list(range(total))
    pool: Executor | None = None
    try:
        while pending:
            exhausted = [i for i in pending if attempts[i] >= policy.max_attempts]
            if exhausted:
                if not policy.fallback_sequential:
                    raise WorkerRetryError(
                        f"worker dispatch for {label} exhausted "
                        f"{policy.max_attempts} attempt(s) on {len(exhausted)} "
                        "chunk(s) and the sequential fallback is disabled"
                    )
                warnings.warn(
                    DegradedExecutionWarning(
                        f"{label}: {len(exhausted)} chunk(s) exhausted "
                        f"{policy.max_attempts} worker attempt(s); finishing "
                        "them in-process"
                    ),
                    stacklevel=2,
                )
                for index in exhausted:
                    results[index] = local_runner(index)
                pending = [i for i in pending if i not in set(exhausted)]
                continue
            if pool is None:
                try:
                    pool = pool_factory()
                except OSError as exc:
                    warnings.warn(
                        DegradedExecutionWarning(
                            f"{label}: worker pool unavailable ({exc}); "
                            "running in-process"
                        ),
                        stacklevel=2,
                    )
                    for index in pending:
                        results[index] = local_runner(index)
                    pending = []
                    continue
            futures = {i: pool.submit(worker_fn, *task_args[i]) for i in pending}
            failed: list[int] = []
            broken = False
            for index in pending:
                # Once the pool is known-lost, drain without blocking:
                # finished futures still yield results, the rest re-queue.
                timeout = 0.0 if broken else policy.timeout_seconds
                try:
                    results[index] = futures[index].result(timeout=timeout)
                except (BrokenExecutor, FuturesTimeout, TimeoutError):
                    attempts[index] += 1
                    failed.append(index)
                    broken = True
                except BaseException:
                    # Chunk code itself raised: deterministic, so a retry
                    # would fail the same way — surface it (the pre-retry
                    # contract of every fan-out using this module).
                    pool.shutdown(wait=True, cancel_futures=True)
                    pool = None
                    raise
            if broken:
                _abandon_pool(pool)
                pool = None
                first = failed[0]
                time.sleep(backoff_seconds(policy, first, attempts[first]))
            pending = failed
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return results

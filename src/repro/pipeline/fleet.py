"""Batched fleet execution: disaggregate → extract → aggregate at scale.

The paper's MIRABEL vision concerns "flex-offers aggregated from thousands
consumers" (§6); the per-household extractors only pay off operationally
when they run over whole metered fleets.  :class:`FleetPipeline` is that
engine: it takes N households, runs the extraction stages as chunked
batches (optionally fanned out over worker processes), groups and
aggregates the resulting offers fleet-wide, and captures wall-clock per
stage.

Determinism contract: the pipeline seeds each household's generator from
its fleet index exactly like the sequential loop
(:func:`run_sequential`), and both mint offer ids inside per-household
:func:`~repro.flexoffer.model.offer_id_scope` namespaces (``h{index}`` for
extraction, ``fleet`` for the aggregation stage).  Batching, chunk sizes
and worker counts therefore never change the extracted offers — not even
their ids — only how fast they arrive.  The property test, the fleet
benchmark and the conformance matrix all assert this equivalence; use
:func:`results_identical` for the strict ids-included comparison and
:func:`offers_equivalent` for the id-free (or tolerance-relaxed) one.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field, replace

import numpy as np

from repro.aggregation.aggregate import AggregatedFlexOffer, aggregate_all
from repro.aggregation.grouping import GroupingParams, group_offers
from repro.api.registry import create_extractor
from repro.errors import DegradedExecutionWarning, SchedulingError, ValidationError
from repro.pipeline.dispatch import RetryPolicy, dispatch_chunks
from repro.testing import faults
from repro.evaluation.comparison import SEED_STRIDE, input_series_for
from repro.extraction.base import FlexibilityExtractor
from repro.flexoffer.model import FlexOffer, offer_id_scope
from repro.pipeline.sharedmem import SharedArraySpec, SharedFleetBuffer
from repro.scheduling.autotune import resolve_engine
from repro.scheduling.greedy import ScheduleConfig, ScheduleResult, greedy_schedule
from repro.scheduling.stochastic import improve_schedule
from repro.scheduling.zones import ZonedScheduleResult, ZonedTarget, schedule_zones
from repro.simulation.dataset import SimulatedDataset
from repro.simulation.household import HouseholdTrace
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

#: Pipeline stages, in execution order.  ``disaggregate`` is only non-zero
#: for extractors exposing the detect/formulate split (the appliance-level
#: approaches); household-level extractors do all their work in ``extract``;
#: ``schedule`` runs only when a target series is supplied (the market-
#: facing placement of the fleet aggregates against e.g. RES surplus).
STAGES: tuple[str, ...] = (
    "prepare",
    "disaggregate",
    "extract",
    "group",
    "aggregate",
    "schedule",
)



@dataclass
class StageTimings:
    """Per-stage wall-clock capture of one pipeline run.

    With a worker fan-out, ``disaggregate``/``extract`` are the *summed*
    in-worker seconds (CPU-time-like); ``fanout_wall`` then records the
    coordinator-observed wall time of the whole fan-out block.
    """

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def merge(self, other: dict[str, float]) -> None:
        for stage, elapsed in other.items():
            self.add(stage, elapsed)

    @property
    def total(self) -> float:
        """Total accounted seconds across the core stages."""
        return float(sum(self.seconds.get(stage, 0.0) for stage in STAGES))

    def rows(self) -> list[dict[str, float | str]]:
        """Stage table rows for reports (stage, seconds, share)."""
        total = self.total or 1.0
        rows: list[dict[str, float | str]] = []
        for stage in STAGES:
            elapsed = self.seconds.get(stage, 0.0)
            rows.append(
                {
                    "stage": stage,
                    "seconds": round(elapsed, 4),
                    "share": f"{elapsed / total:.1%}",
                }
            )
        for stage, elapsed in self.seconds.items():
            if stage not in STAGES:
                rows.append({"stage": stage, "seconds": round(elapsed, 4), "share": "—"})
        return rows


@dataclass(frozen=True)
class HouseholdOutput:
    """One household's share of a fleet run."""

    index: int
    household_id: str
    offers: tuple[FlexOffer, ...]
    summary: dict[str, float]


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet run produced: offers, aggregates, timings.

    ``schedule`` is the market-facing placement of the fleet aggregates
    against a target — present only when the run was given one.  It is a
    :class:`~repro.scheduling.zones.ZonedScheduleResult` when the target
    was a zoned market, a plain
    :class:`~repro.scheduling.greedy.ScheduleResult` otherwise.
    """

    households: tuple[HouseholdOutput, ...]
    aggregates: tuple[AggregatedFlexOffer, ...]
    timings: StageTimings
    schedule: ScheduleResult | ZonedScheduleResult | None = None

    @property
    def offers(self) -> list[FlexOffer]:
        """All offers in household order (== sequential-loop order)."""
        return [offer for household in self.households for offer in household.offers]

    @property
    def total_extracted_kwh(self) -> float:
        """Fleet-wide extracted (profile-midpoint) energy."""
        return float(sum(h.summary.get("extracted_kwh", 0.0) for h in self.households))


def stamp_household(
    offers: tuple[FlexOffer, ...] | list[FlexOffer], household_id: str
) -> tuple[FlexOffer, ...]:
    """Stamp the owning household onto offers that carry no consumer id.

    The fleet pipeline knows which household each extraction ran for; the
    extractors themselves mostly do not (they see a bare series).  Offers
    leaving the pipeline therefore always carry their household identity —
    the metadata key the zone-assignment policy routes by
    (:func:`repro.scheduling.zones.routing_key`).  Offers that already
    name a consumer (e.g. a configured extractor) are left untouched.
    """
    return tuple(
        offer if offer.consumer_id else replace(offer, consumer_id=household_id)
        for offer in offers
    )


def canonical_offer(offer: FlexOffer) -> tuple:
    """An offer's identity-free content, for cross-run comparison.

    Offer ids come from a process-global counter and differ between runs by
    construction; everything else an extractor emits is captured here.
    """
    return (
        offer.earliest_start,
        offer.latest_start,
        offer.resolution,
        offer.consumer_id,
        offer.appliance,
        offer.source,
        tuple((s.energy_min, s.energy_max, s.duration) for s in offer.slices),
        offer.total_energy_min,
        offer.total_energy_max,
    )


def _energies_close(a: float, b: float, rtol: float) -> bool:
    if rtol == 0.0:
        return a == b
    return bool(np.isclose(a, b, rtol=rtol, atol=1e-12))


def offers_equivalent(
    left: list[FlexOffer], right: list[FlexOffer], rtol: float = 0.0
) -> bool:
    """True when both offer lists match pairwise modulo offer ids.

    ``rtol`` relaxes the energy comparisons (0.0 demands bitwise equality);
    time attributes and slice structure must always match exactly.
    """
    if len(left) != len(right):
        return False
    if rtol == 0.0:
        # Bitwise path: offer identity is exactly canonical_offer, so the
        # two notions of equality cannot drift apart.
        return all(
            canonical_offer(a) == canonical_offer(b) for a, b in zip(left, right)
        )
    for a, b in zip(left, right):
        if canonical_offer(a)[:6] != canonical_offer(b)[:6]:
            return False
        if len(a.slices) != len(b.slices):
            return False
        for slice_a, slice_b in zip(a.slices, b.slices):
            if slice_a.duration != slice_b.duration:
                return False
            if not _energies_close(slice_a.energy_min, slice_b.energy_min, rtol):
                return False
            if not _energies_close(slice_a.energy_max, slice_b.energy_max, rtol):
                return False
        for total_a, total_b in (
            (a.total_energy_min, b.total_energy_min),
            (a.total_energy_max, b.total_energy_max),
        ):
            if (total_a is None) != (total_b is None):
                return False
            if total_a is not None and not _energies_close(total_a, total_b, rtol):
                return False
    return True


def results_identical(left: FleetResult, right: FleetResult) -> bool:
    """True when two fleet runs are *exactly* equal — offer ids included.

    Both run paths mint ids in deterministic per-household namespaces, so
    batched vs sequential (any chunk size, any worker count) must agree on
    everything except wall-clock timings.  This is the strict form of
    :func:`offers_equivalent`; the conformance matrix asserts it on every
    registered extractor.  When a schedule stage ran, its placements and
    demand plan are part of the contract too.
    """
    if len(left.households) != len(right.households):
        return False
    for a, b in zip(left.households, right.households):
        if (a.index, a.household_id, a.offers, a.summary) != (
            b.index,
            b.household_id,
            b.offers,
            b.summary,
        ):
            return False
    if left.aggregates != right.aggregates:
        return False
    if (left.schedule is None) != (right.schedule is None):
        return False
    return left.schedule is None or left.schedule == right.schedule


def fleet_schedule_target(
    fleet: SimulatedDataset | list[HouseholdTrace],
    seed: int = 2,
    share: float = 0.25,
) -> TimeSeries:
    """A deterministic RES-surplus target for a fleet's schedule stage.

    Simulated wind production on the fleet's metering axis, rescaled so its
    total energy is ``share`` of the fleet's total consumption — a target
    magnitude the extracted flexibility can meaningfully chase regardless
    of fleet size or season.
    """
    from repro.simulation.res import simulate_wind_production

    traces = list(fleet)
    if not traces:
        raise ValidationError("fleet must contain at least one household")
    axis = (
        fleet.metering_axis()
        if hasattr(fleet, "metering_axis")
        else traces[0].metered().axis
    )
    production = simulate_wind_production(axis, np.random.default_rng(seed))
    consumption = float(sum(trace.total.values.sum() for trace in traces))
    if production.total() > 0 and consumption > 0:
        production = production * (share * consumption / production.total())
    return production


def fleet_zoned_target(
    fleet: SimulatedDataset | list[HouseholdTrace],
    seed: int = 2,
    zones: int = 3,
    share: float = 0.25,
    mapped_fraction: float = 0.5,
) -> ZonedTarget:
    """A deterministic zoned market for a fleet's schedule stage.

    ``zones`` named zones (``zone-a``, ``zone-b``, ...), each with its own
    wind-production profile (seeded ``seed + zone index``) rescaled to an
    equal slice of ``share`` of the fleet's total consumption, and a
    per-zone price band.  The first ``mapped_fraction`` of the households
    is assigned round-robin through the explicit metadata policy; the rest
    routes through the hash-shard fallback — so both assignment paths are
    exercised on every fleet.
    """
    from repro.scheduling.zones import make_market_zones

    traces = list(fleet)
    if not traces:
        raise ValidationError("fleet must contain at least one household")
    if zones < 1:
        raise ValidationError("zones must be >= 1")
    axis = (
        fleet.metering_axis()
        if hasattr(fleet, "metering_axis")
        else traces[0].metered().axis
    )
    consumption = float(sum(trace.total.values.sum() for trace in traces))
    market_zones = make_market_zones(
        axis, zones, seed, share * consumption / zones
    )
    mapped = int(len(traces) * mapped_fraction)
    assignment = {
        trace.config.household_id: market_zones[index % zones].name
        for index, trace in enumerate(traces[:mapped])
    }
    return ZonedTarget(zones=market_zones, assignment=assignment)


def schedule_aggregates(
    aggregates: tuple[AggregatedFlexOffer, ...] | list[AggregatedFlexOffer],
    target: TimeSeries | ZonedTarget,
    config: ScheduleConfig | None = None,
    scenarios: list[TimeSeries] | None = None,
) -> ScheduleResult | ZonedScheduleResult:
    """The pipeline's schedule stage: place fleet aggregates on a target.

    Greedy placement of every aggregate offer (paper [5]'s post-aggregation
    scheduling), optionally followed by ``config.improve_iterations`` of
    the stochastic hill climber seeded from ``config.improve_seed`` — all
    deterministic, so batched and sequential runs agree exactly.  A
    :class:`~repro.scheduling.zones.ZonedTarget` routes through
    :func:`~repro.scheduling.zones.schedule_zones` instead: aggregates are
    sharded into zones and each zone is scheduled independently.
    ``scenarios`` is robust mode's explicit quantile fan, handed through to
    :func:`~repro.scheduling.greedy.greedy_schedule` (plain targets only;
    zoned targets keep point scheduling).
    """
    if isinstance(target, ZonedTarget):
        if scenarios is not None:
            raise SchedulingError(
                "scenario fans apply to plain targets only; zoned targets "
                "keep point scheduling"
            )
        return schedule_zones(aggregates, target, config)
    config = config if config is not None else ScheduleConfig()
    # Resolve engine="auto" once for the whole stage, so the greedy pass
    # and the improver run the same concrete engine.
    config = resolve_engine(
        config, [aggregate.offer for aggregate in aggregates], target.axis
    )
    result = greedy_schedule(
        [aggregate.offer for aggregate in aggregates],
        target,
        config=config,
        scenarios=scenarios,
    )
    if config.improve_iterations > 0:
        result = improve_schedule(
            result,
            np.random.default_rng(config.improve_seed),
            iterations=config.improve_iterations,
            engine=config.engine,
        )
    return result


# ---------------------------------------------------------------------- #
# Worker entry points (module-level so they pickle under multiprocessing)
# ---------------------------------------------------------------------- #

#: Per-worker extractor, installed once by the pool initializer so the
#: extractor (appliance database, warmed template/FFT caches) is pickled
#: once per worker instead of once per chunk, and its caches stay warm
#: across all chunks a worker processes.
_WORKER_EXTRACTOR: FlexibilityExtractor | None = None


def _init_worker(extractor: FlexibilityExtractor) -> None:
    # Offer ids need no per-worker fixup: extraction runs inside
    # per-household offer_id_scope namespaces, so the ids a worker mints
    # depend only on the household index — never on pids or fork order.
    global _WORKER_EXTRACTOR
    _WORKER_EXTRACTOR = extractor


def _run_chunk_in_worker(
    chunk_index: int, seed: int, jobs: list[tuple[int, str, TimeSeries]]
) -> tuple[list[HouseholdOutput], dict[str, float]]:
    assert _WORKER_EXTRACTOR is not None, "worker pool initializer did not run"
    faults.fire("fleet-chunk", chunk_index)
    return _run_chunk(_WORKER_EXTRACTOR, seed, jobs)


def _run_shared_chunk_in_worker(
    chunk_index: int,
    seed: int,
    spec: SharedArraySpec,
    axis: TimeAxis,
    rows: list[tuple[int, int, str, str]],
) -> tuple[list[HouseholdOutput], dict[str, float]]:
    """Run one chunk whose input series live in a shared fleet matrix.

    ``rows`` carries ``(matrix row, household index, household id, series
    name)`` — a few hundred bytes per chunk regardless of horizon length.
    Each job's series wraps its matrix row zero-copy; the attached view is
    read-only, matching the frozen per-trace totals of the in-process path,
    so extractors behave (and their outputs stay bitwise) identically.
    """
    assert _WORKER_EXTRACTOR is not None, "worker pool initializer did not run"
    faults.fire("fleet-chunk", chunk_index)
    with SharedFleetBuffer.attach(spec) as buffer:
        matrix = buffer.array
        jobs = [
            (index, household_id, TimeSeries(axis, matrix[row], name))
            for row, index, household_id, name in rows
        ]
        return _run_chunk(_WORKER_EXTRACTOR, seed, jobs)


def _pack_jobs(
    jobs: list[tuple[int, str, TimeSeries]],
) -> tuple[np.ndarray, TimeAxis, list[tuple[int, int, str, str]]] | None:
    """Stack per-household inputs into one fleet matrix, if they align.

    Returns ``(matrix, axis, rows)`` where row ``r`` of the matrix holds the
    values of ``jobs[r]`` and ``rows[r]`` is that job's shared-memory job
    descriptor — or ``None`` when the inputs do not share an axis (mixed
    fleets fall back to the pickling fan-out).
    """
    axis = jobs[0][2].axis
    if any(series.axis != axis for _, _, series in jobs[1:]):
        return None
    matrix = np.stack([series.values for _, _, series in jobs])
    rows = [
        (row, index, household_id, series.name)
        for row, (index, household_id, series) in enumerate(jobs)
    ]
    return matrix, axis, rows


def _run_chunk(
    extractor: FlexibilityExtractor,
    seed: int,
    jobs: list[tuple[int, str, TimeSeries]],
) -> tuple[list[HouseholdOutput], dict[str, float]]:
    """Extract one chunk of households; returns outputs plus stage seconds."""
    split = hasattr(extractor, "detect") and hasattr(extractor, "formulate")
    timings = {"disaggregate": 0.0, "extract": 0.0}
    outputs: list[HouseholdOutput] = []
    for index, household_id, series in jobs:
        rng = np.random.default_rng(seed + SEED_STRIDE * index)
        with offer_id_scope(f"h{index}"):
            if split:
                t0 = time.perf_counter()
                detected = extractor.detect(series)
                timings["disaggregate"] += time.perf_counter() - t0
                t0 = time.perf_counter()
                result = extractor.formulate(series, detected, rng)
                timings["extract"] += time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                result = extractor.extract(series, rng)
                timings["extract"] += time.perf_counter() - t0
        outputs.append(
            HouseholdOutput(
                index=index,
                household_id=household_id,
                offers=stamp_household(result.offers, household_id),
                summary=result.summary(),
            )
        )
    return outputs, timings


class FleetPipeline:
    """Chunked, optionally multiprocessing, fleet extraction engine.

    Parameters
    ----------
    extractor:
        Any :class:`FlexibilityExtractor`; appliance-level extractors that
        expose ``detect``/``formulate`` get their disaggregation stage
        timed (and fanned out) separately.  Defaults to the frequency-based
        appliance-level approach.
    grouping:
        Grid parameters for fleet-wide offer grouping before aggregation.
    chunk_size:
        Households per batch; bounds both task-submission overhead and
        per-worker peak memory.
    workers:
        ``None``/``1`` runs in-process; larger values fan chunks out over a
        process pool.  Results are independent of the worker count.
    shared_memory:
        When fanning out, put the stacked fleet input matrix into one
        shared-memory segment and send workers row descriptors instead of
        pickled series (the scale-out path; see ``pipeline/sharedmem.py``).
        ``False`` forces the legacy pickling fan-out — kept selectable so
        the scale benchmark can measure the difference.  Either way the
        results are bitwise identical.  Fleets whose inputs do not share a
        time axis silently fall back to pickling, and a fleet whose segment
        *creation* fails (e.g. ``/dev/shm`` full) falls back to pickling
        under a :class:`~repro.errors.DegradedExecutionWarning`.
    retry:
        Fault-tolerance policy of the worker fan-out (see
        :class:`~repro.pipeline.dispatch.RetryPolicy`): dead workers
        rebuild the pool and re-dispatch only the outstanding chunks;
        chunks whose retries run out finish in-process.  Results are
        bitwise identical on every path.  ``None`` uses the defaults.
    seed:
        Base seed; household ``i`` always draws from
        ``default_rng(seed + 7919·i)``, matching the evaluation harness.
    schedule:
        Configuration of the optional schedule stage (engine, placement
        order, stochastic-improvement budget); the stage itself runs only
        when :meth:`run` is given a target series.
    """

    def __init__(
        self,
        extractor: FlexibilityExtractor | None = None,
        grouping: GroupingParams | None = None,
        chunk_size: int = 8,
        workers: int | None = None,
        seed: int = 0,
        schedule: ScheduleConfig | None = None,
        shared_memory: bool = True,
        retry: RetryPolicy | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        if workers is not None and workers < 1:
            raise ValidationError("workers must be >= 1 (or None)")
        self.extractor = (
            extractor if extractor is not None else create_extractor("frequency-based")
        )
        self.grouping = grouping
        self.chunk_size = chunk_size
        self.workers = workers
        self.seed = seed
        self.schedule = schedule
        self.shared_memory = shared_memory
        self.retry = retry

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #

    def _prepare(
        self, traces: list[HouseholdTrace]
    ) -> list[tuple[int, str, TimeSeries]]:
        """Pick each household's input series at the extractor's granularity."""
        return [
            (index, trace.config.household_id, input_series_for(self.extractor, trace))
            for index, trace in enumerate(traces)
        ]

    def run(
        self,
        fleet: SimulatedDataset | list[HouseholdTrace],
        target: TimeSeries | ZonedTarget | None = None,
        scenarios: list[TimeSeries] | None = None,
    ) -> FleetResult:
        """Run the full batched pipeline over a fleet.

        Accepts a :class:`SimulatedDataset` or a plain list of traces and
        returns the per-household offers, the fleet-wide aggregated offers
        and the per-stage timings.  When ``target`` is given (e.g. RES
        surplus on the metering grid), the schedule stage places the fleet
        aggregates against it and the result carries a
        :class:`~repro.scheduling.greedy.ScheduleResult` — or a
        :class:`~repro.scheduling.zones.ZonedScheduleResult` when the
        target is a zoned market.  ``scenarios`` is robust mode's explicit
        quantile fan, forwarded to the schedule stage.
        """
        traces = list(fleet)
        if not traces:
            raise ValidationError("fleet must contain at least one household")
        timings = StageTimings()

        t0 = time.perf_counter()
        jobs = self._prepare(traces)
        timings.add("prepare", time.perf_counter() - t0)

        chunks = [
            jobs[first : first + self.chunk_size]
            for first in range(0, len(jobs), self.chunk_size)
        ]
        outputs: list[HouseholdOutput] = []
        if self.workers is None or self.workers == 1 or len(chunks) == 1:
            for chunk in chunks:
                chunk_outputs, chunk_timings = _run_chunk(self.extractor, self.seed, chunk)
                outputs.extend(chunk_outputs)
                timings.merge(chunk_timings)
        else:
            t0 = time.perf_counter()
            self._fan_out(jobs, chunks, outputs, timings)
            timings.add("fanout_wall", time.perf_counter() - t0)
        outputs.sort(key=lambda h: h.index)

        all_offers = [offer for household in outputs for offer in household.offers]
        t0 = time.perf_counter()
        groups = group_offers(all_offers, self.grouping)
        timings.add("group", time.perf_counter() - t0)

        t0 = time.perf_counter()
        with offer_id_scope("fleet"):
            aggregates = aggregate_all(groups)
        timings.add("aggregate", time.perf_counter() - t0)

        schedule: ScheduleResult | ZonedScheduleResult | None = None
        if target is not None:
            t0 = time.perf_counter()
            schedule = schedule_aggregates(
                aggregates, target, self.schedule, scenarios=scenarios
            )
            timings.add("schedule", time.perf_counter() - t0)

        return FleetResult(
            households=tuple(outputs),
            aggregates=tuple(aggregates),
            timings=timings,
            schedule=schedule,
        )

    def _fan_out(
        self,
        jobs: list[tuple[int, str, TimeSeries]],
        chunks: list[list[tuple[int, str, TimeSeries]]],
        outputs: list[HouseholdOutput],
        timings: StageTimings,
    ) -> None:
        """Run the chunks through the fault-tolerant dispatcher.

        The shared-memory path stages all inputs in one segment up front and
        submits row descriptors; the pickling path submits the series
        themselves.  Failed segment creation (a full ``/dev/shm``) demotes
        the run to the pickling path under a warning instead of aborting.
        Worker loss is survived by :func:`~repro.pipeline.dispatch.
        dispatch_chunks` (pool rebuild, outstanding-only re-dispatch,
        in-process degradation), while a chunk that *raises* still
        propagates with the not-yet-started chunks cancelled.  The owner
        side of the shared segment is closed *and unlinked* on every exit
        path — worker crashes included — so no ``/dev/shm`` segment
        outlives the run.
        """
        packed = _pack_jobs(jobs) if self.shared_memory else None
        with ExitStack() as stack:
            if packed is not None:
                matrix, axis, rows = packed
                try:
                    buffer = stack.enter_context(SharedFleetBuffer.create(matrix))
                except (OSError, MemoryError) as exc:
                    warnings.warn(
                        DegradedExecutionWarning(
                            "shared-memory segment creation failed "
                            f"({exc}); falling back to pickled dispatch"
                        ),
                        stacklevel=2,
                    )
                    packed = None
            if packed is not None:
                row_chunks = [
                    rows[first : first + self.chunk_size]
                    for first in range(0, len(rows), self.chunk_size)
                ]
                worker_fn = _run_shared_chunk_in_worker
                task_args = [
                    (index, self.seed, buffer.spec, axis, chunk)
                    for index, chunk in enumerate(row_chunks)
                ]
            else:
                worker_fn = _run_chunk_in_worker
                task_args = [
                    (index, self.seed, chunk) for index, chunk in enumerate(chunks)
                ]

            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.extractor,),
                )

            results = dispatch_chunks(
                task_args,
                worker_fn,
                pool_factory,
                # Degraded chunks recompute from the original in-process
                # jobs — same seeds, same id scopes, bitwise-same outputs.
                lambda index: _run_chunk(self.extractor, self.seed, chunks[index]),
                policy=self.retry,
                label="fleet extraction",
            )
            for chunk_outputs, chunk_timings in results:
                outputs.extend(chunk_outputs)
                timings.merge(chunk_timings)


def run_sequential(
    fleet: SimulatedDataset | list[HouseholdTrace],
    extractor: FlexibilityExtractor | None = None,
    grouping: GroupingParams | None = None,
    seed: int = 0,
    target: TimeSeries | ZonedTarget | None = None,
    schedule_config: ScheduleConfig | None = None,
    scenarios: list[TimeSeries] | None = None,
) -> FleetResult:
    """The plain per-household loop the batched engine must reproduce.

    One household at a time, no chunking, no stage split — the shape of the
    seed pipeline.  Kept as the equivalence oracle for the property test
    and the benchmark.
    """
    traces = list(fleet)
    if not traces:
        raise ValidationError("fleet must contain at least one household")
    extractor = extractor if extractor is not None else create_extractor("frequency-based")
    timings = StageTimings()
    outputs: list[HouseholdOutput] = []
    t0 = time.perf_counter()
    for index, trace in enumerate(traces):
        rng = np.random.default_rng(seed + SEED_STRIDE * index)
        series = input_series_for(extractor, trace)
        with offer_id_scope(f"h{index}"):
            result = extractor.extract(series, rng)
        outputs.append(
            HouseholdOutput(
                index=index,
                household_id=trace.config.household_id,
                offers=stamp_household(result.offers, trace.config.household_id),
                summary=result.summary(),
            )
        )
    timings.add("extract", time.perf_counter() - t0)
    all_offers = [offer for household in outputs for offer in household.offers]
    t0 = time.perf_counter()
    groups = group_offers(all_offers, grouping)
    timings.add("group", time.perf_counter() - t0)
    t0 = time.perf_counter()
    with offer_id_scope("fleet"):
        aggregates = aggregate_all(groups)
    timings.add("aggregate", time.perf_counter() - t0)
    schedule: ScheduleResult | ZonedScheduleResult | None = None
    if target is not None:
        t0 = time.perf_counter()
        schedule = schedule_aggregates(
            aggregates, target, schedule_config, scenarios=scenarios
        )
        timings.add("schedule", time.perf_counter() - t0)
    return FleetResult(
        households=tuple(outputs),
        aggregates=tuple(aggregates),
        timings=timings,
        schedule=schedule,
    )

"""Command-line interface: simulate, extract, evaluate, reproduce figures.

Installed as the ``repro`` console script::

    repro simulate --households 5 --days 7 --out data/
    repro extract  --input data/hh-0000.csv --approach peak-based --share 0.05 \
                   --out offers.json
    repro evaluate --households 6 --days 7
    repro bench    --households 20 --days 7 --out BENCH_fleet.json
    repro figures

Each subcommand is a thin shell over the library; everything it does is
available programmatically (see README).
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.evaluation.comparison import compare_on_traces
from repro.evaluation.realism import format_table
from repro.extraction import (
    BasicExtractor,
    FlexOfferParams,
    PeakBasedExtractor,
    RandomBaselineExtractor,
)
from repro.flexoffer.io import save_flexoffers
from repro.pipeline import run_fleet_benchmark, stage_table_rows
from repro.simulation import generate_fleet
from repro.timeseries.io import load_series_csv, save_series_csv

_APPROACHES = {
    "basic": BasicExtractor,
    "peak-based": PeakBasedExtractor,
}


def _parse_date(text: str) -> datetime:
    try:
        return datetime.fromisoformat(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad date {text!r}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flexibility extraction from electricity time series "
        "(Kaulakiene et al., EDBT/ICDT Workshops 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a household fleet to CSV")
    sim.add_argument("--households", type=int, default=5)
    sim.add_argument("--days", type=int, default=7)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--start", type=_parse_date, default=datetime(2012, 3, 5))
    sim.add_argument("--out", type=Path, required=True, help="output directory")

    ext = sub.add_parser("extract", help="extract flex-offers from a CSV series")
    ext.add_argument("--input", type=Path, required=True, help="timestamp,value CSV")
    ext.add_argument("--approach", choices=sorted(_APPROACHES), default="peak-based")
    ext.add_argument("--share", type=float, default=0.05, help="flexible share")
    ext.add_argument("--seed", type=int, default=0)
    ext.add_argument("--out", type=Path, required=True, help="offers JSON path")

    ev = sub.add_parser("evaluate", help="run the approach comparison")
    ev.add_argument("--households", type=int, default=4)
    ev.add_argument("--days", type=int, default=7)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument("--include-random", action="store_true",
                    help="include the random baseline")

    bench = sub.add_parser(
        "bench", help="run the fleet-pipeline benchmark and print the stage table"
    )
    bench.add_argument("--households", type=int, default=20)
    bench.add_argument("--days", type=int, default=7)
    bench.add_argument("--seed", type=int, default=13)
    bench.add_argument("--workers", type=int, default=None,
                       help="fan extraction out over N worker processes")
    bench.add_argument("--chunk-size", type=int, default=8)
    bench.add_argument("--out", type=Path, default=None,
                       help="write the JSON report here (e.g. BENCH_fleet.json)")

    sub.add_parser("figures", help="print the paper's figures (ASCII)")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    fleet = generate_fleet(args.households, args.start, args.days, seed=args.seed)
    for trace in fleet:
        path = args.out / f"{trace.config.household_id}.csv"
        save_series_csv(trace.metered(), path)
        print(f"wrote {path} ({trace.metered().total():.1f} kWh)")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    series = load_series_csv(args.input, name=args.input.stem)
    extractor = _APPROACHES[args.approach](
        params=FlexOfferParams(flexible_share=args.share)
    )
    result = extractor.extract(series, np.random.default_rng(args.seed))
    save_flexoffers(result.offers, args.out)
    print(
        f"{args.approach}: {len(result.offers)} offers, "
        f"{result.extracted_energy:.2f} kWh "
        f"({result.extracted_share:.1%} of input), "
        f"conservation error {result.energy_conservation_error():.2e} kWh"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    fleet = generate_fleet(
        args.households, datetime(2012, 3, 5), args.days, seed=args.seed
    )
    extractors = [
        BasicExtractor(params=FlexOfferParams(flexible_share=0.05)),
        PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05)),
    ]
    if args.include_random:
        extractors.insert(0, RandomBaselineExtractor())
    result = compare_on_traces(fleet.traces, extractors)
    print(format_table(result.mean_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    print(
        f"Fleet benchmark: {args.households} households x {args.days} days "
        f"(seed {args.seed}, workers {args.workers or 1}) ..."
    )
    report, result = run_fleet_benchmark(
        n_households=args.households,
        days=args.days,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        out_path=args.out,
    )
    print(format_table(stage_table_rows(report, result)))
    equivalence = report["equivalence"]
    print(
        f"\nspeedup: {report['speedup']}x over the sequential reference loop; "
        f"batched == sequential: {equivalence['batched_equals_sequential']}; "
        f"reference matches within {equivalence['fidelity_rtol']:g}: "
        f"{equivalence['reference_matches_vectorized']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    # Reuse the example renderer; imported lazily to keep CLI start fast.
    import importlib.util

    path = Path(__file__).resolve().parents[2] / "examples" / "paper_figures.py"
    if path.exists():
        spec = importlib.util.spec_from_file_location("paper_figures", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.show_figure1()
        module.show_figure4()
        module.show_figure5()
        return 0
    # Installed without the examples directory: print the core walkthrough.
    from repro.extraction.peaks import detect_peaks, filter_peaks, selection_probabilities
    from repro.workloads.paper_day import figure5_day

    day = figure5_day()
    peaks = detect_peaks(day.series.values)
    print(f"Figure 5 day: total {day.series.total():.2f} kWh, {len(peaks)} peaks")
    survivors = filter_peaks(peaks, day.filter_threshold)
    for peak, prob in zip(survivors, selection_probabilities(survivors)):
        print(f"  surviving peak size {peak.size:.2f} kWh, P={prob:.0%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "extract": _cmd_extract,
        "evaluate": _cmd_evaluate,
        "bench": _cmd_bench,
        "figures": _cmd_figures,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

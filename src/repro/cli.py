"""Command-line interface: a thin shell over :mod:`repro.api`.

Installed as the ``repro`` console script::

    repro simulate   --households 5 --days 7 --out data/
    repro extract    --input data/hh-0000.csv --approach peak-based \
                     --param flexible_share=0.05 --out offers.json
    repro run        --spec examples/specs/smoke.json --out report.json
    repro session    --replay examples/specs/session_events.json
    repro approaches
    repro evaluate   --households 6 --days 7
    repro bench      --households 20 --days 7 --out BENCH_fleet.json
    repro conformance --out conformance.json
    repro figures

Every subcommand routes through the same service surface programmatic
callers use: extractors are resolved by name via the registry
(``repro approaches`` lists them), whole runs are described by declarative
:class:`~repro.api.spec.RunSpec` JSON files, and
:class:`~repro.api.service.FlexibilityService` executes them.  The CLI
itself only parses flags, loads/saves files and prints tables.
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime
from pathlib import Path

from repro.api import (
    ExtractorSpec,
    FlexibilityService,
    PipelineSpec,
    RunSpec,
    ScenarioSpec,
    available_extractors,
    load_run_spec,
    registry_rows,
)
from repro.errors import ReproError
from repro.evaluation.comparison import DEFAULT_SUITE
from repro.evaluation.realism import format_table
from repro.flexoffer.io import save_flexoffers
from repro.pipeline import stage_table_rows
from repro.simulation import generate_fleet
from repro.timeseries.io import load_series_csv, save_series_csv

_SERVICE = FlexibilityService()

#: The benchmark suites `repro bench --suite` accepts, with one-line
#: descriptions.  Both the argparse choices and the help text are generated
#: from this table, so the help can no longer drift from the real suite
#: names (it previously did when the schedule suite landed).
BENCH_SUITES: dict[str, str] = {
    "fleet": "batched extract->aggregate->schedule pipeline vs the "
    "sequential loop (BENCH_fleet.json)",
    "schedule": "vectorized vs reference placement engine on aggregated "
    "offers (BENCH_schedule.json)",
    "zones": "zone-sharded multi-market scheduling, incremental-gain vs "
    "reference engine (BENCH_zones.json)",
    "market": "merit-order market clearing on the priced 220-aggregate "
    "suite, batched vs reference bid derivation (BENCH_market.json)",
    "scale": "million-household scale-out: streaming throughput ladder, "
    "shared-memory fan-out vs pickling, O(chunk) memory proof and the "
    "engine-crossover sweep (BENCH_scale.json)",
    "uncertainty": "robust quantile-fan scheduling vs point scheduling: "
    "overhead gate, bitwise engine equivalence and per-quantile realized "
    "costs (BENCH_uncertainty.json)",
}


def _parse_date(text: str) -> datetime:
    try:
        return datetime.fromisoformat(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad date {text!r}: {exc}") from exc


def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``key=value`` extractor parameter (JSON-style scalars)."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"bad parameter {text!r}: expected key=value"
        )
    import json

    try:
        value: object = json.loads(raw)
    except ValueError:
        value = raw  # bare strings stay strings
    return key, value


def _parse_sizes(text: str) -> tuple[int, ...]:
    """Parse the scale suite's comma-separated household ladder."""
    try:
        sizes = tuple(int(piece) for piece in text.split(",") if piece.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad sizes {text!r}: {exc}") from exc
    if not sizes or any(size < 1 for size in sizes):
        raise argparse.ArgumentTypeError(
            f"bad sizes {text!r}: expected positive integers"
        )
    return sizes


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flexibility extraction from electricity time series "
        "(Kaulakiene et al., EDBT/ICDT Workshops 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a household fleet to CSV")
    sim.add_argument("--households", type=int, default=5)
    sim.add_argument("--days", type=int, default=7)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--start", type=_parse_date, default=datetime(2012, 3, 5))
    sim.add_argument(
        "--grid", choices=("metered", "total"), default="metered",
        help="which series to write: 15-minute metered (default) or "
        "1-minute total (the appliance-level approaches' input)",
    )
    sim.add_argument("--out", type=Path, required=True, help="output directory")

    ext = sub.add_parser("extract", help="extract flex-offers from a CSV series")
    ext.add_argument("--input", type=Path, required=True, help="timestamp,value CSV")
    ext.add_argument(
        "--approach", choices=available_extractors(), default="peak-based",
        help="any registered approach (see `repro approaches`)",
    )
    ext.add_argument("--share", type=float, default=None,
                     help="flexible share (shorthand for --param flexible_share=X)")
    ext.add_argument(
        "--param", type=_parse_param, action="append", default=[],
        metavar="KEY=VALUE",
        help="extractor parameter, repeatable (e.g. --param engine=reference)",
    )
    ext.add_argument(
        "--reference", type=Path, default=None,
        help="one-tariff reference CSV (required by the multi-tariff approach)",
    )
    ext.add_argument("--seed", type=int, default=0)
    ext.add_argument("--out", type=Path, required=True, help="offers JSON path")

    run = sub.add_parser(
        "run", help="execute a declarative run spec (simulate→extract→aggregate)"
    )
    run.add_argument("--spec", type=Path, required=True, help="RunSpec JSON file")
    run.add_argument("--out", type=Path, default=None,
                     help="write the full RunReport JSON here")
    run.add_argument("--workers", type=int, default=None,
                     help="override the spec's worker fan-out")

    ses = sub.add_parser(
        "session",
        help="replay a recorded ingest/replan/commit event stream through "
        "a rolling-horizon flexibility session",
    )
    ses.add_argument("--replay", type=Path, required=True,
                     help="session events JSON (spec + ordered event list)")
    ses.add_argument("--out", type=Path, default=None,
                     help="write the full replay report JSON here")
    ses.add_argument("--journal", type=Path, default=None,
                     help="journal every event into a durable write-ahead "
                     "log in this directory (crash-recoverable)")
    ses.add_argument("--resume", action="store_true",
                     help="recover the session from --journal first, then "
                     "replay only the events the crashed run never applied")

    sub.add_parser("approaches", help="list every registered extraction approach")

    ev = sub.add_parser("evaluate", help="run the approach comparison")
    ev.add_argument("--households", type=int, default=4)
    ev.add_argument("--days", type=int, default=7)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--approaches", default=None,
        help="comma-separated registry names, or 'suite' for the full "
        "default comparison suite (default: basic,peak-based)",
    )
    ev.add_argument("--include-random", action="store_true",
                    help="include the random baseline")

    bench = sub.add_parser(
        "bench",
        help="run a benchmark suite: the fleet pipeline, the scheduling "
        "engine, or the zone-sharded multi-market scheduler",
    )
    bench.add_argument(
        "--suite", choices=tuple(BENCH_SUITES), default="fleet",
        help="; ".join(f"'{name}' = {text}" for name, text in BENCH_SUITES.items()),
    )
    bench.add_argument("--households", type=int, default=20,
                       help="fleet size (fleet suite)")
    bench.add_argument("--days", type=int, default=None,
                       help="target axis length; defaults to the suite's "
                       "canonical baseline (fleet/schedule/zones/market: 7, "
                       "scale: 30)")
    bench.add_argument("--seed", type=int, default=None,
                       help="workload seed; defaults to the suite's canonical "
                       "baseline seed (fleet: 13, schedule/zones/market: 17, "
                       "scale: 23), so `--out BENCH_*.json` refreshes the "
                       "committed baseline on the same workload the pytest "
                       "gate measures")
    bench.add_argument("--workers", type=int, default=None,
                       help="fan extraction out over N worker processes (fleet suite)")
    bench.add_argument("--chunk-size", type=int, default=8,
                       help="households per batch (fleet suite)")
    bench.add_argument("--aggregates", type=int, default=220,
                       help="aggregated offers to place "
                       "(schedule/zones/market suites)")
    bench.add_argument("--zones", type=int, default=4,
                       help="market zones to shard into (zones/market suites)")
    bench.add_argument("--sizes", type=_parse_sizes, default=None,
                       metavar="N,N,...",
                       help="comma-separated household ladder for the scale "
                       "suite (default: 1000,10000,100000)")
    bench.add_argument("--out", type=Path, default=None,
                       help="write the JSON report here (e.g. BENCH_fleet.json, "
                       "BENCH_schedule.json or BENCH_zones.json)")

    conf = sub.add_parser(
        "conformance",
        help="run the scenario-matrix invariant harness over every "
        "registered extractor",
    )
    conf.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="restrict to one matrix scenario (repeatable; default: all)",
    )
    conf.add_argument(
        "--extractor", action="append", default=None, metavar="NAME",
        help="restrict to one registered approach (repeatable; default: all)",
    )
    conf.add_argument(
        "--invariant", action="append", default=None, metavar="NAME",
        help="restrict to one invariant (repeatable; default: full library)",
    )
    conf.add_argument("--list", action="store_true",
                      help="list the matrix scenarios and invariants, then exit")
    conf.add_argument("--workers", type=int, default=None,
                      help="fan matrix cells out over N worker processes "
                      "(the report is identical to the in-process run)")
    conf.add_argument("--out", type=Path, default=None,
                      help="write the full ConformanceReport JSON here")
    conf.add_argument("--markdown", type=Path, default=None,
                      help="write the report as a markdown table here "
                      "(e.g. for the CI job summary)")

    sub.add_parser("figures", help="print the paper's figures (ASCII)")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    fleet = generate_fleet(args.households, args.start, args.days, seed=args.seed)
    for trace in fleet:
        series = trace.total if args.grid == "total" else trace.metered()
        path = args.out / f"{trace.config.household_id}.csv"
        save_series_csv(series, path)
        print(f"wrote {path} ({series.total():.1f} kWh, {args.grid} grid)")
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    series = load_series_csv(args.input, name=args.input.stem)
    params = dict(args.param)
    if args.share is not None:
        params["flexible_share"] = args.share
    if args.reference is not None:
        params["reference"] = load_series_csv(args.reference, name=args.reference.stem)
    result = _SERVICE.extract(args.approach, series, seed=args.seed, **params)
    save_flexoffers(result.offers, args.out)
    print(
        f"{args.approach}: {len(result.offers)} offers, "
        f"{result.extracted_energy:.2f} kWh "
        f"({result.extracted_share:.1%} of input), "
        f"conservation error {result.energy_conservation_error():.2e} kWh"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_run_spec(args.spec)
    if args.workers is not None:
        spec = spec.with_overrides(
            pipeline=PipelineSpec.from_dict(
                {**spec.pipeline.to_dict(), "workers": args.workers}
            )
        )
    label = spec.name or args.spec.stem
    print(
        f"run {label!r}: kind={spec.kind}, "
        f"{spec.scenario.households} households x {spec.scenario.days} days, "
        f"approaches: {', '.join(e.name for e in spec.extractors)}"
    )
    report = _SERVICE.run(spec)
    print(format_table(report.table_rows()))
    from repro.scheduling.zones import ZonedScheduleResult

    for result in report.results:
        if isinstance(result.schedule, ZonedScheduleResult):
            print(f"\n{result.extractor} — zone schedule:")
            print(format_table(result.schedule.zone_rows()))
            if result.schedule.clearing is not None:
                print(f"\n{result.extractor} — market clearing:")
                print(format_table(result.schedule.clearing.table_rows()))
        if "robust_risk" in result.summary:
            summary = result.summary
            print(f"\n{result.extractor} — uncertainty (robust scheduling):")
            print(
                format_table(
                    [
                        {
                            "quantile": band,
                            "realized_cost": round(summary[key], 4),
                        }
                        for band, key in (
                            ("low", "realized_cost_low_q"),
                            ("median", "realized_cost_median_q"),
                            ("high", "realized_cost_high_q"),
                        )
                    ]
                )
            )
            print(
                f"risk measure: {summary['robust_risk']} over "
                f"{int(summary['robust_scenarios'])} quantile scenarios"
            )
    if args.out is not None:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    from repro.errors import SessionReplayError
    from repro.session import replay_session

    if args.resume and args.journal is None:
        print("error: --resume needs --journal DIR", file=sys.stderr)
        return 2
    try:
        report = replay_session(
            args.replay, journal_dir=args.journal, resume=args.resume
        )
    except SessionReplayError as exc:
        # The partial report is still written: progress up to the failed
        # event survives for diagnosis (and the journal, if any, makes the
        # applied prefix recoverable with --resume).
        if args.out is not None and exc.report is not None:
            import json

            args.out.write_text(json.dumps(exc.report, indent=2, sort_keys=True) + "\n")
            print(f"wrote partial report to {args.out}", file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    label = report["spec_name"] or args.replay.stem
    print(
        f"session {label!r}: {report['events']} events, "
        f"{len(report['replans'])} snapshots"
    )
    print(format_table(report["replans"]))
    print(
        f"\ncommitted placements: {report['committed']}; "
        f"stable across replans: {report['committed_stable']}"
    )
    if args.out is not None:
        import json

        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0 if report["committed_stable"] else 1


def _cmd_approaches(_args: argparse.Namespace) -> int:
    print(format_table(registry_rows()))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.approaches == "suite":
        names = list(DEFAULT_SUITE)
    elif args.approaches:
        names = [n.strip() for n in args.approaches.split(",") if n.strip()]
    else:
        names = ["basic", "peak-based"]
    if args.include_random and "random-baseline" not in names:
        names.insert(0, "random-baseline")
    spec = RunSpec(
        kind="compare",
        scenario=ScenarioSpec(
            households=args.households, days=args.days, seed=args.seed
        ),
        extractors=tuple(ExtractorSpec(name) for name in names),
    )
    report = _SERVICE.run(spec)
    print(format_table(report.table_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "schedule":
        return _cmd_bench_schedule(args)
    if args.suite == "zones":
        return _cmd_bench_zones(args)
    if args.suite == "market":
        return _cmd_bench_market(args)
    if args.suite == "scale":
        return _cmd_bench_scale(args)
    if args.suite == "uncertainty":
        return _cmd_bench_uncertainty(args)
    from repro.pipeline import run_fleet_benchmark

    if args.seed is None:
        args.seed = 13  # the committed BENCH_fleet.json workload
    if args.days is None:
        args.days = 7
    print(
        f"Fleet benchmark: {args.households} households x {args.days} days "
        f"(seed {args.seed}, workers {args.workers or 1}) ..."
    )
    report, result = run_fleet_benchmark(
        n_households=args.households,
        days=args.days,
        seed=args.seed,
        workers=args.workers,
        chunk_size=args.chunk_size,
        out_path=args.out,
    )
    print(format_table(stage_table_rows(report, result)))
    schedule = report["schedule"]
    equivalence = report["equivalence"]
    print(
        f"\nschedule stage: {schedule['placed']} aggregates placed on a "
        f"{schedule['target_kwh']:.1f} kWh target "
        f"({schedule['improvement']:.1%} imbalance reduction)"
    )
    print(
        f"speedup: {report['speedup']}x over the sequential reference loop; "
        f"batched == sequential: {equivalence['batched_equals_sequential']}; "
        f"reference matches within {equivalence['fidelity_rtol']:g}: "
        f"{equivalence['reference_matches_vectorized']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_schedule(args: argparse.Namespace) -> int:
    from repro.scheduling import run_schedule_benchmark, schedule_table_rows

    if args.seed is None:
        args.seed = 17  # the committed BENCH_schedule.json workload
    if args.days is None:
        args.days = 7
    print(
        f"Schedule benchmark: {args.aggregates} aggregated offers x "
        f"{args.days} day target (seed {args.seed}) ..."
    )
    report, _ = run_schedule_benchmark(
        n_aggregates=args.aggregates,
        days=args.days,
        seed=args.seed,
        out_path=args.out,
    )
    print(format_table(schedule_table_rows(report)))
    equivalence = report["equivalence"]
    print(
        f"\ngreedy speedup: {report['greedy']['speedup']}x; placements "
        f"identical: {equivalence['placements_identical']}; cost within "
        f"{equivalence['fidelity_rtol']:g}: {equivalence['cost_match']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_zones(args: argparse.Namespace) -> int:
    from repro.scheduling import run_zones_benchmark, zones_table_rows

    if args.seed is None:
        args.seed = 17  # the committed BENCH_zones.json workload
    if args.days is None:
        args.days = 7
    print(
        f"Zones benchmark: {args.aggregates} aggregated offers sharded into "
        f"{args.zones} market zones x {args.days} day targets (seed {args.seed}) ..."
    )
    report, _ = run_zones_benchmark(
        n_aggregates=args.aggregates,
        days=args.days,
        seed=args.seed,
        zones=args.zones,
        out_path=args.out,
    )
    print(format_table(zones_table_rows(report)))
    greedy = report["greedy"]
    equivalence = report["equivalence"]
    print(
        f"\nincremental engine: {greedy['incremental_seconds']}s "
        f"({greedy['speedup_vs_reference']}x vs reference, "
        f"{greedy['speedup_vs_vectorized']}x vs vectorized); placements "
        f"identical to vectorized: "
        f"{equivalence['incremental_identical_to_vectorized']}; "
        f"workers fan-out identical: {equivalence['workers_match_sequential']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_market(args: argparse.Namespace) -> int:
    from repro.market import market_table_rows, run_market_benchmark

    if args.seed is None:
        args.seed = 17  # the committed BENCH_market.json workload
    if args.days is None:
        args.days = 7
    print(
        f"Market benchmark: {args.aggregates} priced aggregates cleared over "
        f"{args.zones} zone markets x {args.days} day targets (seed {args.seed}) ..."
    )
    report, _ = run_market_benchmark(
        n_aggregates=args.aggregates,
        days=args.days,
        seed=args.seed,
        zones=args.zones,
        out_path=args.out,
    )
    print(format_table(market_table_rows(report)))
    clearing = report["clearing"]
    equivalence = report["equivalence"]
    print(
        f"\nclearing speedup: {clearing['speedup']}x over the reference "
        f"scalar loops; acceptance sets identical: "
        f"{equivalence['acceptance_identical']}; prices bitwise: "
        f"{equivalence['prices_identical']}; welfare within "
        f"{equivalence['fidelity_rtol']:g}: {equivalence['welfare_match']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    from repro.pipeline import SCALE_SIZES, run_scale_benchmark, scale_table_rows

    if args.seed is None:
        args.seed = 23  # the committed BENCH_scale.json workload
    if args.days is None:
        args.days = 30
    sizes = args.sizes if args.sizes is not None else SCALE_SIZES
    print(
        f"Scale benchmark: {', '.join(str(s) for s in sizes)} households x "
        f"{args.days} days (seed {args.seed}) ..."
    )
    report = run_scale_benchmark(
        sizes=sizes,
        days=args.days,
        seed=args.seed,
        out_path=args.out,
    )
    print(format_table(scale_table_rows(report)))
    fanout = report["fanout"]
    streaming = report["streaming"]
    crossover = report["crossover"]
    print(
        f"\nshared-memory fan-out: {fanout['speedup']}x over pickling "
        f"(gate >= 2x: {fanout['meets_min_speedup']}); streaming peak "
        f"chunk-bound: {streaming['peak_is_chunk_bound']} "
        f"({streaming['peak_growth_at_3x_households']}x peak at 3x "
        f"households); auto picks the sparse winner: "
        f"{crossover['auto_picks_sparse_winner']}; engines bitwise "
        f"identical on every rung: {crossover['all_rungs_bitwise_identical']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_uncertainty(args: argparse.Namespace) -> int:
    from repro.scheduling import run_uncertainty_benchmark, uncertainty_table_rows

    if args.seed is None:
        args.seed = 17  # the committed BENCH_uncertainty.json workload
    if args.days is None:
        args.days = 7
    print(
        f"Uncertainty benchmark: {args.aggregates} aggregated offers x "
        f"{args.days} day target, robust quantile fan vs point scheduling "
        f"(seed {args.seed}) ..."
    )
    report, _ = run_uncertainty_benchmark(
        n_aggregates=args.aggregates,
        days=args.days,
        seed=args.seed,
        out_path=args.out,
    )
    print(format_table(uncertainty_table_rows(report)))
    greedy = report["greedy"]
    equivalence = report["equivalence"]
    print(
        f"\nrobust overhead: {greedy['overhead']}x point scheduling "
        f"(gate <= {greedy['overhead_gate']:g}x: {greedy['meets_overhead_gate']}); "
        f"reference identical: {equivalence['robust_reference_identical']}; "
        f"deterministic: {equivalence['deterministic_across_runs']}"
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import INVARIANTS, scenario_matrix

    if args.list:
        rows = [
            {
                "scenario": s.name,
                "tags": ",".join(sorted(s.tags)),
                "description": s.description,
            }
            for s in scenario_matrix()
        ]
        print(format_table(rows))
        print(f"\ninvariants: {', '.join(INVARIANTS)}")
        return 0
    report = _SERVICE.conformance(
        scenarios=args.scenario,
        extractors=args.extractor,
        invariants=args.invariant,
        workers=args.workers,
    )
    print(format_table(report.table_rows()))
    summary = report.summary()
    print(
        f"\n{summary['cells']} cells: {summary['passed']} passed, "
        f"{summary['failed']} failed, {summary['violations']} violations"
    )
    for violation in report.violations():
        print(f"  {violation}", file=sys.stderr)
    if args.out is not None:
        report.save(args.out)
        print(f"wrote {args.out}")
    if args.markdown is not None:
        report.save_markdown(args.markdown)
        print(f"wrote {args.markdown}")
    return 0 if report.passed else 1


def _cmd_figures(_args: argparse.Namespace) -> int:
    # The renderers ship inside the wheel (repro.examples); imported lazily
    # to keep CLI start fast, with a library-only fallback for stripped
    # installs (e.g. a vendored copy without the examples subpackage).
    import importlib

    try:
        module = importlib.import_module("repro.examples.paper_figures")
    except ImportError:
        module = None
    if module is not None:
        module.show_figure1()
        module.show_figure4()
        module.show_figure5()
        return 0
    # Examples absent: print the core Figure 5 walkthrough from the library.
    from repro.extraction.peaks import detect_peaks, filter_peaks, selection_probabilities
    from repro.workloads.paper_day import figure5_day

    day = figure5_day()
    peaks = detect_peaks(day.series.values)
    print(f"Figure 5 day: total {day.series.total():.2f} kWh, {len(peaks)} peaks")
    survivors = filter_peaks(peaks, day.filter_threshold)
    for peak, prob in zip(survivors, selection_probabilities(survivors)):
        print(f"  surviving peak size {peak.size:.2f} kWh, P={prob:.0%}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "extract": _cmd_extract,
        "run": _cmd_run,
        "session": _cmd_session,
        "approaches": _cmd_approaches,
        "evaluate": _cmd_evaluate,
        "bench": _cmd_bench,
        "conformance": _cmd_conformance,
        "figures": _cmd_figures,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Usage-frequency estimation — step 1 of the frequency-based extractor.

Paper §4.1: "The output of the step 1 is a shortlist of the possibly used
appliances, their usage frequency, and the time flexibility (difference
between latest start time and earliest start time)."

Given detected activations (from any disaggregator), this module derives the
shortlist with per-appliance weekly frequencies, day-type weights and the
time flexibility pulled from the appliance specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from repro.appliances.database import ApplianceDatabase
from repro.appliances.usage import UsageFrequency
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.calendar import DayType, day_type


@dataclass(frozen=True, slots=True)
class ShortlistEntry:
    """One row of the §4.1 shortlist: appliance, frequency, flexibility."""

    appliance: str
    detections: int
    frequency: UsageFrequency
    time_flexibility: timedelta
    mean_energy_kwh: float
    flexible: bool

    def describe(self) -> str:
        """Readable one-liner, e.g. 'washing-machine-y: 3.1x/week, flex 8h'."""
        hours = self.time_flexibility.total_seconds() / 3600.0
        return (
            f"{self.appliance}: {self.frequency.describe()}, "
            f"{self.mean_energy_kwh:.2f} kWh/use, flex {hours:.0f}h"
        )


@dataclass(frozen=True)
class FrequencyTable:
    """The step-1 output: shortlist of appliances with usage frequencies."""

    entries: tuple[ShortlistEntry, ...]
    observation_days: int

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, appliance: str) -> ShortlistEntry:
        """Entry for one appliance; raises :class:`KeyError` when absent."""
        for entry in self.entries:
            if entry.appliance == appliance:
                return entry
        raise KeyError(f"appliance {appliance!r} not in shortlist")

    def __contains__(self, appliance: str) -> bool:
        return any(e.appliance == appliance for e in self.entries)

    def flexible_entries(self) -> list[ShortlistEntry]:
        """Shortlist rows for shiftable appliances only."""
        return [e for e in self.entries if e.flexible]


def estimate_frequencies(
    detections: list[Activation],
    database: ApplianceDatabase,
    observation_days: int,
    min_detections: int = 2,
) -> FrequencyTable:
    """Build the appliance shortlist from detected activations.

    Appliances with fewer than ``min_detections`` events are dropped (they are
    likely disaggregation noise).  Day-type weights are estimated from the
    empirical distribution of detections over workdays/Saturdays/Sundays,
    normalised against their calendar share of the observation window.
    """
    if observation_days < 1:
        raise DataError("observation_days must be >= 1")
    groups: dict[str, list[Activation]] = {}
    for det in detections:
        groups.setdefault(det.appliance, []).append(det)

    entries = []
    for appliance, acts in sorted(groups.items()):
        if len(acts) < min_detections:
            continue
        spec = database.get(appliance)
        weeks = observation_days / 7.0
        uses_per_week = len(acts) / weeks

        counts = {t: 0 for t in DayType}
        for act in acts:
            counts[day_type(act.start.date())] += 1
        # Calendar composition of a standard week, used to normalise counts
        # into relative per-day propensities.
        calendar_share = {DayType.WORKDAY: 5.0, DayType.SATURDAY: 1.0, DayType.SUNDAY: 1.0}
        weights = {}
        for t in DayType:
            expected_days = calendar_share[t] * weeks
            weights[t] = (counts[t] / expected_days) if expected_days > 0 else 0.0
        # Normalise so the mean weight is 1 (pure shape, not rate).
        mean_weight = sum(weights.values()) / len(weights)
        if mean_weight > 0:
            weights = {t: w / mean_weight for t, w in weights.items()}
        else:
            weights = {t: 1.0 for t in DayType}

        entries.append(
            ShortlistEntry(
                appliance=appliance,
                detections=len(acts),
                frequency=UsageFrequency(uses_per_week, day_type_weights=weights),
                time_flexibility=spec.time_flexibility,
                mean_energy_kwh=float(
                    sum(a.energy_kwh for a in acts) / len(acts)
                ),
                flexible=spec.flexible,
            )
        )
    return FrequencyTable(entries=tuple(entries), observation_days=observation_days)

"""NILM machinery: baseline removal, event detection, disaggregation, mining.

The substrate of the appliance-level extraction approaches (§4): rolling
baseline removal, greedy template-matching disaggregation, combinatorial
refinement, usage-frequency estimation and habit-window mining.

Subsystem contract:

* **Engine equivalence** — the matching-pursuit engine is selectable via
  ``MatchingConfig(engine=...)``: the vectorized engine (shared residual
  FFT, incremental correlation patching) reproduces the seed
  ``"reference"`` loop's detections within ``rtol=1e-9`` on every offer
  energy, asserted by the fleet benchmark and the conformance matrix's
  ``engine-fidelity`` invariant.
* **Determinism** — disaggregation consumes no randomness; identical
  series and database give identical detections in any process.
"""

from repro.disaggregation.baseline import remove_baseline, rolling_baseline
from repro.disaggregation.clustering import (
    KMeansResult,
    daily_profile_matrix,
    kmeans,
    typical_daily_profiles,
)
from repro.disaggregation.combinatorial import (
    CombinatorialConfig,
    disaggregate_combinatorial,
)
from repro.disaggregation.events import Edge, detect_edges, pair_edges
from repro.disaggregation.frequency import (
    FrequencyTable,
    ShortlistEntry,
    estimate_frequencies,
)
from repro.disaggregation.matching import (
    DetectionResult,
    MatchingConfig,
    match_pursuit,
)
from repro.disaggregation.schedule_mining import (
    MinedSchedule,
    count_day_types,
    mine_schedule,
)

__all__ = [
    "remove_baseline",
    "rolling_baseline",
    "KMeansResult",
    "daily_profile_matrix",
    "kmeans",
    "typical_daily_profiles",
    "CombinatorialConfig",
    "disaggregate_combinatorial",
    "Edge",
    "detect_edges",
    "pair_edges",
    "FrequencyTable",
    "ShortlistEntry",
    "estimate_frequencies",
    "DetectionResult",
    "MatchingConfig",
    "match_pursuit",
    "MinedSchedule",
    "count_day_types",
    "mine_schedule",
]

"""Template-matching disaggregation (matching pursuit over appliance profiles).

Step 1 of the appliance-level extractors (paper §4) must "derive which
appliance and how frequently was used" from the total series given
manufacturer profiles (Table 1).  This module implements the workhorse:
a greedy matching pursuit that repeatedly finds the (appliance, start) whose
scaled template best explains the residual series, subtracts it, and repeats.

Two engines implement the same greedy semantics:

* ``"vectorized"`` (default) — the fleet-scale hot path.  Per-offset energy
  maps are kept alive across iterations and *patched* in the region a
  subtraction touched (direct correlation over the changed window), the
  initial maps share one FFT of the residual against the database's cached
  template FFTs, and candidate selection (per-day non-max suppression plus
  placement scoring) runs as numpy array passes instead of Python loops.
* ``"reference"`` — the original per-call implementation, kept both as the
  behavioural reference and as the baseline the fleet benchmark measures
  speedups against.

Both engines are deterministic; they may differ in float round-off (FFT vs
direct correlation) and can therefore make different greedy picks on
near-ties, but they honour identical acceptance rules.  The ablation bench
compares matching against the combinatorial and event-based alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.fft import next_fast_len
from scipy.signal import fftconvolve

from repro.appliances.database import ApplianceDatabase, ApplianceTemplate
from repro.appliances.model import ApplianceSpec
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.axis import ONE_MINUTE
from repro.timeseries.series import TimeSeries

_MINUTES_PER_DAY = 24 * 60
_PER_DAY_QUOTA = 6

_ENGINES = ("vectorized", "reference")


@dataclass(frozen=True, slots=True)
class MatchingConfig:
    """Knobs of the matching-pursuit disaggregator.

    ``min_score`` is the minimum fraction of a template's energy that the fit
    must explain for a match to be accepted; raising it trades recall for
    precision.  ``energy_slack`` widens appliance energy ranges when clamping
    fitted energies (overlapping loads inflate the local estimate).
    ``engine`` selects the implementation: the vectorized fleet engine or the
    original per-call reference.
    """

    max_iterations: int = 200
    min_score: float = 0.55
    energy_slack: float = 0.15
    residual_floor_kwh: float = 0.05
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise DataError("max_iterations must be >= 1")
        if not 0.0 < self.min_score <= 1.0:
            raise DataError("min_score must be in (0, 1]")
        if self.engine not in _ENGINES:
            raise DataError(f"engine must be one of {_ENGINES}, got {self.engine!r}")


@dataclass(frozen=True)
class DetectionResult:
    """Output of a disaggregation run: events plus the unexplained residual."""

    detections: list[Activation]
    residual: TimeSeries
    explained_kwh: float

    def by_appliance(self) -> dict[str, list[Activation]]:
        """Group detections per appliance name."""
        groups: dict[str, list[Activation]] = {}
        for det in self.detections:
            groups.setdefault(det.appliance, []).append(det)
        return groups


def _fit_energy(window: np.ndarray, shape: np.ndarray) -> float:
    """Least-squares scale of a unit-energy shape against a residual window."""
    denom = float(np.dot(shape, shape))
    if denom == 0.0:
        return 0.0
    return float(np.dot(window, shape) / denom)


def _correlation_scores(
    residual: np.ndarray, shape: np.ndarray, denom: float | None = None
) -> np.ndarray:
    """Per-offset least-squares energy estimates via FFT correlation.

    Entry ``t`` is the best-fitting energy for a cycle starting at ``t``:
    ``<residual[t:t+m], shape> / <shape, shape>`` computed for all offsets at
    once with :func:`numpy.correlate` semantics.  ``denom`` may pass the
    cached ``<shape, shape>`` (see :meth:`ApplianceDatabase.template`).
    """
    m = len(shape)
    if m > len(residual):
        return np.zeros(0)
    # 'valid' correlation: sum over the template support at every offset.
    # FFT-based for long series (the 1-minute grid easily reaches 10^4-10^5
    # samples), exact direct correlation for short ones.
    if len(residual) > 4096:
        corr = fftconvolve(residual, shape[::-1], mode="valid")
    else:
        corr = np.correlate(residual, shape, mode="valid")
    if denom is None:
        denom = float(np.dot(shape, shape))
    return corr / denom


def _placement_score(window: np.ndarray, shape: np.ndarray, energy: float) -> float:
    """How well a scaled template explains a residual window, in [0, 1].

    The score multiplies two factors:

    * *coverage* — fraction of the template's energy present in the window
      (``sum(min(window, template)) / energy``); punishes placements where
      the appliance's power simply is not there.
    * *shape similarity* — total-variation similarity between the window's
      normalised energy distribution and the template's; punishes fitting a
      spiky appliance onto flat residual mass (and vice versa), which is the
      classic failure mode of coverage-only matching.
    """
    template = shape * energy
    positive = np.clip(window, 0.0, None)
    coverage = float(np.minimum(positive, template).sum() / energy) if energy > 0 else 0.0
    mass = float(positive.sum())
    if mass <= 0.0:
        return 0.0
    window_density = positive / mass
    similarity = 1.0 - 0.5 * float(np.abs(window_density - shape).sum())
    return coverage * max(0.0, similarity)


def match_pursuit(
    series: TimeSeries,
    database: ApplianceDatabase,
    config: MatchingConfig | None = None,
    household_id: str = "",
) -> DetectionResult:
    """Disaggregate a 1-minute series by greedy template matching.

    At each iteration, for every appliance in ``database`` the best start
    offset and least-squares energy are computed; the candidate with the
    highest *explained energy fraction* (1 − residual-gain ratio on its
    window) is accepted if it clears ``config.min_score`` and its fitted
    energy is inside the appliance's (slack-widened) range.  Its profile is
    subtracted and the search repeats.
    """
    if series.axis.resolution != ONE_MINUTE:
        raise DataError("match_pursuit expects a 1-minute series")
    config = config or MatchingConfig()
    if config.engine == "reference":
        return _match_pursuit_reference(series, database, config, household_id)
    return _match_pursuit_vectorized(series, database, config, household_id)


# ---------------------------------------------------------------------- #
# Vectorized engine (fleet hot path)
# ---------------------------------------------------------------------- #


def _initial_energy_maps(
    residual: np.ndarray, templates: list[ApplianceTemplate]
) -> list[np.ndarray]:
    """Per-offset energy maps for every template, off one residual FFT.

    The residual is transformed once; each template contributes only a
    cached frequency-domain multiply plus one inverse transform, instead of
    a full :func:`fftconvolve` per appliance.
    """
    n = len(residual)
    lengths = [t.length for t in templates if t.length <= n]
    if not lengths:
        return [np.zeros(0) for _ in templates]
    nfft = next_fast_len(n + max(lengths) - 1)
    residual_fft = np.fft.rfft(residual, nfft)
    maps: list[np.ndarray] = []
    for template in templates:
        m = template.length
        if m > n:
            maps.append(np.zeros(0))
            continue
        corr = np.fft.irfft(residual_fft * template.rfft_reversed(nfft), nfft)
        maps.append(corr[m - 1 : n] / template.denom)
    return maps


def _patch_energy_map(
    energies: np.ndarray,
    residual: np.ndarray,
    template: ApplianceTemplate,
    changed_lo: int,
    changed_hi: int,
) -> None:
    """Recompute the energy map only where the residual changed.

    A subtraction at ``[changed_lo, changed_hi)`` perturbs the correlation
    at offsets ``[changed_lo − m + 1, changed_hi)``; those entries are
    refreshed with an exact direct correlation over the affected window.
    """
    m = template.length
    if energies.size == 0:
        return
    lo = max(0, changed_lo - m + 1)
    hi = min(energies.size, changed_hi)
    if lo >= hi:
        return
    segment = residual[lo : hi + m - 1]
    energies[lo:hi] = np.correlate(segment, template.shape, mode="valid") / template.denom


def _day_nms_candidates(
    day_idx: np.ndarray, day_energies: np.ndarray, cycle_minutes: int
) -> list[int]:
    """Top candidates of one day with non-max suppression, in selection order.

    Feasible offsets are taken in decreasing fitted-energy order, keeping at
    most :data:`_PER_DAY_QUOTA` that are at least half a cycle apart.  The
    per-day quota guarantees every day's local events stay in the running
    even when other days carry much larger loads — a global top-K would
    crowd them out.

    Selection runs as repeated masked argmax passes rather than a Python
    scan of the sorted order; exact energy ties break deterministically
    towards the largest offset (the reference engine's ``argsort`` order
    is unspecified on exact ties, which the engine-equivalence disclaimer
    at module level already covers).
    """
    half = cycle_minutes // 2
    spread: list[int] = []
    masked = day_energies.copy()
    reversed_view = masked[::-1]
    for _ in range(_PER_DAY_QUOTA):
        j = masked.size - 1 - int(reversed_view.argmax())
        if masked[j] == -np.inf:
            break
        t = int(day_idx[j])
        spread.append(t)
        masked[np.abs(day_idx - t) < half] = -np.inf
        masked[j] = -np.inf
    return spread


def _window_view(
    residual: np.ndarray, m: int, cache: dict[int, np.ndarray] | None
) -> np.ndarray:
    """The (n − m + 1, m) sliding-window view of the residual, cached.

    The pursuit mutates the residual *in place*, so a stride-trick view
    built once per template length stays valid for the whole run; building
    it per scoring call is pure per-call overhead (it dominated the batch
    scorer's profile at fleet scale).
    """
    if cache is None:
        return np.lib.stride_tricks.sliding_window_view(residual, m)
    view = cache.get(m)
    if view is None:
        view = np.lib.stride_tricks.sliding_window_view(residual, m)
        cache[m] = view
    return view


def _placement_scores_batch(
    residual: np.ndarray,
    starts: np.ndarray,
    shape: np.ndarray,
    energies: np.ndarray,
    window_cache: dict[int, np.ndarray] | None = None,
) -> np.ndarray:
    """:func:`_placement_score` for many placements of one template at once."""
    m = len(shape)
    windows = _window_view(residual, m, window_cache)[starts]
    positive = np.maximum(windows, 0.0)
    templates = energies[:, None] * shape[None, :]
    safe_energy = np.where(energies > 0.0, energies, 1.0)
    coverage = np.minimum(positive, templates).sum(axis=1) / safe_energy
    coverage[energies <= 0.0] = 0.0
    mass = positive.sum(axis=1)
    safe_mass = np.where(mass > 0.0, mass, 1.0)
    similarity = 1.0 - 0.5 * np.abs(positive / safe_mass[:, None] - shape[None, :]).sum(axis=1)
    scores = coverage * np.maximum(similarity, 0.0)
    scores[mass <= 0.0] = 0.0
    return scores


def _day_best_candidate(
    residual: np.ndarray,
    energies: np.ndarray,
    day: int,
    spec: ApplianceSpec,
    template: ApplianceTemplate,
    config: MatchingConfig,
    accepted: list[int],
    window_cache: dict[int, np.ndarray] | None = None,
) -> tuple[float, int, float] | None:
    """Best (score, start, energy) placement of one appliance in one day.

    Placements overlapping an already-accepted run of the *same* appliance
    are skipped — one machine cannot run two cycles concurrently.
    """
    first = day * _MINUTES_PER_DAY
    if first >= energies.size:
        return None
    segment = energies[first : first + _MINUTES_PER_DAY]
    lo = spec.energy_min_kwh * (1.0 - config.energy_slack)
    hi = spec.energy_max_kwh * (1.0 + config.energy_slack)
    relative = np.flatnonzero((segment >= lo) & (segment <= hi))
    if relative.size == 0:
        return None
    day_idx = relative + first
    spread = _day_nms_candidates(day_idx, segment[relative], template.length)
    if not spread:
        return None
    starts = np.asarray(spread)
    if accepted:
        accepted_arr = np.asarray(accepted)
        far = (np.abs(starts[:, None] - accepted_arr[None, :]) >= template.length).all(axis=1)
        starts = starts[far]
        if starts.size == 0:
            return None
    clamped = np.clip(energies[starts], lo, hi)
    scores = _placement_scores_batch(
        residual, starts, template.shape, clamped, window_cache
    )
    best = int(scores.argmax())
    return float(scores[best]), int(starts[best]), float(clamped[best])


def _match_pursuit_vectorized(
    series: TimeSeries,
    database: ApplianceDatabase,
    config: MatchingConfig,
    household_id: str,
) -> DetectionResult:
    residual = series.values.copy()
    n = residual.size
    detections: list[Activation] = []
    accepted_starts: dict[str, list[int]] = {}
    explained = 0.0

    specs = list(database)
    templates = database.templates()
    energy_maps = _initial_energy_maps(residual, templates)
    n_days = -(-n // _MINUTES_PER_DAY)

    # Incremental candidate cache: each (appliance, day) keeps its best
    # placement between iterations and is recomputed only when a subtraction
    # touched offsets that could change it.  Per-day non-max suppression,
    # score windows and same-appliance overlap exclusion are all local to
    # the patched region, so the cache is exact, not approximate.
    day_best: list[list[tuple[float, int, float] | None]] = [
        [None] * n_days for _ in specs
    ]
    dirty = np.ones((len(specs), n_days), dtype=bool)
    # Cached candidate scores, −inf for "no feasible placement".  The greedy
    # pick is then a single row-major argmax instead of a Python scan over
    # every cached (appliance, day) cell each iteration; first-occurrence
    # argmax reproduces the scan's tie-break exactly (earliest appliance,
    # then earliest day).
    scores2d = np.full((len(specs), n_days), -np.inf)
    # Sliding windows over the (in-place mutated) residual, one view per
    # template length, shared by every scoring call of the whole pursuit.
    window_cache: dict[int, np.ndarray] = {}

    for _ in range(config.max_iterations):
        for index, spec in enumerate(specs):
            energies = energy_maps[index]
            if energies.size == 0 or not dirty[index].any():
                continue
            accepted = accepted_starts.get(spec.name, [])
            for day in np.flatnonzero(dirty[index]):
                day = int(day)
                candidate = _day_best_candidate(
                    residual,
                    energies,
                    day,
                    spec,
                    templates[index],
                    config,
                    accepted,
                    window_cache,
                )
                day_best[index][day] = candidate
                scores2d[index, day] = -np.inf if candidate is None else candidate[0]
            dirty[index] = False
        flat = int(scores2d.argmax())
        best_score = float(scores2d.flat[flat])
        if best_score == -np.inf or best_score < config.min_score:
            break
        index, day = divmod(flat, n_days)
        _, t, energy = day_best[index][day]
        spec = specs[index]
        m = spec.cycle_minutes
        template = spec.shape * energy
        residual[t : t + m] -= template
        # Allow small negative residual (estimation error) but keep mass sane.
        floor = -(templates[index].peak * energy)
        below = residual < floor
        changed_lo, changed_hi = t, t + m
        if below.any():
            below_idx = np.flatnonzero(below)
            residual[below_idx] = floor
            changed_lo = min(changed_lo, int(below_idx[0]))
            changed_hi = max(changed_hi, int(below_idx[-1]) + 1)
        for spec_index, spec_template in enumerate(templates):
            _patch_energy_map(
                energy_maps[spec_index], residual, spec_template, changed_lo, changed_hi
            )
            # Candidates whose feasibility, suppression, score window or
            # overlap exclusion could have moved all start within
            # [changed_lo - m + 1, changed_hi); flag the days covering it.
            patch_lo = max(0, changed_lo - spec_template.length + 1)
            first_day = patch_lo // _MINUTES_PER_DAY
            last_day = min(changed_hi - 1, n - 1) // _MINUTES_PER_DAY
            dirty[spec_index, first_day : last_day + 1] = True
        accepted_starts.setdefault(spec.name, []).append(t)
        detections.append(
            Activation(
                appliance=spec.name,
                start=series.axis.time_at(t),
                energy_kwh=energy,
                duration=spec.cycle_duration,
                flexible=spec.flexible,
                household_id=household_id,
            )
        )
        explained += energy
        if float(np.maximum(residual, 0.0).sum()) < config.residual_floor_kwh:
            break

    detections.sort(key=lambda a: a.start)
    return DetectionResult(
        detections=detections,
        residual=series.with_values(np.maximum(residual, 0.0)).with_name("residual"),
        explained_kwh=explained,
    )


# ---------------------------------------------------------------------- #
# Reference engine (original per-call implementation; benchmark baseline)
# ---------------------------------------------------------------------- #


def _best_placement(
    residual: np.ndarray,
    spec: ApplianceSpec,
    config: MatchingConfig,
    accepted: list[int],
) -> tuple[float, int, float] | None:
    """Best (score, start, energy) placement of one appliance, or ``None``.

    Placements overlapping an already-accepted run of the *same* appliance
    are skipped — one machine cannot run two cycles concurrently.
    """
    shape = spec.shape
    m = len(shape)
    energies = _correlation_scores(residual, shape)
    if energies.size == 0:
        return None
    lo = spec.energy_min_kwh * (1.0 - config.energy_slack)
    hi = spec.energy_max_kwh * (1.0 + config.energy_slack)
    feasible = np.flatnonzero((energies >= lo) & (energies <= hi))
    if feasible.size == 0:
        return None
    # Candidate selection with a per-day quota: within each day, keep the
    # top few feasible offsets by fitted energy, spaced at least half a
    # cycle apart (non-max suppression).  The quota guarantees every day's
    # local events stay in the running even when other days carry much
    # larger loads — a global top-K would crowd them out.
    spread: list[int] = []
    day_of = feasible // _MINUTES_PER_DAY
    for day in np.unique(day_of):
        day_idx = feasible[day_of == day]
        order = day_idx[np.argsort(energies[day_idx])[::-1]]
        kept: list[int] = []
        for t in order:
            t = int(t)
            if all(abs(t - u) >= m // 2 for u in kept):
                kept.append(t)
            if len(kept) >= _PER_DAY_QUOTA:
                break
        spread.extend(kept)
    best: tuple[float, int, float] | None = None
    for t in spread:
        if any(abs(t - prev) < m for prev in accepted):
            continue
        energy = float(np.clip(energies[t], lo, hi))
        score = _placement_score(residual[t : t + m], shape, energy)
        if best is None or score > best[0]:
            best = (score, t, energy)
    return best


def _match_pursuit_reference(
    series: TimeSeries,
    database: ApplianceDatabase,
    config: MatchingConfig,
    household_id: str,
) -> DetectionResult:
    residual = series.values.copy()
    detections: list[Activation] = []
    accepted_starts: dict[str, list[int]] = {}
    explained = 0.0

    specs = list(database)
    for _ in range(config.max_iterations):
        best: tuple[float, ApplianceSpec, int, float] | None = None
        for spec in specs:
            candidate = _best_placement(
                residual, spec, config, accepted_starts.get(spec.name, [])
            )
            if candidate is None:
                continue
            score, t, energy = candidate
            if score < config.min_score:
                continue
            if best is None or score > best[0]:
                best = (score, spec, t, energy)
        if best is None:
            break
        _, spec, t, energy = best
        m = spec.cycle_minutes
        template = spec.shape * energy
        residual[t : t + m] -= template
        # Allow small negative residual (estimation error) but keep mass sane.
        np.clip(residual, -template.max(), None, out=residual)
        accepted_starts.setdefault(spec.name, []).append(t)
        detections.append(
            Activation(
                appliance=spec.name,
                start=series.axis.time_at(t),
                energy_kwh=energy,
                duration=spec.cycle_duration,
                flexible=spec.flexible,
                household_id=household_id,
            )
        )
        explained += energy
        if float(np.clip(residual, 0.0, None).sum()) < config.residual_floor_kwh:
            break

    detections.sort(key=lambda a: a.start)
    return DetectionResult(
        detections=detections,
        residual=series.with_values(np.clip(residual, 0.0, None)).with_name("residual"),
        explained_kwh=explained,
    )

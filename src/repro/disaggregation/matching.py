"""Template-matching disaggregation (matching pursuit over appliance profiles).

Step 1 of the appliance-level extractors (paper §4) must "derive which
appliance and how frequently was used" from the total series given
manufacturer profiles (Table 1).  This module implements the workhorse:
a greedy matching pursuit that repeatedly finds the (appliance, start) whose
scaled template best explains the residual series, subtracts it, and repeats.

The algorithm is deliberately simple and fully deterministic; the ablation
bench compares it against the combinatorial and event-based alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.signal import fftconvolve

from repro.appliances.database import ApplianceDatabase
from repro.appliances.model import ApplianceSpec
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.axis import ONE_MINUTE
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class MatchingConfig:
    """Knobs of the matching-pursuit disaggregator.

    ``min_score`` is the minimum fraction of a template's energy that the fit
    must explain for a match to be accepted; raising it trades recall for
    precision.  ``energy_slack`` widens appliance energy ranges when clamping
    fitted energies (overlapping loads inflate the local estimate).
    """

    max_iterations: int = 200
    min_score: float = 0.55
    energy_slack: float = 0.15
    residual_floor_kwh: float = 0.05

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise DataError("max_iterations must be >= 1")
        if not 0.0 < self.min_score <= 1.0:
            raise DataError("min_score must be in (0, 1]")


@dataclass(frozen=True)
class DetectionResult:
    """Output of a disaggregation run: events plus the unexplained residual."""

    detections: list[Activation]
    residual: TimeSeries
    explained_kwh: float

    def by_appliance(self) -> dict[str, list[Activation]]:
        """Group detections per appliance name."""
        groups: dict[str, list[Activation]] = {}
        for det in self.detections:
            groups.setdefault(det.appliance, []).append(det)
        return groups


def _fit_energy(window: np.ndarray, shape: np.ndarray) -> float:
    """Least-squares scale of a unit-energy shape against a residual window."""
    denom = float(np.dot(shape, shape))
    if denom == 0.0:
        return 0.0
    return float(np.dot(window, shape) / denom)


def _correlation_scores(residual: np.ndarray, shape: np.ndarray) -> np.ndarray:
    """Per-offset least-squares energy estimates via FFT correlation.

    Entry ``t`` is the best-fitting energy for a cycle starting at ``t``:
    ``<residual[t:t+m], shape> / <shape, shape>`` computed for all offsets at
    once with :func:`numpy.correlate` semantics.
    """
    m = len(shape)
    if m > len(residual):
        return np.zeros(0)
    # 'valid' correlation: sum over the template support at every offset.
    # FFT-based for long series (the 1-minute grid easily reaches 10^4-10^5
    # samples), exact direct correlation for short ones.
    if len(residual) > 4096:
        corr = fftconvolve(residual, shape[::-1], mode="valid")
    else:
        corr = np.correlate(residual, shape, mode="valid")
    return corr / float(np.dot(shape, shape))


def _placement_score(window: np.ndarray, shape: np.ndarray, energy: float) -> float:
    """How well a scaled template explains a residual window, in [0, 1].

    The score multiplies two factors:

    * *coverage* — fraction of the template's energy present in the window
      (``sum(min(window, template)) / energy``); punishes placements where
      the appliance's power simply is not there.
    * *shape similarity* — total-variation similarity between the window's
      normalised energy distribution and the template's; punishes fitting a
      spiky appliance onto flat residual mass (and vice versa), which is the
      classic failure mode of coverage-only matching.
    """
    template = shape * energy
    positive = np.clip(window, 0.0, None)
    coverage = float(np.minimum(positive, template).sum() / energy) if energy > 0 else 0.0
    mass = float(positive.sum())
    if mass <= 0.0:
        return 0.0
    window_density = positive / mass
    similarity = 1.0 - 0.5 * float(np.abs(window_density - shape).sum())
    return coverage * max(0.0, similarity)


def _best_placement(
    residual: np.ndarray,
    spec: ApplianceSpec,
    config: MatchingConfig,
    accepted: list[int],
) -> tuple[float, int, float] | None:
    """Best (score, start, energy) placement of one appliance, or ``None``.

    Placements overlapping an already-accepted run of the *same* appliance
    are skipped — one machine cannot run two cycles concurrently.
    """
    shape = spec.shape
    m = len(shape)
    energies = _correlation_scores(residual, shape)
    if energies.size == 0:
        return None
    lo = spec.energy_min_kwh * (1.0 - config.energy_slack)
    hi = spec.energy_max_kwh * (1.0 + config.energy_slack)
    feasible = np.flatnonzero((energies >= lo) & (energies <= hi))
    if feasible.size == 0:
        return None
    # Candidate selection with a per-day quota: within each day, keep the
    # top few feasible offsets by fitted energy, spaced at least half a
    # cycle apart (non-max suppression).  The quota guarantees every day's
    # local events stay in the running even when other days carry much
    # larger loads — a global top-K would crowd them out.
    minutes_per_day = 24 * 60
    spread: list[int] = []
    day_of = feasible // minutes_per_day
    for day in np.unique(day_of):
        day_idx = feasible[day_of == day]
        order = day_idx[np.argsort(energies[day_idx])[::-1]]
        kept: list[int] = []
        for t in order:
            t = int(t)
            if all(abs(t - u) >= m // 2 for u in kept):
                kept.append(t)
            if len(kept) >= 6:
                break
        spread.extend(kept)
    best: tuple[float, int, float] | None = None
    for t in spread:
        if any(abs(t - prev) < m for prev in accepted):
            continue
        energy = float(np.clip(energies[t], lo, hi))
        score = _placement_score(residual[t : t + m], shape, energy)
        if best is None or score > best[0]:
            best = (score, t, energy)
    return best


def match_pursuit(
    series: TimeSeries,
    database: ApplianceDatabase,
    config: MatchingConfig | None = None,
    household_id: str = "",
) -> DetectionResult:
    """Disaggregate a 1-minute series by greedy template matching.

    At each iteration, for every appliance in ``database`` the best start
    offset and least-squares energy are computed; the candidate with the
    highest *explained energy fraction* (1 − residual-gain ratio on its
    window) is accepted if it clears ``config.min_score`` and its fitted
    energy is inside the appliance's (slack-widened) range.  Its profile is
    subtracted and the search repeats.
    """
    if series.axis.resolution != ONE_MINUTE:
        raise DataError("match_pursuit expects a 1-minute series")
    config = config or MatchingConfig()
    residual = series.values.copy()
    detections: list[Activation] = []
    accepted_starts: dict[str, list[int]] = {}
    explained = 0.0

    specs = list(database)
    for _ in range(config.max_iterations):
        best: tuple[float, ApplianceSpec, int, float] | None = None
        for spec in specs:
            candidate = _best_placement(
                residual, spec, config, accepted_starts.get(spec.name, [])
            )
            if candidate is None:
                continue
            score, t, energy = candidate
            if score < config.min_score:
                continue
            if best is None or score > best[0]:
                best = (score, spec, t, energy)
        if best is None:
            break
        _, spec, t, energy = best
        m = spec.cycle_minutes
        template = spec.shape * energy
        residual[t : t + m] -= template
        # Allow small negative residual (estimation error) but keep mass sane.
        np.clip(residual, -template.max(), None, out=residual)
        accepted_starts.setdefault(spec.name, []).append(t)
        detections.append(
            Activation(
                appliance=spec.name,
                start=series.axis.time_at(t),
                energy_kwh=energy,
                duration=spec.cycle_duration,
                flexible=spec.flexible,
                household_id=household_id,
            )
        )
        explained += energy
        if float(np.clip(residual, 0.0, None).sum()) < config.residual_floor_kwh:
            break

    detections.sort(key=lambda a: a.start)
    return DetectionResult(
        detections=detections,
        residual=series.with_values(np.clip(residual, 0.0, None)).with_name("residual"),
        explained_kwh=explained,
    )

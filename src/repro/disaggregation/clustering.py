"""K-means clustering (from scratch) for daily load-profile analysis.

scikit-learn is not available in this environment, so the small amount of
machine learning the paper's appliance-level extractors need ("various data
mining and machine learning algorithms", §4.1) is implemented here: k-means
with k-means++ seeding, used to find typical daily consumption patterns
(multi-tariff reference behaviour) and to segment households.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class KMeansResult:
    """Fitted k-means model: centroids, assignments and inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest centroid."""
        points = np.atleast_2d(points)
        distances = _pairwise_sq_distances(points, self.centroids)
        return distances.argmin(axis=1)


def _pairwise_sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared euclidean distances between rows of ``a`` and rows of ``b``."""
    return ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points identical to chosen centroids: duplicate any point.
            centroids[j:] = points[int(rng.integers(0, n))]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centroids[j] = points[pick]
        closest_sq = np.minimum(closest_sq, ((points - centroids[j]) ** 2).sum(axis=1))
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    restarts: int = 3,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding and random restarts.

    ``points`` has shape ``(n, d)``; ``k`` must not exceed ``n``.  The best
    (lowest-inertia) of ``restarts`` runs is returned.  Empty clusters are
    reseeded to the farthest point, so the result always has ``k`` centroids.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise DataError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise DataError(f"need 1 <= k <= n ({n}), got k={k}")

    best: KMeansResult | None = None
    for _ in range(max(1, restarts)):
        centroids = _kmeanspp_init(points, k, rng)
        labels = np.zeros(n, dtype=np.intp)
        for iteration in range(1, max_iterations + 1):
            distances = _pairwise_sq_distances(points, centroids)
            labels = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for j in range(k):
                members = points[labels == j]
                if len(members) == 0:
                    # Reseed an empty cluster at the worst-served point.
                    worst = distances.min(axis=1).argmax()
                    new_centroids[j] = points[worst]
                else:
                    new_centroids[j] = members.mean(axis=0)
            shift = float(((new_centroids - centroids) ** 2).sum())
            centroids = new_centroids
            if shift <= tolerance:
                break
        distances = _pairwise_sq_distances(points, centroids)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(n), labels].sum())
        result = KMeansResult(
            centroids=centroids, labels=labels, inertia=inertia, iterations=iteration
        )
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def daily_profile_matrix(series: TimeSeries) -> np.ndarray:
    """Stack a series into a (days, intervals_per_day) matrix for clustering."""
    per_day = series.axis.intervals_per_day
    whole = series.axis.length // per_day
    if whole < 1:
        raise DataError("series shorter than one day")
    return series.values[: whole * per_day].reshape(whole, per_day).copy()


def typical_daily_profiles(
    series: TimeSeries, k: int, rng: np.random.Generator
) -> KMeansResult:
    """Cluster the days of a series into ``k`` typical daily profiles."""
    return kmeans(daily_profile_matrix(series), k, rng)

"""Base-load estimation and removal.

Disaggregators match appliance templates against *appliance* energy, but a
metered series also carries the continuous household floor (standby, fridge,
occupancy activity).  The standard trick is a rolling-minimum baseline: over
any window longer than an appliance cycle, the minimum load is (almost surely)
pure base load.  A small quantile generalisation makes the estimate robust to
windows fully covered by long cycles.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import minimum_filter1d, percentile_filter

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


def rolling_baseline(
    series: TimeSeries, window_minutes: int = 150, quantile: float = 0.15
) -> TimeSeries:
    """Estimate the continuous base load of a 1-minute series.

    Parameters
    ----------
    series:
        Energy-per-minute series (kWh).
    window_minutes:
        Rolling window width; should exceed the longest appliance cycle
        *phase* so that every window contains some appliance-free minutes.
    quantile:
        0 uses a pure rolling minimum; positive values (default 15 %) are
        robust to noise dips that bias a pure minimum low.

    Returns the baseline series (same axis).  The estimate is then lightly
    smoothed so that subtracting it does not inject step artefacts.
    """
    if window_minutes < 2:
        raise DataError("window_minutes must be >= 2")
    if not 0.0 <= quantile < 0.5:
        raise DataError("quantile must be in [0, 0.5)")
    x = series.values
    if quantile == 0.0:
        base = minimum_filter1d(x, size=window_minutes, mode="nearest")
    else:
        base = percentile_filter(
            x, percentile=quantile * 100.0, size=window_minutes, mode="nearest"
        )
    # Smooth with a short moving average to avoid sharp steps.
    smooth_w = max(3, window_minutes // 8)
    kernel = np.full(smooth_w, 1.0 / smooth_w)
    base = np.convolve(np.pad(base, smooth_w // 2, mode="edge"), kernel, mode="valid")
    base = base[: len(x)]
    return series.with_values(np.minimum(base, x)).with_name(f"{series.name}.baseline")


def remove_baseline(
    series: TimeSeries, window_minutes: int = 150, quantile: float = 0.15
) -> tuple[TimeSeries, TimeSeries]:
    """Split a series into (appliance component, baseline component)."""
    base = rolling_baseline(series, window_minutes, quantile)
    appliance = series.with_values(
        np.clip(series.values - base.values, 0.0, None)
    ).with_name(f"{series.name}.appliance")
    return appliance, base

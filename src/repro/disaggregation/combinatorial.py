"""Combinatorial disaggregation: per-day subset selection over candidates.

Where matching pursuit commits greedily to one template at a time, the
combinatorial disaggregator first enumerates *candidate* placements (appliance
× start offset with a plausible least-squares energy), then searches, day by
day, for the **subset** of candidates that minimises the residual sum of
squares — the classic combinatorial-optimisation formulation of NILM, made
tractable by bounding candidates per day and using depth-first branch and
bound with an admissible "no further improvement" cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.appliances.database import ApplianceDatabase
from repro.disaggregation.matching import DetectionResult, _correlation_scores
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.axis import ONE_MINUTE
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class CombinatorialConfig:
    """Knobs for the combinatorial search.

    ``max_candidates_per_day`` bounds the search space; ``max_subset_size``
    bounds subset cardinality per day (households rarely run more than a
    handful of cycles per appliance per day).
    """

    max_candidates_per_day: int = 14
    max_subset_size: int = 6
    energy_slack: float = 0.15
    min_peak_separation_minutes: int = 20

    def __post_init__(self) -> None:
        if self.max_candidates_per_day < 1:
            raise DataError("max_candidates_per_day must be >= 1")
        if self.max_subset_size < 1:
            raise DataError("max_subset_size must be >= 1")


@dataclass(frozen=True, slots=True)
class _Candidate:
    appliance_index: int
    start: int            # minute offset within the day window
    energy: float
    gain: float           # SSE reduction when applied alone


def _day_candidates(
    day_values: np.ndarray,
    database: ApplianceDatabase,
    config: CombinatorialConfig,
) -> list[_Candidate]:
    """Enumerate plausible template placements for one day of residual."""
    candidates: list[_Candidate] = []
    for idx, spec in enumerate(database):
        shape = spec.shape
        m = len(shape)
        if m > len(day_values):
            continue
        # The <shape, shape> denominator comes from the database's cached
        # template bank instead of being recomputed per day per appliance.
        energies = _correlation_scores(day_values, shape, database.template(spec.name).denom)
        lo = spec.energy_min_kwh * (1.0 - config.energy_slack)
        hi = spec.energy_max_kwh * (1.0 + config.energy_slack)
        feasible = np.flatnonzero((energies >= lo) & (energies <= hi))
        if feasible.size == 0:
            continue
        # Local non-max suppression: keep locally-best starts only.
        order = feasible[np.argsort(energies[feasible])[::-1]]
        kept: list[int] = []
        for t in order:
            if all(abs(t - u) >= config.min_peak_separation_minutes for u in kept):
                kept.append(int(t))
            if len(kept) >= 4:
                break
        for t in kept:
            energy = float(np.clip(energies[t], lo, hi))
            template = shape * energy
            window = day_values[t : t + m]
            gain = float(np.sum(window**2) - np.sum((window - template) ** 2))
            if gain > 0:
                candidates.append(_Candidate(idx, t, energy, gain))
    candidates.sort(key=lambda c: c.gain, reverse=True)
    return candidates[: config.max_candidates_per_day]


def _apply(day_values: np.ndarray, cand: _Candidate, database_specs: list) -> np.ndarray:
    spec = database_specs[cand.appliance_index]
    out = day_values.copy()
    m = spec.cycle_minutes
    out[cand.start : cand.start + m] -= spec.shape * cand.energy
    return out


def _subset_sse(
    day_values: np.ndarray, subset: tuple[_Candidate, ...], database_specs: list
) -> float:
    residual = day_values.copy()
    for cand in subset:
        spec = database_specs[cand.appliance_index]
        m = spec.cycle_minutes
        residual[cand.start : cand.start + m] -= spec.shape * cand.energy
    return float(np.sum(residual**2))


def disaggregate_combinatorial(
    series: TimeSeries,
    database: ApplianceDatabase,
    config: CombinatorialConfig | None = None,
    household_id: str = "",
) -> DetectionResult:
    """Disaggregate a 1-minute series by per-day subset optimisation.

    For every day window the candidate set is enumerated, then all subsets up
    to ``max_subset_size`` are evaluated in gain order with an early cut:
    adding a candidate can reduce the SSE by at most its standalone gain, so
    branches whose optimistic bound cannot beat the incumbent are skipped.
    """
    if series.axis.resolution != ONE_MINUTE:
        raise DataError("disaggregate_combinatorial expects a 1-minute series")
    config = config or CombinatorialConfig()
    specs = list(database)
    detections: list[Activation] = []
    residual_values = series.values.copy()

    for first, length in series.axis.day_slices():
        day_values = residual_values[first : first + length].copy()
        candidates = _day_candidates(day_values, database, config)
        if not candidates:
            continue
        base_sse = float(np.sum(day_values**2))
        best_sse = base_sse
        best_subset: tuple[_Candidate, ...] = ()
        max_k = min(config.max_subset_size, len(candidates))
        # Exhaustive in gain order with optimistic-bound pruning.
        for k in range(1, max_k + 1):
            for subset in combinations(candidates, k):
                optimistic = base_sse - sum(c.gain for c in subset)
                if optimistic >= best_sse:
                    continue
                # Reject subsets with overlapping same-appliance placements.
                if _has_conflict(subset, specs, config):
                    continue
                sse = _subset_sse(day_values, subset, specs)
                if sse < best_sse:
                    best_sse = sse
                    best_subset = subset
        for cand in best_subset:
            spec = specs[cand.appliance_index]
            start_index = first + cand.start
            detections.append(
                Activation(
                    appliance=spec.name,
                    start=series.axis.time_at(start_index),
                    energy_kwh=cand.energy,
                    duration=spec.cycle_duration,
                    flexible=spec.flexible,
                    household_id=household_id,
                )
            )
            m = spec.cycle_minutes
            residual_values[start_index : start_index + m] -= spec.shape * cand.energy

    detections.sort(key=lambda a: a.start)
    residual = series.with_values(np.clip(residual_values, 0.0, None)).with_name("residual")
    explained = float(sum(d.energy_kwh for d in detections))
    return DetectionResult(detections=detections, residual=residual, explained_kwh=explained)


def _has_conflict(
    subset: tuple[_Candidate, ...], specs: list, config: CombinatorialConfig
) -> bool:
    """True when two candidates of the same appliance overlap in time."""
    for a, b in combinations(subset, 2):
        if a.appliance_index != b.appliance_index:
            continue
        m = specs[a.appliance_index].cycle_minutes
        if abs(a.start - b.start) < m:
            return True
    return False

"""Step-edge detection on fine-grained consumption series.

The classic first stage of event-based NILM (paper [9], [10] context): find
the moments where load steps up or down by more than a threshold — appliance
switch-on/off edges.  Operates on 1-minute series; the paper's point that
15-minute data is too coarse for this is demonstrated in the tests by running
the same detector at both resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True, slots=True)
class Edge:
    """A detected load step: when, how large (kW), and its direction."""

    when: datetime
    delta_kw: float

    @property
    def rising(self) -> bool:
        """True for a switch-on (load increase) edge."""
        return self.delta_kw > 0


def detect_edges(
    series: TimeSeries,
    threshold_kw: float = 0.25,
    smoothing: int = 1,
) -> list[Edge]:
    """Detect load steps larger than ``threshold_kw``.

    Parameters
    ----------
    series:
        Energy-per-interval series (kWh); internally converted to kW.
    threshold_kw:
        Minimum absolute power step to report.
    smoothing:
        Width (intervals) of a moving-average pre-filter; 1 disables it.

    Consecutive same-sign super-threshold differences are merged into a
    single edge at the first interval (a ramp counts once).
    """
    if threshold_kw <= 0:
        raise DataError("threshold_kw must be positive")
    if smoothing < 1:
        raise DataError("smoothing must be >= 1")
    power = series.values / series.axis.hours_per_interval
    if smoothing > 1:
        kernel = np.full(smoothing, 1.0 / smoothing)
        power = np.convolve(power, kernel, mode="same")
    diffs = np.diff(power)
    edges: list[Edge] = []
    i = 0
    while i < len(diffs):
        d = diffs[i]
        if abs(d) < threshold_kw:
            i += 1
            continue
        # Merge a run of same-sign steps (slow ramps spanning intervals).
        total = d
        j = i + 1
        while j < len(diffs) and np.sign(diffs[j]) == np.sign(d) and abs(diffs[j]) >= threshold_kw:
            total += diffs[j]
            j += 1
        edges.append(Edge(when=series.axis.time_at(i + 1), delta_kw=float(total)))
        i = j
    return edges


def pair_edges(edges: list[Edge], max_gap_minutes: int = 360) -> list[tuple[Edge, Edge]]:
    """Pair rising edges with the closest later falling edge of similar size.

    A simple matching heuristic: scan rising edges in time order; for each,
    take the earliest unconsumed falling edge within ``max_gap_minutes`` whose
    magnitude is within 50 % of the rise.  Returns (on, off) pairs — candidate
    appliance runs.
    """
    rising = [e for e in edges if e.rising]
    falling = [e for e in edges if not e.rising]
    used: set[int] = set()
    pairs: list[tuple[Edge, Edge]] = []
    for on in rising:
        for idx, off in enumerate(falling):
            if idx in used or off.when <= on.when:
                continue
            gap_min = (off.when - on.when).total_seconds() / 60.0
            if gap_min > max_gap_minutes:
                break
            size_ratio = abs(off.delta_kw) / max(abs(on.delta_kw), 1e-9)
            if 0.5 <= size_ratio <= 2.0:
                pairs.append((on, off))
                used.add(idx)
                break
    return pairs

"""Usage-schedule mining — step 1 of the schedule-based extractor.

Paper §4.2 refines the frequency table with habits: "the exact schedule of
the usage of each appliance can be derived", e.g. "the dishwasher is more
used during the weekends".  Given detected activations, this module builds a
day-type × time-of-day start histogram per appliance, smooths it, and emits
the dominant windows as a :class:`MinedSchedule` — structurally compatible
with :class:`repro.appliances.usage.UsageSchedule` so mined habits can drive
both extraction and re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import time

import numpy as np

from repro.appliances.usage import UsageSchedule
from repro.errors import DataError
from repro.simulation.activations import Activation
from repro.timeseries.calendar import DailyWindow, DayType, day_type, minutes_since_midnight

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class MinedSchedule:
    """Mined start-time habits of one appliance.

    ``density`` maps each day type to a smoothed per-minute start density
    (sums to the expected number of starts on such a day); ``windows`` are
    the extracted high-probability start windows per day type.
    """

    appliance: str
    density: dict[DayType, np.ndarray]
    windows: dict[DayType, list[DailyWindow]]
    observations: int

    def expected_starts(self, dtype: DayType) -> float:
        """Expected number of starts per day of the given type."""
        return float(self.density[dtype].sum())

    def as_usage_schedule(self, dtype: DayType) -> UsageSchedule:
        """Convert the mined windows of one day type to a UsageSchedule.

        Window weights are the density mass inside each window, so sampling
        from the result reproduces the mined habit distribution (coarsely).
        """
        windows = self.windows.get(dtype, [])
        if not windows:
            return UsageSchedule()
        weighted = []
        dens = self.density[dtype]
        for window in windows:
            mass = _window_mass(dens, window)
            weighted.append((window, float(mass)))
        return UsageSchedule(windows=tuple(weighted))

    def peak_minute(self, dtype: DayType) -> int:
        """Minute-of-day where the start density is highest."""
        return int(self.density[dtype].argmax())


def _window_mass(density: np.ndarray, window: DailyWindow) -> float:
    minutes = np.arange(MINUTES_PER_DAY)
    mask = np.array([window.contains(time(m // 60, m % 60)) for m in minutes])
    return float(density[mask].sum())


def _smooth_circular(x: np.ndarray, width: int) -> np.ndarray:
    """Moving-average smoothing that wraps around midnight."""
    if width <= 1:
        return x.copy()
    kernel = np.full(width, 1.0 / width)
    padded = np.concatenate([x[-width:], x, x[:width]])
    smoothed = np.convolve(padded, kernel, mode="same")
    return smoothed[width : width + len(x)]


def _extract_windows(
    density: np.ndarray, threshold_factor: float, min_width_minutes: int
) -> list[DailyWindow]:
    """Contiguous super-threshold runs of the density as daily windows."""
    if density.sum() <= 0:
        return []
    threshold = threshold_factor * density.mean()
    above = density > threshold
    if above.all():
        return [DailyWindow(time(0, 0), time(0, 0))]  # whole day (wraps)
    # Find runs, treating the array circularly.
    extended = np.concatenate([above, above])
    windows: list[DailyWindow] = []
    i = 0
    seen_starts: set[int] = set()
    while i < MINUTES_PER_DAY:
        if not extended[i]:
            i += 1
            continue
        j = i
        while j < 2 * MINUTES_PER_DAY and extended[j]:
            j += 1
        start = i % MINUTES_PER_DAY
        width = j - i
        if width >= min_width_minutes and start not in seen_starts:
            end = (i + width) % MINUTES_PER_DAY
            windows.append(
                DailyWindow(time(start // 60, start % 60), time(end // 60, end % 60))
            )
            seen_starts.add(start)
        i = j
    return windows


def mine_schedule(
    detections: list[Activation],
    appliance: str,
    observation_days: dict[DayType, int],
    smoothing_minutes: int = 90,
    threshold_factor: float = 1.5,
    min_width_minutes: int = 30,
) -> MinedSchedule:
    """Mine the start-time schedule of one appliance from detections.

    Parameters
    ----------
    detections:
        Activation events (any appliance; filtered internally).
    appliance:
        Which appliance to mine.
    observation_days:
        How many days of each type the observation window contained
        (needed to turn counts into per-day densities).
    smoothing_minutes:
        Width of the circular moving-average applied to the raw histogram.
    threshold_factor:
        Windows are runs where density exceeds ``factor × mean density``.
    min_width_minutes:
        Minimum reported window width.
    """
    if smoothing_minutes < 1:
        raise DataError("smoothing_minutes must be >= 1")
    acts = [a for a in detections if a.appliance == appliance]
    density: dict[DayType, np.ndarray] = {}
    windows: dict[DayType, list[DailyWindow]] = {}
    for dtype in DayType:
        hist = np.zeros(MINUTES_PER_DAY)
        for act in acts:
            if day_type(act.start.date()) is dtype:
                hist[minutes_since_midnight(act.start) % MINUTES_PER_DAY] += 1.0
        days = observation_days.get(dtype, 0)
        if days > 0:
            hist /= days
        smoothed = _smooth_circular(hist, smoothing_minutes)
        density[dtype] = smoothed
        windows[dtype] = _extract_windows(smoothed, threshold_factor, min_width_minutes)
    return MinedSchedule(
        appliance=appliance, density=density, windows=windows, observations=len(acts)
    )


def count_day_types(start_date, days: int) -> dict[DayType, int]:
    """How many days of each type a window of ``days`` days contains."""
    from datetime import timedelta

    counts = {t: 0 for t in DayType}
    for offset in range(days):
        counts[day_type(start_date + timedelta(days=offset))] += 1
    return counts

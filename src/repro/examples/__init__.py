"""Packaged, wheel-installable examples.

Unlike the repository's top-level ``examples/`` scripts (which need a
checkout), these modules ship inside the ``repro`` package so CLI
subcommands — ``repro figures`` — can load them with a plain
:func:`importlib.import_module` from any install.

Subsystem contract: renderers print the paper's pinned numbers (Figure 1,
Figure 4, Figure 5) deterministically — they are smoke-tested output, not
illustrative pseudo-code — and the CLI degrades gracefully when this
subpackage is stripped from a vendored install.
"""

from repro.examples.paper_figures import show_figure1, show_figure4, show_figure5

__all__ = ["show_figure1", "show_figure4", "show_figure5"]

"""Packaged, wheel-installable examples.

Unlike the repository's top-level ``examples/`` scripts (which need a
checkout), these modules ship inside the ``repro`` package so CLI
subcommands — ``repro figures`` — can load them with a plain
:func:`importlib.import_module` from any install.
"""

from repro.examples.paper_figures import show_figure1, show_figure4, show_figure5

__all__ = ["show_figure1", "show_figure4", "show_figure5"]

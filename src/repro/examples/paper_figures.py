"""Regenerate the paper's figures as ASCII plots in the terminal.

Figure 1 (the EV flex-offer), Figure 4 (basic extraction, min/max areas) and
Figure 5 (peak detection walkthrough with every printed number) — all from
the library, no plotting dependencies.

Packaged inside the wheel (``repro.examples``) so ``repro figures`` works
from any install; the repository's ``examples/paper_figures.py`` is a thin
shim over this module.

Usage::

    repro figures
    python -m repro.examples.paper_figures
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro import BasicExtractor, FlexOfferParams, PeakBasedExtractor, figure1_flexoffer
from repro.extraction.peaks import detect_peaks, filter_peaks, selection_probabilities
from repro.workloads.paper_day import figure5_day

BAR_WIDTH = 60


def bar(value: float, scale: float, char: str = "#") -> str:
    return char * max(0, int(round(value / scale * BAR_WIDTH)))


def show_figure1() -> None:
    print("=" * 72)
    print("Figure 1 — flex-offer of an electric vehicle")
    print("=" * 72)
    offer = figure1_flexoffer(datetime(2012, 3, 5))
    tmin, _ = offer.effective_total_bounds()
    print(f"  earliest start : {offer.earliest_start:%H:%M}  (paper: 10 PM)")
    print(f"  latest start   : {offer.latest_start:%H:%M}  (paper: 5 AM)")
    print(f"  latest end     : {offer.latest_end:%H:%M}  (paper: 7 AM)")
    print(f"  profile        : {offer.profile_intervals} x 15 min = "
          f"{offer.duration} (paper: 2 h)")
    print(f"  required energy: {tmin:.0f} kWh (paper: 50 kWh)")
    print(f"  start-time flexibility: {offer.time_flexibility}")
    print("  profile (kWh per 15-min slice):")
    for i, sl in enumerate(offer.slices):
        print(f"    slice {i}: {bar(sl.energy_min, 10)} {sl.energy_min:.2f}")


def show_figure4() -> None:
    print()
    print("=" * 72)
    print("Figure 4 — flex-offers extracted with the basic approach")
    print("=" * 72)
    day = figure5_day()
    extractor = BasicExtractor(params=FlexOfferParams(flexible_share=0.05))
    result = extractor.extract(day.series, np.random.default_rng(4))
    print(f"  input day: {day.series.total():.2f} kWh; flexible share 5% -> "
          f"{result.extracted_energy:.3f} kWh in {len(result.offers)} offers")
    scale = max(sum(s.energy_max for s in o.slices) for o in result.offers)
    for k, offer in enumerate(result.offers, start=1):
        lo = sum(s.energy_min for s in offer.slices)
        hi = sum(s.energy_max for s in offer.slices)
        print(f"\n  offer {k}: starts {offer.earliest_start:%H:%M}, "
              f"{len(offer.slices)} slices, flex {offer.time_flexibility}")
        print(f"    min (light area) {bar(lo, scale, '#')} {lo:.3f} kWh")
        print(f"    max (dark area)  {bar(hi, scale, '@')} {hi:.3f} kWh")


def show_figure5() -> None:
    print()
    print("=" * 72)
    print("Figure 5 — peak-based extraction walkthrough")
    print("=" * 72)
    day = figure5_day()
    series = day.series
    mean = series.mean()
    print(f"  daily consumption: {series.total():.2f} kWh (paper: 39.02)")
    print(f"  average line     : {mean:.4f} kWh/interval")
    print()
    # The day as an hourly ASCII profile with the mean line marked.
    hourly = series.values.reshape(24, 4).sum(axis=1)
    scale = hourly.max()
    for hour in range(24):
        marker = "|" if hourly[hour] > 4 * mean else " "
        print(f"  {hour:02d}:00 {marker} {bar(hourly[hour], scale)}")
    peaks = detect_peaks(series.values)
    print(f"\n  peaks detected (size = energy of the above-average run):")
    for i, peak in enumerate(peaks, start=1):
        t = series.axis.time_at(peak.first)
        print(f"    peak {i}: {t:%H:%M}  size = {peak.size:.2f} kWh")
    flexible = 0.05 * series.total()
    print(f"\n  flexible part of the day: 39.02 x 0.05 = {flexible:.3f} kWh")
    survivors = filter_peaks(peaks, flexible)
    probs = selection_probabilities(survivors)
    discarded = [i + 1 for i, p in enumerate(peaks) if p not in survivors]
    print(f"  peaks {', '.join(map(str, discarded))} discarded (size below {flexible:.3f})")
    for peak, prob in zip(survivors, probs):
        number = peaks.index(peak) + 1
        print(f"  peak {number} survives: size {peak.size:.2f}, "
              f"selection probability = {prob:.0%} "
              f"(paper: {'29%' if number == 6 else '71%'})")
    result = PeakBasedExtractor(params=FlexOfferParams(flexible_share=0.05)).extract(
        series, np.random.default_rng(7)
    )
    offer = result.offers[0]
    print(f"\n  extracted flex-offer: starts {offer.earliest_start:%H:%M}, "
          f"{len(offer.slices)} slices, "
          f"{result.extracted_energy:.3f} kWh, flex {offer.time_flexibility}")


if __name__ == "__main__":
    show_figure1()
    show_figure4()
    show_figure5()

"""Consumption/production forecasting (MIRABEL substrate, paper [6]).

Lean, dependency-free forecasters (persistence, drift, seasonal-naive,
autoregressive, Holt-Winters) with a rolling backtest harness — the
substrate MIRABEL's scheduling consumes, kept small on purpose.

Subsystem contract:

* **Determinism** — every forecaster is a pure function of its input
  window; the backtest is a pure fold over the series.
* **Uniform interface** — all forecasters share one signature and live in
  the :data:`FORECASTERS` table, so evaluation code never special-cases.
* **Quantile fans** — :mod:`repro.forecasting.quantiles` lifts any point
  forecaster to a :class:`QuantileForecast` (monotone per-level curves
  derived from rolling-backtest residual blocks), the scenario input of
  robust scheduling (:mod:`repro.scheduling.robust`).
"""

from repro.forecasting.evaluate import BacktestReport, mae, mape, rmse, rolling_backtest
from repro.forecasting.models import (
    FORECASTERS,
    autoregressive,
    drift,
    holt_winters,
    persistence,
    seasonal_naive,
)
from repro.forecasting.quantiles import (
    DEFAULT_LEVELS,
    QuantileForecast,
    drift_quantiles,
    quantile_forecast,
    quantile_forecast_from_residuals,
    residual_blocks,
    seasonal_naive_quantiles,
)

__all__ = [
    "BacktestReport",
    "mae",
    "mape",
    "rmse",
    "rolling_backtest",
    "FORECASTERS",
    "autoregressive",
    "drift",
    "holt_winters",
    "persistence",
    "seasonal_naive",
    "DEFAULT_LEVELS",
    "QuantileForecast",
    "drift_quantiles",
    "quantile_forecast",
    "quantile_forecast_from_residuals",
    "residual_blocks",
    "seasonal_naive_quantiles",
]

"""Consumption/production forecasting (MIRABEL substrate, paper [6]).

Lean, dependency-free forecasters (persistence, drift, seasonal-naive,
autoregressive, Holt-Winters) with a rolling backtest harness — the
substrate MIRABEL's scheduling consumes, kept small on purpose.

Subsystem contract:

* **Determinism** — every forecaster is a pure function of its input
  window; the backtest is a pure fold over the series.
* **Uniform interface** — all forecasters share one signature and live in
  the :data:`FORECASTERS` table, so evaluation code never special-cases.
"""

from repro.forecasting.evaluate import BacktestReport, mae, mape, rmse, rolling_backtest
from repro.forecasting.models import (
    FORECASTERS,
    autoregressive,
    drift,
    holt_winters,
    persistence,
    seasonal_naive,
)

__all__ = [
    "BacktestReport",
    "mae",
    "mape",
    "rmse",
    "rolling_backtest",
    "FORECASTERS",
    "autoregressive",
    "drift",
    "holt_winters",
    "persistence",
    "seasonal_naive",
]

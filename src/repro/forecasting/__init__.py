"""Consumption/production forecasting (MIRABEL substrate, paper [6])."""

from repro.forecasting.evaluate import BacktestReport, mae, mape, rmse, rolling_backtest
from repro.forecasting.models import (
    FORECASTERS,
    autoregressive,
    drift,
    holt_winters,
    persistence,
    seasonal_naive,
)

__all__ = [
    "BacktestReport",
    "mae",
    "mape",
    "rmse",
    "rolling_backtest",
    "FORECASTERS",
    "autoregressive",
    "drift",
    "holt_winters",
    "persistence",
    "seasonal_naive",
]

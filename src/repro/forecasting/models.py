"""Forecasting models for consumption and production series (paper [6]).

MIRABEL requires "reliable and near real-time forecasting of energy
production and consumption" (Fischer et al., BIRTE 2012).  The scheduler in
this repository can be driven by forecast surplus instead of realised
surplus; these models provide the standard baselines: persistence, seasonal
naive, drift, additive Holt-Winters and an autoregressive model fitted by
least squares — all pure numpy, all returning a series on the horizon axis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries


def _horizon_axis(series: TimeSeries, horizon: int) -> TimeAxis:
    if horizon < 1:
        raise DataError("horizon must be >= 1")
    return TimeAxis(series.axis.end, series.axis.resolution, horizon)


def persistence(series: TimeSeries, horizon: int) -> TimeSeries:
    """Repeat the last observed value (the random-walk forecast)."""
    if len(series) == 0:
        raise DataError("cannot forecast from an empty series")
    axis = _horizon_axis(series, horizon)
    return TimeSeries(axis, np.full(horizon, series.values[-1]), "persistence")


def seasonal_naive(series: TimeSeries, horizon: int, period: int | None = None) -> TimeSeries:
    """Repeat the last full season (daily by default)."""
    if period is None:
        period = series.axis.intervals_per_day
    if len(series) < period:
        raise DataError(f"need at least one period ({period}) of history")
    last_season = series.values[-period:]
    reps = int(np.ceil(horizon / period))
    values = np.tile(last_season, reps)[:horizon]
    return TimeSeries(_horizon_axis(series, horizon), values, "seasonal-naive")


def drift(series: TimeSeries, horizon: int) -> TimeSeries:
    """Extrapolate the straight line from first to last observation."""
    n = len(series)
    if n < 2:
        raise DataError("drift needs at least two observations")
    slope = (series.values[-1] - series.values[0]) / (n - 1)
    steps = np.arange(1, horizon + 1)
    values = series.values[-1] + slope * steps
    return TimeSeries(_horizon_axis(series, horizon), values, "drift")


def holt_winters(
    series: TimeSeries,
    horizon: int,
    period: int | None = None,
    alpha: float = 0.3,
    beta: float = 0.05,
    gamma: float = 0.2,
) -> TimeSeries:
    """Additive Holt-Winters (level, trend, seasonal) forecast.

    Standard recursive formulation with seasonal components initialised from
    the first period and normalised to zero mean.  Requires at least two
    full periods of history.
    """
    if period is None:
        period = series.axis.intervals_per_day
    x = series.values
    n = len(x)
    if n < 2 * period:
        raise DataError(f"Holt-Winters needs >= 2 periods ({2 * period}), got {n}")
    for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
        if not 0.0 <= value <= 1.0:
            raise DataError(f"{name} must be in [0, 1]")

    season = x[:period] - x[:period].mean()
    level = float(x[:period].mean())
    trend = float((x[period : 2 * period].mean() - x[:period].mean()) / period)
    seasonals = season.copy()
    for t in range(n):
        s_idx = t % period
        value = x[t]
        last_level = level
        level = alpha * (value - seasonals[s_idx]) + (1 - alpha) * (level + trend)
        trend = beta * (level - last_level) + (1 - beta) * trend
        seasonals[s_idx] = gamma * (value - level) + (1 - gamma) * seasonals[s_idx]

    steps = np.arange(1, horizon + 1)
    values = level + trend * steps
    values += np.array([seasonals[(n + h - 1) % period] for h in steps])
    return TimeSeries(_horizon_axis(series, horizon), values, "holt-winters")


def autoregressive(
    series: TimeSeries, horizon: int, order: int = 8, ridge: float = 1e-6
) -> TimeSeries:
    """AR(p) forecast fitted by (ridge-regularised) least squares.

    The model is ``x_t = c + sum_i a_i x_{t-i}``; forecasts are produced
    recursively.  Ridge regularisation keeps the fit stable on short or
    nearly-constant histories.
    """
    x = series.values
    n = len(x)
    if order < 1:
        raise DataError("order must be >= 1")
    if n < order + 2:
        raise DataError(f"AR({order}) needs at least {order + 2} observations")
    rows = n - order
    design = np.ones((rows, order + 1))
    for i in range(order):
        design[:, i + 1] = x[order - 1 - i : n - 1 - i]
    response = x[order:]
    gram = design.T @ design + ridge * np.eye(order + 1)
    coeffs = np.linalg.solve(gram, design.T @ response)

    history = list(x[-order:])
    out = np.empty(horizon)
    for h in range(horizon):
        lags = history[-1 : -order - 1 : -1]  # most recent first
        out[h] = coeffs[0] + float(np.dot(coeffs[1:], lags))
        history.append(out[h])
    return TimeSeries(_horizon_axis(series, horizon), out, f"ar({order})")


#: Model registry used by the evaluation harness and benches.
FORECASTERS = {
    "persistence": persistence,
    "seasonal-naive": seasonal_naive,
    "drift": drift,
    "holt-winters": holt_winters,
    "ar": autoregressive,
}

"""Forecast accuracy evaluation: error metrics and rolling backtests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import TimeSeries


def mae(forecast: TimeSeries, actual: TimeSeries) -> float:
    """Mean absolute error."""
    forecast.axis.require_aligned(actual.axis)
    return float(np.abs(forecast.values - actual.values).mean())


def rmse(forecast: TimeSeries, actual: TimeSeries) -> float:
    """Root mean squared error."""
    forecast.axis.require_aligned(actual.axis)
    diff = forecast.values - actual.values
    return float(np.sqrt(np.dot(diff, diff) / len(diff)))


def mape(forecast: TimeSeries, actual: TimeSeries, floor: float = 1e-6) -> float:
    """Mean absolute percentage error, ignoring near-zero actuals.

    Intervals where ``|actual| < floor`` are excluded (household consumption
    has no true zeros, but wind production does — MAPE is undefined there).
    """
    forecast.axis.require_aligned(actual.axis)
    mask = np.abs(actual.values) >= floor
    if not mask.any():
        raise DataError("all actual values are below the MAPE floor")
    err = np.abs(forecast.values[mask] - actual.values[mask]) / np.abs(actual.values[mask])
    return float(err.mean())


@dataclass(frozen=True, slots=True)
class BacktestReport:
    """Aggregate errors of a rolling-origin backtest."""

    model: str
    folds: int
    mae: float
    rmse: float
    mape: float


def rolling_backtest(
    model: Callable[[TimeSeries, int], TimeSeries],
    series: TimeSeries,
    train_intervals: int,
    horizon: int,
    step: int | None = None,
    name: str = "",
) -> BacktestReport:
    """Rolling-origin evaluation: train on a prefix, forecast, slide, repeat.

    ``model`` is any callable ``(history, horizon) -> TimeSeries`` (the
    signatures in :mod:`repro.forecasting.models` fit directly).

    Window contract (pinned by ``tests/test_forecasting_backtest.py``):
    the first fold trains on ``series[:train_intervals]`` and scores
    ``series[train_intervals:train_intervals + horizon]``; origins slide
    by ``step`` (default ``horizon``, i.e. non-overlapping folds) while a
    full horizon remains, so a trailing remainder shorter than ``horizon``
    is dropped rather than scored on a short window.
    """
    if horizon < 1:
        raise DataError("horizon must be >= 1")
    if train_intervals < 1:
        raise DataError("train_intervals must be >= 1")
    if step is None:
        step = horizon
    if step < 1:
        raise DataError("step must be >= 1")
    n = len(series)
    if train_intervals + horizon > n:
        raise DataError("series too short for one backtest fold")
    maes, rmses, mapes = [], [], []
    folds = 0
    origin = train_intervals
    while origin + horizon <= n:
        history = series.slice(0, origin)
        actual = series.slice(origin, horizon)
        forecast = model(history, horizon)
        maes.append(mae(forecast, actual))
        rmses.append(rmse(forecast, actual))
        try:
            mapes.append(mape(forecast, actual))
        except DataError:
            pass
        folds += 1
        origin += step
    return BacktestReport(
        model=name or getattr(model, "__name__", "model"),
        folds=folds,
        mae=float(np.mean(maes)),
        rmse=float(np.mean(rmses)),
        mape=float(np.mean(mapes)) if mapes else float("nan"),
    )

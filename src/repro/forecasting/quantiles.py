"""Quantile and ensemble forecasts: uncertainty bands over point models.

The point forecasters in :mod:`repro.forecasting.models` answer "what will
the series do"; robust scheduling (:mod:`repro.scheduling.robust`) needs
"how wrong might that answer be".  This module derives that band without
any new model machinery: run the point model through the same rolling
folds :func:`~repro.forecasting.evaluate.rolling_backtest` uses, collect
the per-fold residual vectors (:func:`residual_blocks`), and read empirical
residual quantiles off them (:func:`quantile_forecast_from_residuals`).
The result is a :class:`QuantileForecast` — a point curve plus one curve
per quantile level, monotone in level by construction.

Everything here is deterministic: the folds are a pure function of the
series shape, ``np.quantile`` is a pure function of the residual matrix,
and no RNG is involved anywhere — the same input series produces bitwise
the same fan on every call (pinned by
``tests/test_property_forecast_quantiles.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import DataError
from repro.forecasting.models import drift, seasonal_naive
from repro.timeseries.axis import TimeAxis
from repro.timeseries.series import TimeSeries

#: Default quantile levels for forecast fans (symmetric around the median).
DEFAULT_LEVELS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _validate_levels(levels: tuple[float, ...]) -> tuple[float, ...]:
    levels = tuple(float(level) for level in levels)
    if not levels:
        raise DataError("quantile levels must be non-empty")
    for level in levels:
        if not 0.0 < level < 1.0:
            raise DataError(f"quantile level must be in (0, 1), got {level}")
    if any(b <= a for a, b in zip(levels, levels[1:])):
        raise DataError(f"quantile levels must be strictly increasing, got {levels}")
    return levels


@dataclass(frozen=True, slots=True)
class QuantileForecast:
    """A point forecast plus one curve per quantile level.

    Invariants enforced at construction: levels are strictly increasing in
    ``(0, 1)``, every curve shares the point forecast's axis, and the
    curves are monotone in level at every interval (a higher quantile
    never dips below a lower one).
    """

    point: TimeSeries
    levels: tuple[float, ...]
    curves: tuple[TimeSeries, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", _validate_levels(self.levels))
        object.__setattr__(self, "curves", tuple(self.curves))
        if len(self.curves) != len(self.levels):
            raise DataError(
                f"{len(self.levels)} level(s) but {len(self.curves)} curve(s)"
            )
        for curve in self.curves:
            self.point.axis.require_aligned(curve.axis)
        if len(self.curves) > 1:
            fan = np.stack([curve.values for curve in self.curves])
            if np.any(np.diff(fan, axis=0) < 0.0):
                raise DataError("quantile curves must be monotone in level")

    @property
    def axis(self) -> TimeAxis:
        """The shared forecast axis."""
        return self.point.axis

    def fan(self) -> np.ndarray:
        """The curves stacked into a ``(levels, horizon)`` float matrix."""
        return np.stack([curve.values for curve in self.curves])

    def curve(self, level: float) -> TimeSeries:
        """The curve at exactly ``level`` (raises when absent)."""
        for have, curve in zip(self.levels, self.curves):
            if have == level:
                return curve
        raise DataError(f"no quantile curve at level {level}; have {self.levels}")

    def to_dict(self) -> dict[str, Any]:
        """Wire encoding (see :mod:`repro.flexoffer.io`)."""
        from repro.flexoffer.io import quantile_forecast_to_dict

        return quantile_forecast_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QuantileForecast":
        """Decode the :meth:`to_dict` encoding."""
        from repro.flexoffer.io import quantile_forecast_from_dict

        return quantile_forecast_from_dict(data)


def residual_blocks(
    series: TimeSeries,
    model: Callable[[TimeSeries, int], TimeSeries],
    horizon: int,
    train_intervals: int | None = None,
    step: int | None = None,
) -> np.ndarray:
    """Per-fold forecast residuals as a ``(folds, horizon)`` matrix.

    Walks the same rolling-origin folds as
    :func:`~repro.forecasting.evaluate.rolling_backtest` — train on the
    prefix, forecast ``horizon`` intervals, slide by ``step`` — but keeps
    the raw residual vector ``actual - forecast`` of each fold instead of
    collapsing it to error metrics.  ``train_intervals`` defaults to half
    the series (never less than one horizon) and ``step`` to ``horizon``,
    i.e. non-overlapping evaluation blocks.
    """
    if horizon < 1:
        raise DataError("horizon must be >= 1")
    n = len(series)
    if train_intervals is None:
        train_intervals = max(horizon, n // 2)
    if train_intervals < 1:
        raise DataError("train_intervals must be >= 1")
    if step is None:
        step = horizon
    if step < 1:
        raise DataError("step must be >= 1")
    if train_intervals + horizon > n:
        raise DataError("series too short for one residual block")
    blocks: list[np.ndarray] = []
    origin = train_intervals
    while origin + horizon <= n:
        history = series.slice(0, origin)
        actual = series.slice(origin, horizon)
        forecast = model(history, horizon)
        blocks.append(actual.values - forecast.values)
        origin += step
    return np.stack(blocks)


def quantile_forecast_from_residuals(
    point: TimeSeries,
    residuals: np.ndarray,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
) -> QuantileForecast:
    """Shift the point forecast by empirical residual quantiles.

    ``residuals`` is a ``(folds, horizon)`` matrix (one row per backtest
    fold); each level's curve is ``point + np.quantile(residuals, level,
    axis=0)``.  Because ``np.quantile`` is monotone in its level argument
    interval by interval, the resulting fan is monotone by construction,
    and residuals that are exactly sign-symmetric put the 0.5 curve on the
    point forecast itself.
    """
    levels = _validate_levels(levels)
    residuals = np.asarray(residuals, dtype=np.float64)
    if residuals.ndim != 2:
        raise DataError(f"residuals must be 2-D (folds, horizon), got {residuals.shape}")
    if residuals.shape[1] != len(point):
        raise DataError(
            f"residual horizon {residuals.shape[1]} does not match the "
            f"point forecast's {len(point)} interval(s)"
        )
    shifts = np.quantile(residuals, levels, axis=0)
    curves = tuple(
        TimeSeries(point.axis, point.values + shifts[i], f"{point.name}@q{level:g}")
        for i, level in enumerate(levels)
    )
    return QuantileForecast(point=point, levels=levels, curves=curves)


def quantile_forecast(
    series: TimeSeries,
    horizon: int,
    model: Callable[[TimeSeries, int], TimeSeries] = seasonal_naive,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
    train_intervals: int | None = None,
    step: int | None = None,
) -> QuantileForecast:
    """Point forecast plus a residual-quantile fan, end to end.

    Backtests ``model`` over ``series`` (:func:`residual_blocks`), issues
    the point forecast from the full history, and widens it by the
    empirical residual quantiles.  Purely deterministic.
    """
    residuals = residual_blocks(
        series, model, horizon, train_intervals=train_intervals, step=step
    )
    point = model(series, horizon)
    return quantile_forecast_from_residuals(point, residuals, levels)


def seasonal_naive_quantiles(
    series: TimeSeries,
    horizon: int,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
) -> QuantileForecast:
    """:func:`quantile_forecast` over the seasonal-naive point model."""
    return quantile_forecast(series, horizon, model=seasonal_naive, levels=levels)


def drift_quantiles(
    series: TimeSeries,
    horizon: int,
    levels: tuple[float, ...] = DEFAULT_LEVELS,
) -> QuantileForecast:
    """:func:`quantile_forecast` over the drift point model."""
    return quantile_forecast(series, horizon, model=drift, levels=levels)


__all__ = [
    "DEFAULT_LEVELS",
    "QuantileForecast",
    "drift_quantiles",
    "quantile_forecast",
    "quantile_forecast_from_residuals",
    "residual_blocks",
    "seasonal_naive_quantiles",
]

"""The declarative scenario matrix: workloads × registered extractors.

A :class:`ConformanceScenario` names one deterministic fleet workload (a
cached builder from :mod:`repro.workloads.scenarios`) plus the per-approach
construction overrides it needs (e.g. the heat-pump fleet hands the
extended appliance catalogue to the appliance-level extractors; the
tariff-switch fleet hands each household its own one-tariff reference).

Compatibility is explicit and queryable: :func:`incompatibility` states
*why* a cell is excluded, :func:`matrix_cells` enumerates every cell the
conformance runner (and the tier-2 pytest suite) must prove.  Related work
motivates the axes: flexibility varies by time and season (Kara et al.)
and by device mix — EVs, heat pumps, PV (Salter & Huang).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from functools import lru_cache
from types import MappingProxyType
from typing import Any

from repro.api.registry import ExtractorEntry, available_extractors, get_entry
from repro.errors import ReproError


class ConformanceError(ReproError):
    """Raised for unknown scenario names or malformed matrix queries."""


@dataclass(frozen=True)
class ConformanceScenario:
    """One named workload of the conformance matrix.

    Parameters
    ----------
    name:
        Stable matrix-wide identifier (kebab-case, used by CLI and tests).
    description:
        One line of intent: what behaviour this workload stresses.
    build:
        Zero-argument cached builder returning the scenario's
        :class:`~repro.simulation.dataset.SimulatedDataset`.  Builders are
        ``lru_cache``-backed, so every cell sharing a scenario shares one
        simulation.
    tags:
        Capability/trait markers consumed by the compatibility rules
        (``appliance`` admits the strict 1-minute approaches, ``tariff``
        admits the multi-tariff approach, ...) and by the runner
        (``zoned`` pairs the scenario's schedule stage with a multi-zone
        :class:`~repro.scheduling.zones.ZonedTarget` on the incremental
        engine instead of a single market target).
    seed:
        Base seed for the per-household extraction rng streams.
    chunk_size:
        Pipeline batch size used when running the cell.
    extractor_params:
        Per-approach constructor overrides, e.g.
        ``{"frequency-based": {"database": extended_database()}}``.
    per_household_params:
        Per-approach *per-household* overrides: ``name -> (index -> params)``.
        Approaches listed here (the multi-tariff approach with its
        per-consumer reference series) run through a per-household loop
        instead of a single shared pipeline extractor.
    """

    name: str
    description: str
    build: Callable[[], Any]
    tags: frozenset[str] = frozenset()
    seed: int = 0
    chunk_size: int = 3
    extractor_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    per_household_params: Mapping[str, Callable[[int], Mapping[str, Any]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))
        object.__setattr__(
            self, "extractor_params", MappingProxyType(dict(self.extractor_params))
        )
        object.__setattr__(
            self,
            "per_household_params",
            MappingProxyType(dict(self.per_household_params)),
        )

    def params_for(self, approach: str) -> dict[str, Any]:
        """This scenario's constructor overrides for one approach."""
        return dict(self.extractor_params.get(approach, {}))


@lru_cache(maxsize=None)
def scenario_matrix() -> tuple[ConformanceScenario, ...]:
    """The full scenario matrix, built once per process.

    Scenario builders themselves stay uncalled until a cell needs them;
    only the heat-pump catalogue and the tariff-reference closures are
    prepared here.
    """
    from repro.appliances.database import extended_database
    from repro.workloads import scenarios as w

    heatpump_db = extended_database()
    appliance_db_params = {
        "frequency-based": {"database": heatpump_db},
        "schedule-based": {"database": heatpump_db},
    }

    def tariff_reference(index: int) -> dict[str, Any]:
        return {"reference": w.tariff_switch_fleet().references[index]}

    return (
        ConformanceScenario(
            name="seasonal-winter",
            description="Deep-winter week: heating-season base load and lighting",
            build=w.winter_fleet,
            tags=frozenset({"appliance", "seasonal"}),
        ),
        ConformanceScenario(
            name="seasonal-summer",
            description="Mid-summer week: no winter lighting, lighter base load",
            build=w.summer_fleet,
            tags=frozenset({"appliance", "seasonal"}),
        ),
        ConformanceScenario(
            name="dst-transition-week",
            description="The 2012 European spring-forward week (Mon..Sun over 03-25)",
            build=w.dst_transition_fleet,
            tags=frozenset({"appliance", "calendar"}),
        ),
        ConformanceScenario(
            name="dst-fallback-week",
            description="The 2012 European autumn fall-back week (Mon..Sun over 10-28)",
            build=w.dst_fallback_fleet,
            tags=frozenset({"appliance", "calendar"}),
        ),
        ConformanceScenario(
            name="gap-ridden-metering",
            description="Meters with 30-180 min dead windows (outages read zero)",
            build=w.gap_ridden_fleet,
            tags=frozenset({"appliance", "degraded"}),
        ),
        ConformanceScenario(
            name="ev-heavy",
            description="Every household charges an EV; 30-70 kWh flexible cycles",
            build=w.ev_heavy_fleet,
            tags=frozenset({"appliance", "device-mix"}),
        ),
        ConformanceScenario(
            name="heat-pump-winter",
            description="Winter fleet of heat-pump households (extended catalogue)",
            build=w.heat_pump_fleet,
            tags=frozenset({"appliance", "device-mix", "seasonal"}),
            extractor_params=appliance_db_params,
        ),
        ConformanceScenario(
            name="pv-prosumer",
            description="Net-metered PV prosumers: midday troughs mask appliances",
            build=w.pv_prosumer_fleet,
            tags=frozenset({"appliance", "prosumer"}),
        ),
        ConformanceScenario(
            name="weekend-skewed",
            description="Full week with wet-appliance usage crowded onto weekends",
            build=w.weekend_skewed_fleet,
            tags=frozenset({"appliance", "behavioural"}),
        ),
        ConformanceScenario(
            name="large-fleet",
            description="100 households: aggregation at fleet scale (paper §6)",
            build=w.large_fleet,
            tags=frozenset({"scale"}),
            chunk_size=16,
        ),
        ConformanceScenario(
            name="zoned-market",
            description="Three-zone market: aggregates sharded by household, "
            "zoned schedule stage on the incremental engine",
            build=w.zoned_market_fleet,
            tags=frozenset({"appliance", "zoned", "market"}),
        ),
        ConformanceScenario(
            name="priced-market",
            description="Three-zone priced market: merit-order clearing "
            "before placement, spill couplings between adjacent zones",
            build=w.zoned_market_fleet,
            tags=frozenset({"appliance", "zoned", "market", "priced"}),
        ),
        ConformanceScenario(
            name="tariff-switch",
            description="Night-tariff households with per-consumer one-tariff references",
            build=lambda: w.tariff_switch_fleet().dataset,
            tags=frozenset({"appliance", "tariff", "behavioural"}),
            per_household_params={"multi-tariff": tariff_reference},
        ),
    )


def scenario_names() -> tuple[str, ...]:
    """All matrix scenario names, in declaration order."""
    return tuple(s.name for s in scenario_matrix())


def get_scenario(name: str) -> ConformanceScenario:
    """Look up one scenario; raises with the valid names on a miss."""
    for scenario in scenario_matrix():
        if scenario.name == name:
            return scenario
    raise ConformanceError(
        f"unknown conformance scenario {name!r}; available: "
        f"{', '.join(scenario_names())}"
    )


def incompatibility(scenario: ConformanceScenario, entry: ExtractorEntry) -> str | None:
    """Why a (scenario, extractor) cell is excluded — or ``None`` if it runs.

    Two rules only, both capability-driven:

    * the multi-tariff approach needs a per-consumer one-tariff reference,
      which only tariff-paired scenarios carry;
    * the strict 1-minute (appliance-level) approaches run on every
      scenario tagged ``appliance`` — the 100-household scale scenario
      deliberately budgets household-level approaches only.
    """
    if entry.name == "multi-tariff" and "tariff" not in scenario.tags:
        return "needs a per-household one-tariff reference series (tariff scenarios only)"
    if entry.input == "total" and "appliance" not in scenario.tags:
        return "appliance-level extraction not budgeted on this scenario"
    return None


def matrix_cells(
    scenarios: tuple[str, ...] | list[str] | None = None,
    extractors: tuple[str, ...] | list[str] | None = None,
) -> list[tuple[ConformanceScenario, ExtractorEntry]]:
    """Every compatible (scenario, extractor) cell of the (sub)matrix.

    ``scenarios``/``extractors`` restrict the cross product by name;
    unknown names raise rather than silently shrinking the matrix.
    """
    chosen_scenarios = (
        [get_scenario(name) for name in scenarios]
        if scenarios is not None
        else list(scenario_matrix())
    )
    names = (
        tuple(extractors) if extractors is not None else available_extractors()
    )
    entries = [get_entry(name) for name in names]
    return [
        (scenario, entry)
        for scenario in chosen_scenarios
        for entry in entries
        if incompatibility(scenario, entry) is None
    ]
